#!/usr/bin/env bash
# CI gate: build, test, format, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
# Chaos suite (bounded iterations): kill/corrupt/fsck/resume loops must
# stay bit-identical. Already part of the workspace run above; kept as
# an explicit gate so containment regressions fail loudly by name.
cargo test -q -p vulfi-orch --test chaos
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings

echo "ci: all checks passed"
