#!/usr/bin/env bash
# CI gate: build, test, format, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
# Chaos suite (bounded iterations): kill/corrupt/fsck/resume loops must
# stay bit-identical. Already part of the workspace run above; kept as
# an explicit gate so containment regressions fail loudly by name.
cargo test -q -p vulfi-orch --test chaos
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings

# Trace smoke test: a small traced study must leave a clean (fsck'd)
# trace sidecar that summarize can read end to end.
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
./target/release/vulfi study --bench "vector sum" --experiments 12 --campaigns 5 \
    --seed 7 --shard-size 5 --store "$SMOKE/store" --trace "$SMOKE/trace" \
    --metrics-out "$SMOKE/metrics.prom" > /dev/null
./target/release/vulfi trace fsck --trace "$SMOKE/trace"
./target/release/vulfi trace summarize --trace "$SMOKE/trace" > /dev/null
grep -q '^vulfi_experiments_total' "$SMOKE/metrics.prom"

# Span export smoke: the Chrome trace-event export must self-validate
# (nesting re-proven from the emitted JSON) and report at least one
# complete span on every layer of request -> job -> shard -> experiment.
./target/release/vulfi trace export --chrome --store "$SMOKE/store" \
    --trace "$SMOKE/trace" -o "$SMOKE/spans.json" 2> "$SMOKE/export.err"
grep -q '"traceEvents"' "$SMOKE/spans.json"
grep -q '"displayTimeUnit"' "$SMOKE/spans.json"
grep -Eq 'chrome export: [1-9][0-9]* request, [1-9][0-9]* job, [1-9][0-9]* shard, [1-9][0-9]* experiment span\(s\)' \
    "$SMOKE/export.err"

# Analytics smoke tests: diffing a store against itself must flag
# nothing, and the HTML report must render self-contained with its
# heatmap section.
./target/release/vulfi report diff "$SMOKE/store" "$SMOKE/store" | grep '0 significant' > /dev/null
./target/release/vulfi report heatmap --trace "$SMOKE/trace" > /dev/null
./target/release/vulfi report html --store "$SMOKE/store" --trace "$SMOKE/trace" \
    --metrics-in "$SMOKE/metrics.prom" -o "$SMOKE/report.html"
grep -q 'id="heatmap"' "$SMOKE/report.html"
grep -q 'id="diff"' "$SMOKE/report.html"
grep -q 'id="analysis"' "$SMOKE/report.html"
! grep -q '<script' "$SMOKE/report.html"

# Static-analysis smoke tests: the analyzer must report a benign
# fraction for a benchmark, the whole built-in suite must stay
# lint-clean against the committed baseline, and a deliberately dirty
# module must flip the exit code under --deny — the lint gate is only a
# gate if a finding actually fails the build.
./target/release/vulfi analyze --bench "vector sum" | grep 'provably benign' > /dev/null
./target/release/vulfi lint --suite --deny > /dev/null
./target/release/vulfi lint --suite --json -o "$SMOKE/lint.json"
diff -u LINT_BASELINE.json "$SMOKE/lint.json"
printf 'define void @ds(i32 %%x) {\nentry:\n  %%p = alloca i32, i64 1\n  store i32 %%x, ptr %%p\n  ret void\n}\n' \
    > "$SMOKE/dirty.vir"
! ./target/release/vulfi lint "$SMOKE/dirty.vir" --deny > /dev/null
./target/release/vulfi sites "$SMOKE/dirty.vir" --json -o "$SMOKE/sites.json"
grep -q '"sites"' "$SMOKE/sites.json"

# Pruning smoke test: a pruned study must discharge injections without
# execution, and the soundness gauntlet must cross-validate the
# analyzer's benign proofs against fully-executed studies — zero
# predicted-benign injections may land as SDC/Crash or trip a detector.
./target/release/vulfi study --bench "vector sum" --experiments 20 --campaigns 5 \
    --seed 7 --shard-size 10 --prune --store "$SMOKE/pruned" \
    | grep 'statically discharged' > /dev/null
./target/release/vulfi gauntlet run scenarios/soundness.toml --store "$SMOKE/soundness" \
    | grep '0 breaches: PASS' > /dev/null

# Gauntlet smoke test: the committed scenario (3 fault models x 2 ISAs
# x 2 benchmarks) must pass its invariants, render into the HTML report,
# and a deliberately impossible invariant must flip the exit code — the
# gauntlet is only a gate if a breach actually fails the build.
./target/release/vulfi gauntlet run scenarios/smoke.toml --store "$SMOKE/gauntlet" \
    | grep '0 breaches: PASS' > /dev/null
./target/release/vulfi gauntlet report scenarios/smoke.toml --store "$SMOKE/gauntlet" \
    -o "$SMOKE/gauntlet.html" > /dev/null
grep -q 'id="gauntlet"' "$SMOKE/gauntlet.html"
grep -q 'memory-cell' "$SMOKE/gauntlet.html"
sed 's/^sdc_rate_max.*/sdc_rate_max = 0.0/' scenarios/smoke.toml > "$SMOKE/breach.toml"
! ./target/release/vulfi gauntlet run "$SMOKE/breach.toml" --store "$SMOKE/gauntlet" --resume \
    > "$SMOKE/breach.out"
grep -q 'FAIL (sdc_rate_max)' "$SMOKE/breach.out"

# Profiler smoke test: the hot-path profiler must rank opcodes for a
# golden run without perturbing it (bit-identity is proven by the vexec
# proptest; here we just gate the CLI surface).
./target/release/vulfi profile --bench "vector sum" --hotspots --top 5 \
    -o "$SMOKE/folded.txt" > "$SMOKE/profile.out"
grep -q 'hotspots' "$SMOKE/profile.out"
grep -q 'hottest sites' "$SMOKE/profile.out"
test -s "$SMOKE/folded.txt"

# Throughput record: bench --record must emit parseable JSON with a
# nonzero experiments-per-second figure, and the cumulative history
# sidecar must gain a line carrying the opcode mix.
./target/release/vulfi bench --bench "vector sum" --experiments 10 --record \
    -o "$SMOKE/BENCH_report.json" > /dev/null
grep -q 'exp_per_sec' "$SMOKE/BENCH_report.json"
grep -q 'opcode_mix' "$SMOKE/BENCH_report.json"
grep -q 'golden_dyn_insts' "$SMOKE/BENCH_history.jsonl"
# The trend reader must fold that history into a per-bench trajectory.
./target/release/vulfi bench trend -o "$SMOKE/BENCH_report.json" > "$SMOKE/trend.out"
grep -q 'vector sum' "$SMOKE/trend.out"
./target/release/vulfi bench trend -o "$SMOKE/BENCH_report.json" --json \
    | grep -q '"monotone_regression"'

# Throughput gate: re-run the micro-benchmarks (full and pruned pairs)
# against the committed baseline; any >30% exp/s regression fails the
# build. Re-record with `vulfi bench --experiments 400 --prune --record`
# when a slowdown is intended.
./target/release/vulfi bench --experiments 400 --prune --check BENCH_report.json

# Service smoke test: daemon on an ephemeral port with telemetry and
# alert rules on, submit over HTTP, wait for the merged result, pull
# the analytics report, drain gracefully, and leave a store that
# passes fsck. `exp_s_below 1e9` is impossible to satisfy (it always
# fires once a sample exists); `sdc_rate_above 1e9` can never fire.
printf '[throughput-floor]\nkind = "exp_s_below"\nthreshold = 1e9\n\n[never]\nkind = "sdc_rate_above"\nthreshold = 1e9\n' \
    > "$SMOKE/alerts.toml"
./target/release/vulfi serve --addr 127.0.0.1:0 --store "$SMOKE/serve" --workers 2 \
    --rules "$SMOKE/alerts.toml" --telemetry-interval-ms 100 &
SERVE_PID=$!
for _ in $(seq 1 100); do
    [ -s "$SMOKE/serve/serve.addr" ] && break
    sleep 0.1
done
ADDR=$(cat "$SMOKE/serve/serve.addr")
./target/release/vulfi submit --addr "$ADDR" --bench "vector sum" \
    --experiments 12 --campaigns 5 --shard-size 5 --wait --json > "$SMOKE/submit.json"
grep -q '"mean_sdc"' "$SMOKE/submit.json"
# Capture to a file first: `head -1` closing the pipe early would kill
# the writer with SIGPIPE/broken-pipe under `pipefail`.
./target/release/vulfi status --addr "$ADDR" --json > "$SMOKE/status.json"
KEY=$(grep -o '"key": "[a-f0-9]*"' "$SMOKE/status.json" | head -1 | cut -d'"' -f4)
./target/release/vulfi status --addr "$ADDR" "$KEY" --report > "$SMOKE/status_report.json"
grep -q '"cell"' "$SMOKE/status_report.json"
# Live dashboard: zero-JS self-contained HTML with the jobs table,
# alert panel, and inline-SVG telemetry sparklines.
curl -s "http://$ADDR/dashboard" > "$SMOKE/dashboard.html"
grep -q 'id="jobs"' "$SMOKE/dashboard.html"
grep -q 'id="alerts"' "$SMOKE/dashboard.html"
grep -q 'id="telemetry"' "$SMOKE/dashboard.html"
grep -q 'FIRING' "$SMOKE/dashboard.html"
! grep -q '<script' "$SMOKE/dashboard.html"
# The alert endpoint serves the same states as JSON.
curl -s "http://$ADDR/alerts" > "$SMOKE/alerts.json"
grep -q '"throughput-floor"' "$SMOKE/alerts.json"
./target/release/vulfi shutdown --addr "$ADDR" > /dev/null
wait "$SERVE_PID"
test ! -e "$SMOKE/serve/serve.addr"
./target/release/vulfi store fsck --store "$SMOKE/serve"
# The ops log alone must reconstruct the job's lifecycle offline, and
# it must carry the alert transition the daemon logged.
./target/release/vulfi events summarize --store "$SMOKE/serve" > "$SMOKE/ops.out"
grep -q 'completed' "$SMOKE/ops.out"
grep -q 'merged' "$SMOKE/ops.out"
./target/release/vulfi events fsck --store "$SMOKE/serve"
./target/release/vulfi events tail --store "$SMOKE/serve" --top 200 > "$SMOKE/tail.out"
grep -q 'alert-firing' "$SMOKE/tail.out"
# Alerts offline: the impossible-to-satisfy rule must flip the exit
# code over the persisted series; a rules file with only the
# can-never-fire rule must pass; the telemetry log itself fscks clean.
! ./target/release/vulfi alerts check --rules "$SMOKE/alerts.toml" \
    --store "$SMOKE/serve" > "$SMOKE/alerts.out"
grep -q 'FIRING' "$SMOKE/alerts.out"
printf '[never]\nkind = "sdc_rate_above"\nthreshold = 1e9\n' > "$SMOKE/quiet.toml"
./target/release/vulfi alerts check --rules "$SMOKE/quiet.toml" --store "$SMOKE/serve" > /dev/null
./target/release/vulfi alerts fsck --store "$SMOKE/serve"

echo "ci: all checks passed"
