#!/usr/bin/env bash
# CI gate: build, test, format, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
# Chaos suite (bounded iterations): kill/corrupt/fsck/resume loops must
# stay bit-identical. Already part of the workspace run above; kept as
# an explicit gate so containment regressions fail loudly by name.
cargo test -q -p vulfi-orch --test chaos
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings

# Trace smoke test: a small traced study must leave a clean (fsck'd)
# trace sidecar that summarize can read end to end.
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
./target/release/vulfi study --bench "vector sum" --experiments 12 --campaigns 5 \
    --seed 7 --shard-size 5 --store "$SMOKE/store" --trace "$SMOKE/trace" \
    --metrics-out "$SMOKE/metrics.prom" > /dev/null
./target/release/vulfi trace fsck --trace "$SMOKE/trace"
./target/release/vulfi trace summarize --trace "$SMOKE/trace" > /dev/null
grep -q '^vulfi_experiments_total' "$SMOKE/metrics.prom"

# Analytics smoke tests: diffing a store against itself must flag
# nothing, and the HTML report must render self-contained with its
# heatmap section.
./target/release/vulfi report diff "$SMOKE/store" "$SMOKE/store" | grep -q '0 significant'
./target/release/vulfi report heatmap --trace "$SMOKE/trace" > /dev/null
./target/release/vulfi report html --store "$SMOKE/store" --trace "$SMOKE/trace" \
    --metrics-in "$SMOKE/metrics.prom" -o "$SMOKE/report.html"
grep -q 'id="heatmap"' "$SMOKE/report.html"
grep -q 'id="diff"' "$SMOKE/report.html"
! grep -q '<script' "$SMOKE/report.html"

# Gauntlet smoke test: the committed scenario (3 fault models x 2 ISAs
# x 2 benchmarks) must pass its invariants, render into the HTML report,
# and a deliberately impossible invariant must flip the exit code — the
# gauntlet is only a gate if a breach actually fails the build.
./target/release/vulfi gauntlet run scenarios/smoke.toml --store "$SMOKE/gauntlet" \
    | grep -q '0 breaches: PASS'
./target/release/vulfi gauntlet report scenarios/smoke.toml --store "$SMOKE/gauntlet" \
    -o "$SMOKE/gauntlet.html" > /dev/null
grep -q 'id="gauntlet"' "$SMOKE/gauntlet.html"
grep -q 'memory-cell' "$SMOKE/gauntlet.html"
sed 's/^sdc_rate_max.*/sdc_rate_max = 0.0/' scenarios/smoke.toml > "$SMOKE/breach.toml"
! ./target/release/vulfi gauntlet run "$SMOKE/breach.toml" --store "$SMOKE/gauntlet" --resume \
    > "$SMOKE/breach.out"
grep -q 'FAIL (sdc_rate_max)' "$SMOKE/breach.out"

# Throughput record: bench --record must emit parseable JSON with a
# nonzero experiments-per-second figure.
./target/release/vulfi bench --bench "vector sum" --experiments 10 --record \
    -o "$SMOKE/BENCH_report.json" > /dev/null
grep -q 'exp_per_sec' "$SMOKE/BENCH_report.json"

# Throughput gate: re-run the micro-benchmarks against the committed
# baseline; any >30% exp/s regression fails the build. Re-record with
# `vulfi bench --experiments 400 --record` when a slowdown is intended.
./target/release/vulfi bench --experiments 400 --check BENCH_report.json

# Service smoke test: daemon on an ephemeral port, submit over HTTP,
# wait for the merged result, pull the analytics report, drain
# gracefully, and leave a store that passes fsck.
./target/release/vulfi serve --addr 127.0.0.1:0 --store "$SMOKE/serve" --workers 2 &
SERVE_PID=$!
for _ in $(seq 1 100); do
    [ -s "$SMOKE/serve/serve.addr" ] && break
    sleep 0.1
done
ADDR=$(cat "$SMOKE/serve/serve.addr")
./target/release/vulfi submit --addr "$ADDR" --bench "vector sum" \
    --experiments 12 --campaigns 5 --shard-size 5 --wait --json > "$SMOKE/submit.json"
grep -q '"mean_sdc"' "$SMOKE/submit.json"
KEY=$(./target/release/vulfi status --addr "$ADDR" --json \
    | grep -o '"key": "[a-f0-9]*"' | head -1 | cut -d'"' -f4)
./target/release/vulfi status --addr "$ADDR" "$KEY" --report | grep -q '"cell"'
./target/release/vulfi shutdown --addr "$ADDR" > /dev/null
wait "$SERVE_PID"
test ! -e "$SMOKE/serve/serve.addr"
./target/release/vulfi store fsck --store "$SMOKE/serve"

echo "ci: all checks passed"
