#!/usr/bin/env bash
# CI gate: build, test, format, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
# Chaos suite (bounded iterations): kill/corrupt/fsck/resume loops must
# stay bit-identical. Already part of the workspace run above; kept as
# an explicit gate so containment regressions fail loudly by name.
cargo test -q -p vulfi-orch --test chaos
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings

# Trace smoke test: a small traced study must leave a clean (fsck'd)
# trace sidecar that summarize can read end to end.
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
./target/release/vulfi study --bench "vector sum" --experiments 12 --campaigns 5 \
    --seed 7 --shard-size 5 --store "$SMOKE/store" --trace "$SMOKE/trace" \
    --metrics-out "$SMOKE/metrics.prom" > /dev/null
./target/release/vulfi trace fsck --trace "$SMOKE/trace"
./target/release/vulfi trace summarize --trace "$SMOKE/trace" > /dev/null
grep -q '^vulfi_experiments_total' "$SMOKE/metrics.prom"

# Analytics smoke tests: diffing a store against itself must flag
# nothing, and the HTML report must render self-contained with its
# heatmap section.
./target/release/vulfi report diff "$SMOKE/store" "$SMOKE/store" | grep -q '0 significant'
./target/release/vulfi report heatmap --trace "$SMOKE/trace" > /dev/null
./target/release/vulfi report html --store "$SMOKE/store" --trace "$SMOKE/trace" \
    --metrics-in "$SMOKE/metrics.prom" -o "$SMOKE/report.html"
grep -q 'id="heatmap"' "$SMOKE/report.html"
grep -q 'id="diff"' "$SMOKE/report.html"
! grep -q '<script' "$SMOKE/report.html"

# Throughput record: bench --record must emit parseable JSON with a
# nonzero experiments-per-second figure.
./target/release/vulfi bench --bench "vector sum" --experiments 10 --record \
    -o "$SMOKE/BENCH_report.json" > /dev/null
grep -q 'exp_per_sec' "$SMOKE/BENCH_report.json"

echo "ci: all checks passed"
