#!/usr/bin/env bash
# CI gate: build, test, format, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings

echo "ci: all checks passed"
