//! # vulfi-suite — the whole reproduction under one roof
//!
//! Facade crate for the VULFI reproduction workspace. The real code lives
//! in the member crates; this crate re-exports them for the workspace-level
//! examples (`examples/`) and integration tests (`tests/`), and is a
//! convenient single dependency for downstream experimentation:
//!
//! - [`vir`] — the LLVM-like vector IR,
//! - [`vexec`] — the interpreter / virtual vector machine,
//! - [`spmdc`] — the mini-ISPC compiler,
//! - [`vulfi`] — the fault injector and campaign driver,
//! - [`detectors`] — the compilation-aware error detectors,
//! - [`vbench`] — the paper's benchmark suite.
//!
//! ```
//! use vulfi_suite::prelude::*;
//!
//! let w = vbench::micro_benchmark("vector copy", VectorIsa::Avx, Scale::Test).unwrap();
//! let prog = vulfi::prepare(&w, SiteCategory::Control).unwrap();
//! let c = vulfi::run_campaign(&prog, &w, 10, 1).unwrap();
//! assert_eq!(c.counts.total(), 10);
//! ```

pub use detectors;
pub use spmdc;
pub use vbench;
pub use vexec;
pub use vir;
pub use vulfi;

/// The names most sessions start with.
pub mod prelude {
    pub use detectors::{CheckPlacement, DetectorConfig, WithDetectors};
    pub use spmdc::VectorIsa;
    pub use vbench::{self, Scale};
    pub use vexec::{Interp, NoHost, RtVal, Scalar};
    pub use vir::analysis::SiteCategory;
    pub use vulfi::{self, workload::Workload};
}
