//! VULFI on hand-written IR: the injector is IR-level, not tied to the
//! SPMD-C front end (the paper's point (4) in §I — any LLVM-like front end
//! can feed it).
//!
//! Builds a masked AXPY kernel directly with the VIR builder — including
//! the `llvm.x86.avx.maskload/maskstore` intrinsics from paper Fig. 5 —
//! prints it, round-trips it through the textual parser, instruments it,
//! and sweeps a fault injection across *every* dynamic fault site to map
//! which bits matter.
//!
//! ```text
//! cargo run --release --example ir_tour
//! ```

use vexec::{Interp, RtVal, Scalar};
use vir::builder::FuncBuilder;
use vir::intrinsics::{maskload_name, maskstore_name};
use vir::{BinOp, Module, ScalarTy, Type};
use vulfi::{instrument_module, InstrumentOptions, VulfiHost};

/// Build `masked_axpy(ptr x, ptr y, <8 x float> mask, float a)`:
/// `y[lane] = a * x[lane] + y[lane]` for active lanes.
fn build_masked_axpy() -> Module {
    let vty = Type::vec(ScalarTy::F32, 8);
    let mut b = FuncBuilder::new(
        "masked_axpy",
        vec![
            ("x".into(), Type::PTR),
            ("y".into(), Type::PTR),
            ("floatmask.i".into(), vty),
            ("a".into(), Type::F32),
        ],
        Type::Void,
    );
    let entry = b.add_block("entry");
    b.position_at(entry);
    let (x, y, mask, a) = (b.param(0), b.param(1), b.param(2), b.param(3));
    let xv = b.call(
        maskload_name(8, ScalarTy::F32),
        vec![x, mask.clone()],
        vty,
        "xv",
    );
    let yv = b.call(
        maskload_name(8, ScalarTy::F32),
        vec![y.clone(), mask.clone()],
        vty,
        "yv",
    );
    // Broadcast `a` with the exact paper-Fig.9 pattern.
    let av = b.broadcast(a, 8, "a");
    let ax = b.bin(BinOp::FMul, av, xv, "ax");
    let axpy = b.bin(BinOp::FAdd, ax, yv, "axpy");
    b.call(
        maskstore_name(8, ScalarTy::F32),
        vec![y, mask, axpy],
        Type::Void,
        "",
    );
    b.ret(None);
    let mut m = Module::new("ir_tour");
    m.add_function(b.finish());
    m
}

fn main() {
    let module = build_masked_axpy();
    vir::verify::verify_module(&module).expect("verifies");
    let text = vir::printer::print_module(&module);
    println!("=== hand-built masked AXPY ===\n{text}");

    // Round-trip through the textual format.
    let reparsed = vir::parser::parse_module(&text).expect("parses");
    assert_eq!(vir::printer::print_module(&reparsed), text);
    println!("(round-trips through the textual parser bit-for-bit)\n");

    // Instrument every pure-data site.
    let mut instrumented = module.clone();
    let r = instrument_module(
        &mut instrumented,
        "masked_axpy",
        InstrumentOptions::new(vir::analysis::SiteCategory::PureData),
    )
    .expect("instruments");
    println!(
        "instrumented {} static sites ({} scalar sites with lanes)",
        r.sites.len(),
        r.sites.iter().map(|s| s.lanes() as u64).sum::<u64>()
    );

    // Run once to count dynamic sites, then sweep an injection across all
    // of them, flipping the f32 sign bit each time.
    let run = |host: &mut VulfiHost| -> Vec<f32> {
        let mut interp = Interp::new(&instrumented);
        let x = interp
            .mem
            .alloc_f32_slice(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0])
            .unwrap();
        let y = interp.mem.alloc_f32_slice(&[0.5; 8]).unwrap();
        let on = f32::from_bits(0xffff_ffff);
        // Lanes 0..5 active, 6..7 masked off.
        let mask = RtVal::from_lanes(
            ScalarTy::F32,
            (0..8).map(|i| {
                if i < 6 {
                    Scalar::f32(on)
                } else {
                    Scalar::f32(0.0)
                }
            }),
        );
        interp
            .run(
                "masked_axpy",
                &[
                    RtVal::Scalar(Scalar::ptr(x)),
                    RtVal::Scalar(Scalar::ptr(y)),
                    mask,
                    RtVal::Scalar(Scalar::f32(2.0)),
                ],
                host,
            )
            .unwrap();
        interp.mem.read_f32_slice(y, 8).unwrap()
    };

    let mut profile = VulfiHost::profile();
    let golden = run(&mut profile);
    println!(
        "golden output: {golden:?}\ndynamic fault sites (active lanes only): {}",
        profile.dynamic_sites
    );

    let mut corrupted = 0;
    for target in 1..=profile.dynamic_sites {
        let mut host = VulfiHost::inject(target, 31); // sign bit
        let out = run(&mut host);
        if out != golden {
            corrupted += 1;
        }
    }
    println!(
        "sign-bit sweep: {corrupted}/{} dynamic sites corrupt the output \
         (masked-off lanes are never sites, so every hit lands on live data)",
        profile.dynamic_sites
    );
}
