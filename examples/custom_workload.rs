//! Bring your own kernel: the full recipe a downstream user follows to
//! evaluate the resilience of *their* SPMD code with this library.
//!
//! 1. Write the kernel in SPMD-C (or hand-written VIR).
//! 2. Implement [`Workload`]: deterministic inputs + observable outputs.
//! 3. Optionally wrap with [`WithDetectors`] for automatic error detection.
//! 4. Run statistically grounded studies per fault-site category.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use detectors::{DetectorConfig, WithDetectors};
use spmdc::VectorIsa;
use vexec::{Memory, RtVal, Scalar, Trap};
use vir::analysis::SiteCategory;
use vir::Module;
use vulfi::workload::{OutputRegion, SetupResult, Workload};
use vulfi::{run_study, StudyConfig};

/// Your kernel: a fused multiply-add sweep with a saturation branch —
/// something you might actually ship in a signal-processing pipeline.
const MY_KERNEL: &str = r#"
export void saturating_fma(uniform float acc[], uniform float x[], uniform float k[],
                           uniform int n, uniform float limit) {
    foreach (i = 0 ... n) {
        float v = acc[i] + x[i] * k[i];
        if (v > limit) {
            v = limit;
        }
        if (v < -limit) {
            v = -limit;
        }
        acc[i] = v;
    }
}
"#;

/// Your workload: how to set it up, and what counts as output.
struct SaturatingFma {
    module: Module,
    sizes: Vec<usize>,
}

impl SaturatingFma {
    fn new(isa: VectorIsa) -> SaturatingFma {
        SaturatingFma {
            module: spmdc::compile(MY_KERNEL, isa, "custom").expect("kernel compiles"),
            sizes: vec![30, 45, 64],
        }
    }
}

impl Workload for SaturatingFma {
    fn name(&self) -> &str {
        "saturating fma"
    }

    fn entry(&self) -> &str {
        "saturating_fma"
    }

    fn module(&self) -> &Module {
        &self.module
    }

    fn num_inputs(&self) -> u64 {
        self.sizes.len() as u64
    }

    fn setup(&self, mem: &mut Memory, input: u64) -> Result<SetupResult, Trap> {
        // Anything deterministic works; vbench's DetRng is reusable.
        let n = self.sizes[input as usize % self.sizes.len()];
        let mut rng = vbench::DetRng::new(0xFADE + input);
        let acc = mem.alloc_f32_slice(&rng.f32_vec(n, -1.0, 1.0))?;
        let x = mem.alloc_f32_slice(&rng.f32_vec(n, -2.0, 2.0))?;
        let k = mem.alloc_f32_slice(&rng.f32_vec(n, 0.5, 1.5))?;
        Ok(SetupResult {
            args: vec![
                RtVal::Scalar(Scalar::ptr(acc)),
                RtVal::Scalar(Scalar::ptr(x)),
                RtVal::Scalar(Scalar::ptr(k)),
                RtVal::Scalar(Scalar::i32(n as i32)),
                RtVal::Scalar(Scalar::f32(2.5)),
            ],
            outputs: vec![OutputRegion {
                addr: acc,
                bytes: (n * 4) as u64,
            }],
        })
    }
}

fn main() {
    let w = SaturatingFma::new(VectorIsa::Avx);

    // What does the injector see in your kernel?
    let f = w.module().function(w.entry()).unwrap();
    let sites = vulfi::enumerate_sites(f);
    println!("kernel '{}': {} static fault sites", w.name(), sites.len());
    for (cat, mix) in vulfi::category_mix(&sites) {
        println!(
            "  {:9}: {:3} sites, {:.0}% vector",
            cat.name(),
            mix.total(),
            mix.vector_pct()
        );
    }

    // Add the compiler-invariant detectors, then study each category.
    let wd = WithDetectors::new(&w, DetectorConfig::default()).expect("detectors insert");
    println!(
        "\ninserted {} foreach-invariant detector(s); running studies...\n",
        wd.foreach_detectors
    );
    let cfg = StudyConfig {
        experiments_per_campaign: 50,
        target_margin: 3.0,
        min_campaigns: 4,
        max_campaigns: 8,
        seed: 1,
        ..StudyConfig::default()
    };
    println!(
        "{:<10} {:>7} {:>8} {:>7} {:>11} {:>7}",
        "category", "SDC", "Benign", "Crash", "detected", "±95%"
    );
    for cat in SiteCategory::ALL {
        let prog = vulfi::prepare(&wd, cat).expect("instrumentation");
        let s = run_study(&prog, &wd, &cfg).expect("study");
        println!(
            "{:<10} {:>6.1}% {:>7.1}% {:>6.1}% {:>10.1}% {:>7.2}",
            cat.name(),
            s.counts.sdc_rate(),
            s.counts.benign_rate(),
            s.counts.crash_rate(),
            s.counts.sdc_detection_rate(),
            s.summary.margin_95,
        );
    }
    println!(
        "\nReading the table: if your deployment cares about silent corruption,\n\
         the SDC column tells you which fault class to harden against, and\n\
         'detected' how much the free compiler-invariant detectors buy you."
    );
}
