//! A miniature of the paper's Fig. 11 study for one benchmark: run
//! statistically grounded fault-injection campaigns on Black-Scholes for
//! all three fault-site categories on both AVX and SSE, and report
//! SDC / Benign / Crash rates with 95% margins of error.
//!
//! ```text
//! cargo run --release --example resiliency_study
//! ```

use spmdc::VectorIsa;
use vbench::{study_benchmark, Scale};
use vir::analysis::SiteCategory;
use vulfi::{run_study, StudyConfig};

fn main() {
    let cfg = StudyConfig {
        experiments_per_campaign: 40,
        target_margin: 3.0,
        min_campaigns: 4,
        max_campaigns: 10,
        seed: 0x2016,
        ..StudyConfig::default()
    };
    println!(
        "Black-Scholes resiliency study: {} experiments/campaign, \
         stop at ±{} pp @95% (max {} campaigns)\n",
        cfg.experiments_per_campaign, cfg.target_margin, cfg.max_campaigns
    );
    println!(
        "{:<6} {:<10} {:>7} {:>8} {:>7} {:>7} {:>10}",
        "ISA", "category", "SDC", "Benign", "Crash", "±95%", "campaigns"
    );
    for isa in [VectorIsa::Avx, VectorIsa::Sse4] {
        let w = study_benchmark("Blackscholes", isa, Scale::Test).unwrap();
        for cat in SiteCategory::ALL {
            let prog = vulfi::prepare(&w, cat).expect("instrumentation");
            let s = run_study(&prog, &w, &cfg).expect("study");
            println!(
                "{:<6} {:<10} {:>6.1}% {:>7.1}% {:>6.1}% {:>7.2} {:>6}{}",
                isa.name(),
                cat.name(),
                s.counts.sdc_rate(),
                s.counts.benign_rate(),
                s.counts.crash_rate(),
                s.summary.margin_95,
                s.summary.campaigns,
                if s.converged { "" } else { " (cap)" }
            );
        }
    }
    println!(
        "\nPaper shape check (§IV-D): Blackscholes is one of the highest-SDC\n\
         benchmarks, and the address category should dominate the crashes."
    );
}
