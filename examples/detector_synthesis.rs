//! Compilation-aware detector synthesis (paper §III) — a miniature of the
//! Fig. 12 detection study.
//!
//! 1. Compile the dot-product micro-benchmark and show the foreach CFG the
//!    ISPC-style code generator produced.
//! 2. Run the foreach loop-invariant detector pass; print the inserted
//!    `foreach_fullbody_check_invariants` block (paper Fig. 7).
//! 3. Measure the detector's dynamic-instruction overhead.
//! 4. Run fault-injection campaigns per category with the detector live,
//!    reporting SDC and SDC-detection rates (paper Fig. 12's bars).
//!
//! ```text
//! cargo run --release --example detector_synthesis
//! ```

use detectors::{DetectorConfig, WithDetectors};
use spmdc::VectorIsa;
use vbench::{micro_benchmark, Scale};
use vir::analysis::SiteCategory;
use vulfi::campaign::measure_dyn_insts;
use vulfi::workload::Workload;

fn main() {
    let w = micro_benchmark("dot product", VectorIsa::Avx, Scale::Test).unwrap();

    // Show the foreach loop structure the detector keys on.
    let f = w.module().function(w.entry()).unwrap();
    println!("=== foreach blocks emitted by the SPMD-C compiler ===");
    for b in &f.blocks {
        println!("  %{}", b.name);
    }
    let loops = detectors::find_foreach_loops(f);
    println!(
        "\nmatched {} foreach full-body loop(s); stride Vl = {}",
        loops.len(),
        loops[0].vl
    );

    // Insert the invariants detector and show the new block.
    let wd = WithDetectors::new(&w, DetectorConfig::default()).expect("detector pass");
    println!("\n=== detector block inserted (paper Figs. 7-8) ===");
    let printed = vir::printer::print_module(wd.module());
    for chunk in printed.split("\n\n") {
        // print only the function containing the check call
        if chunk.contains("check_invariants") {
            for line in chunk
                .lines()
                .skip_while(|l| !l.contains("foreach_fullbody_check_invariants"))
                .take(3)
            {
                println!("{line}");
            }
        }
    }

    // Overhead.
    let plain = measure_dyn_insts(w.module(), w.entry(), &w, 0).unwrap();
    let with = measure_dyn_insts(wd.module(), wd.entry(), &wd, 0).unwrap();
    println!(
        "\ndetector overhead: {} -> {} dynamic instructions (+{:.2}%)",
        plain,
        with,
        100.0 * (with - plain) as f64 / plain as f64
    );

    // Detection study per category.
    println!("\n=== detection study (1000 experiments per category) ===");
    println!(
        "{:<10} {:>7} {:>10} {:>19}",
        "category", "SDC", "Crash", "SDC detection rate"
    );
    for cat in SiteCategory::ALL {
        let prog = vulfi::prepare(&wd, cat).expect("instrumentation");
        let c = vulfi::run_campaign(&prog, &wd, 1000, 0x2016).expect("campaign");
        println!(
            "{:<10} {:>6.1}% {:>9.1}% {:>18.1}%",
            cat.name(),
            c.counts.sdc_rate(),
            c.counts.crash_rate(),
            c.counts.sdc_detection_rate()
        );
    }
    println!(
        "\nPaper shape check (§IV-E): pure-data detection must be exactly 0\n\
         (loop-iterator faults can never be pure-data, Fig. 2); control has\n\
         the highest SDC and detection rates; address mostly crashes."
    );
}
