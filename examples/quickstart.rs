//! Quickstart: the whole VULFI pipeline on the paper's running example.
//!
//! 1. Compile the vector-copy kernel (paper Fig. 6) with the SPMD-C
//!    compiler for AVX.
//! 2. Enumerate and classify its fault sites (paper §II-C).
//! 3. Instrument one category and run a single fault-injection experiment.
//! 4. Run a 100-experiment campaign and print the outcome distribution.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rand::SeedableRng;
use spmdc::VectorIsa;
use vexec::{Memory, RtVal, Scalar, Trap};
use vir::analysis::SiteCategory;
use vir::Module;
use vulfi::workload::{OutputRegion, SetupResult, Workload};

/// The paper's Fig. 6 program.
const VCOPY: &str = r#"
export void vcopy_ispc(uniform int a1[], uniform int a2[], uniform int n) {
    foreach (i = 0 ... n) {
        a2[i] = a1[i];
    }
}
"#;

/// Minimal workload: one fixed input vector.
struct CopyWorkload {
    module: Module,
}

impl Workload for CopyWorkload {
    fn name(&self) -> &str {
        "vector copy"
    }
    fn entry(&self) -> &str {
        "vcopy_ispc"
    }
    fn module(&self) -> &Module {
        &self.module
    }
    fn num_inputs(&self) -> u64 {
        1
    }
    fn setup(&self, mem: &mut Memory, _input: u64) -> Result<SetupResult, Trap> {
        let n = 21; // exercises both the full-body loop and the masked tail
        let vals: Vec<i32> = (0..n).map(|i| i * 3 + 1).collect();
        let a1 = mem.alloc_i32_slice(&vals)?;
        let a2 = mem.alloc_i32_slice(&vec![0; n as usize])?;
        Ok(SetupResult {
            args: vec![
                RtVal::Scalar(Scalar::ptr(a1)),
                RtVal::Scalar(Scalar::ptr(a2)),
                RtVal::Scalar(Scalar::i32(n)),
            ],
            outputs: vec![OutputRegion {
                addr: a2,
                bytes: n as u64 * 4,
            }],
        })
    }
}

fn main() {
    // 1. Compile.
    let module = spmdc::compile(VCOPY, VectorIsa::Avx, "quickstart").expect("compiles");
    println!("=== compiled VIR (AVX, 8 lanes) ===");
    println!("{}", vir::printer::print_module(&module));

    // 2. Classify fault sites.
    let f = module.function("vcopy_ispc").unwrap();
    let sites = vulfi::enumerate_sites(f);
    println!("=== fault sites ===");
    println!(
        "{} static sites / {} scalar sites including vector lanes",
        sites.len(),
        sites.iter().map(|s| s.lanes() as u64).sum::<u64>()
    );
    for (cat, mix) in vulfi::category_mix(&sites) {
        println!(
            "  {:9}: {:3} sites, {:>5.1}% vector instructions",
            cat.name(),
            mix.total(),
            mix.vector_pct()
        );
    }

    // 3. One experiment, step by step.
    let w = CopyWorkload { module };
    let prog = vulfi::prepare(&w, SiteCategory::Control).expect("instrumentation");
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2016);
    let e = vulfi::run_experiment(&prog, &w, &mut rng).expect("experiment");
    println!("\n=== one control-category experiment ===");
    println!("dynamic fault sites observed: {}", e.dynamic_sites);
    match &e.injection {
        Some(inj) => println!(
            "flipped bit {} of site {} (lane {}) at occurrence {} -> outcome {:?}",
            inj.bit, inj.site_id, inj.lane, inj.occurrence, e.outcome
        ),
        None => println!("no injection performed -> outcome {:?}", e.outcome),
    }

    // 4. A whole campaign.
    let c = vulfi::run_campaign(&prog, &w, 100, 7).expect("campaign");
    println!("\n=== 100-experiment campaign (control sites) ===");
    println!(
        "SDC {:5.1}%   Benign {:5.1}%   Crash {:5.1}%",
        c.counts.sdc_rate(),
        c.counts.benign_rate(),
        c.counts.crash_rate()
    );
}
