//! Offline stand-in for `rand_chacha`: a from-scratch ChaCha8 keystream
//! generator implementing the vendored [`rand`] traits.
//!
//! The campaign driver only needs a *deterministic, well-mixed, seedable*
//! stream (experiment seeds → identical experiments), which the real
//! ChaCha8 block function provides. Layout follows djb's original ChaCha:
//! 4 constant words, 8 key words (the 32-byte seed), a 64-bit block
//! counter, and a 64-bit stream id (zero here), with 8 rounds per block.

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];
const ROUNDS: usize = 8;

/// The ChaCha8 random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    /// Current block's output words.
    block: [u32; 16],
    /// Next word index within `block`; 16 forces a refill.
    word: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // state[14..16]: stream id, fixed to zero.
        let input = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.block[i] = state[i].wrapping_add(input[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.word = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word >= 16 {
            self.refill();
        }
        let w = self.block[self.word];
        self.word += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let w = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> ChaCha8Rng {
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            *k = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            word: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_reproducible() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn blocks_advance() {
        // More than one 16-word block must not repeat the first block.
        let mut r = ChaCha8Rng::seed_from_u64(9);
        let first: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn roughly_uniform_bits() {
        let mut r = ChaCha8Rng::seed_from_u64(1234);
        let ones: u32 = (0..1000).map(|_| r.next_u64().count_ones()).sum();
        // 64,000 bits, expect ~32,000 ones; allow 3%.
        assert!((31000..33000).contains(&ones), "{ones}");
    }

    #[test]
    fn gen_methods_work_through_traits() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let x = r.gen_range(1u64..=10);
        assert!((1..=10).contains(&x));
        let _: u64 = r.gen();
    }
}
