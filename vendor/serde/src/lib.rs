//! Offline stand-in for `serde` (+`serde_derive`).
//!
//! The container has no crates.io access, so this crate provides the
//! small serde surface the workspace actually uses, kept *source
//! compatible*: `#[derive(serde::Serialize, serde::Deserialize)]` on
//! structs with named fields and on unit-variant enums, driven through a
//! single self-describing data model ([`Value`], a JSON document tree)
//! instead of real serde's visitor architecture. `serde_json` (also
//! vendored) renders and parses that model as JSON text.

// Let this crate's own tests use the derives, whose expansion names
// paths as `serde::...`.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped document tree: the single data model every vendored
/// `Serialize`/`Deserialize` impl speaks.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Numbers keep their integer-ness so `u64` counts round-trip exactly.
    Num(Number),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered object (derived structs emit fields in order).
    Object(Vec<(String, Value)>),
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    U(u64),
    I(i64),
    F(f64),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Integer value, if the number is representable as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(Number::U(u)) => Some(*u),
            Value::Num(Number::I(i)) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// Numeric value widened to `f64` (any of the three number kinds).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(Number::U(u)) => Some(*u as f64),
            Value::Num(Number::I(i)) => Some(*i as f64),
            Value::Num(Number::F(f)) => Some(*f),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error: what was expected, what was found.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    pub fn expected(what: &str, got: &Value) -> DeError {
        DeError(format!("expected {what}, found {}", got.kind()))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialize error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Deserialization out of the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Fetch and convert one struct field (used by derived impls).
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    match v.get(name) {
        Some(f) => T::from_value(f).map_err(|e| DeError(format!("field `{name}`: {}", e.0))),
        None => Err(DeError(format!("missing field `{name}`"))),
    }
}

// --- Impls for the primitive / std types the workspace serializes -------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Num(Number::U(*self as u64)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                match v {
                    Value::Num(Number::U(n)) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range"))),
                    Value::Num(Number::I(n)) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range"))),
                    other => Err(DeError::expected("unsigned integer", other)),
                }
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Num(Number::I(*self as i64)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                match v {
                    Value::Num(Number::I(n)) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range"))),
                    Value::Num(Number::U(n)) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range"))),
                    other => Err(DeError::expected("integer", other)),
                }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, DeError> {
        match v {
            Value::Num(Number::F(f)) => Ok(*f),
            Value::Num(Number::U(n)) => Ok(*n as f64),
            Value::Num(Number::I(n)) => Ok(*n as f64),
            // Non-finite floats print as bare words; see serde_json's writer.
            Value::Str(s) if s == "Infinity" => Ok(f64::INFINITY),
            Value::Str(s) if s == "-Infinity" => Ok(f64::NEG_INFINITY),
            Value::Str(s) if s == "NaN" => Ok(f64::NAN),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(Number::F(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, DeError> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, DeError> {
        Ok(v.clone())
    }
}

// --- Conversions used by serde_json's `json!` macro ---------------------

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Num(Number::F(f))
    }
}

impl From<f32> for Value {
    fn from(f: f32) -> Value {
        Value::Num(Number::F(f as f64))
    }
}

macro_rules! value_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value { Value::Num(Number::U(n as u64)) }
        }
    )*};
}
value_from_uint!(u8, u16, u32, u64, usize);

macro_rules! value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value { Value::Num(Number::I(n as i64)) }
        }
    )*};
}
value_from_int!(i8, i16, i32, i64, isize);

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_struct_roundtrip() {
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct Point {
            x: u64,
            y: f64,
            label: String,
        }
        let p = Point {
            x: 3,
            y: -1.5,
            label: "hi".into(),
        };
        let v = p.to_value();
        assert_eq!(v.get("x"), Some(&Value::Num(Number::U(3))));
        let back = Point::from_value(&v).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn derive_unit_enum_roundtrip() {
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        enum Color {
            Red,
            GreenIsh,
        }
        assert_eq!(Color::Red.to_value(), Value::Str("Red".into()));
        assert_eq!(
            Color::from_value(&Value::Str("GreenIsh".into())).unwrap(),
            Color::GreenIsh
        );
        assert!(Color::from_value(&Value::Str("Blue".into())).is_err());
    }

    #[test]
    fn nested_and_optional_fields() {
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct Inner {
            n: u32,
        }
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct Outer {
            inner: Option<Inner>,
            items: Vec<u64>,
        }
        let a = Outer {
            inner: Some(Inner { n: 7 }),
            items: vec![1, 2, 3],
        };
        assert_eq!(Outer::from_value(&a.to_value()).unwrap(), a);
        let b = Outer {
            inner: None,
            items: vec![],
        };
        assert_eq!(Outer::from_value(&b.to_value()).unwrap(), b);
    }

    #[test]
    fn missing_field_reports_name() {
        #[derive(Debug, Serialize, Deserialize)]
        struct Needs {
            present: bool,
        }
        let e = Needs::from_value(&Value::Object(vec![])).unwrap_err();
        assert!(e.0.contains("present"), "{e}");
    }
}
