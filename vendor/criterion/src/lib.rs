//! Offline stand-in for `criterion`.
//!
//! Provides the `Criterion` / `benchmark_group` / `bench_function` /
//! `Bencher::iter` / `black_box` / `criterion_group!` / `criterion_main!`
//! surface the workspace's benches use. Instead of criterion's full
//! statistical pipeline it runs a short warmup, then `sample_size`
//! timed samples, and prints median ns/iter per benchmark.

use std::hint;
use std::time::Instant;

pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _c: self,
        }
    }

    pub fn bench_function<S, F>(&mut self, name: S, f: F) -> &mut Criterion
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        run_bench("", &name.into(), 10, f);
        self
    }
}

pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _c: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<S, F>(&mut self, name: S, f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        run_bench(&self.name, &name.into(), self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(group: &str, name: &str, samples: usize, mut f: F) {
    // Calibrate iters so one sample takes roughly 1ms, capped for
    // heavyweight bodies.
    let mut b = Bencher {
        iters: 1,
        elapsed_ns: 0,
    };
    f(&mut b);
    let per_iter = b.elapsed_ns.max(1);
    let iters = ((1_000_000 / per_iter) as u64).clamp(1, 10_000);

    let mut per_iter_ns: Vec<u128> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed_ns: 0,
            };
            f(&mut b);
            b.elapsed_ns / iters as u128
        })
        .collect();
    per_iter_ns.sort_unstable();
    let median = per_iter_ns[per_iter_ns.len() / 2];

    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    println!("bench {label:<48} {median:>12} ns/iter ({samples} samples x {iters} iters)");
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench binaries with --test; only time
            // things on an explicit `cargo bench` (--bench) or bare run.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut ran = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(41) + 1, 42);
    }
}
