//! Offline stand-in for `rayon`, scoped to what this workspace uses:
//! `into_par_iter().map(..).collect()` (order-preserving), `for_each`,
//! and a global thread-count knob via [`ThreadPoolBuilder::build_global`]
//! (the CLI's `--jobs N`).
//!
//! Work distribution is dynamic: a shared atomic cursor hands items to
//! `current_num_threads()` scoped `std::thread`s, so uneven item costs
//! (e.g. fault-injection experiments that hang until the budget trips)
//! still balance. Results land in their input positions, so `collect`
//! preserves order exactly like rayon's indexed collect.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Number of worker threads parallel calls will use.
pub fn current_num_threads() -> usize {
    match GLOBAL_THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Error from [`ThreadPoolBuilder::build_global`]. The shim never fails;
/// the type exists for API compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Configures the global degree of parallelism.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// `0` means "use all available cores".
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// Run `f` over every item, in parallel, returning results in input order.
fn run_parallel<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = current_num_threads().min(n).max(1);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().unwrap().take().expect("item taken once");
                let r = f(item);
                *out[i].lock().unwrap() = Some(r);
            });
        }
    });
    out.into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker filled slot"))
        .collect()
}

/// An about-to-run parallel iterator (items are materialized up front).
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A mapped parallel iterator.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParIter<T> {
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run_parallel(self.items, &|t| f(t));
    }

    pub fn collect<C: FromParallelIterator<T>>(self) -> C {
        C::from_ordered_vec(self.items)
    }
}

impl<T, R, F> ParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        C::from_ordered_vec(run_parallel(self.items, &self.f))
    }

    pub fn for_each<G>(self, g: G)
    where
        G: Fn(R) + Sync,
    {
        let f = self.f;
        run_parallel(self.items, &|t| g(f(t)));
    }
}

/// Collection targets for [`ParIter::collect`] / [`ParMap::collect`].
pub trait FromParallelIterator<R>: Sized {
    fn from_ordered_vec(v: Vec<R>) -> Self;
}

impl<R> FromParallelIterator<R> for Vec<R> {
    fn from_ordered_vec(v: Vec<R>) -> Vec<R> {
        v
    }
}

impl<T, E> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_ordered_vec(v: Vec<Result<T, E>>) -> Result<Vec<T>, E> {
        v.into_iter().collect()
    }
}

/// Types convertible into a parallel iterator.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! par_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
par_range!(u32, u64, usize, i32, i64);

pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 1000);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i * 2);
        }
    }

    #[test]
    fn result_collect_short_circuits_to_err() {
        let r: Result<Vec<u32>, String> = (0..100u32)
            .into_par_iter()
            .map(|i| {
                if i == 57 {
                    Err("boom".to_string())
                } else {
                    Ok(i)
                }
            })
            .collect();
        assert_eq!(r.unwrap_err(), "boom");
        let ok: Result<Vec<u32>, String> = (0..100u32).into_par_iter().map(Ok).collect();
        assert_eq!(ok.unwrap().len(), 100);
    }

    #[test]
    fn for_each_visits_everything() {
        let hits = AtomicUsize::new(0);
        (0..500usize).into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn thread_count_is_configurable() {
        // Not build_global here (shared state across tests); check default.
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn vec_into_par_iter() {
        let words = vec!["a".to_string(), "bb".to_string(), "ccc".to_string()];
        let lens: Vec<usize> = words.into_par_iter().map(|w| w.len()).collect();
        assert_eq!(lens, vec![1, 2, 3]);
    }
}
