//! Offline stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the *subset* of the `rand 0.8` API it actually uses: [`RngCore`],
//! [`Rng::gen`] / [`Rng::gen_range`], and [`SeedableRng`] (including the
//! PCG32-based `seed_from_u64` seed expansion, bit-compatible with
//! `rand_core 0.6`). Uniform range sampling is unbiased (rejection
//! sampling) but is not guaranteed to produce the same streams as the
//! upstream crate's Lemire implementation.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of random bits.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// A seedable RNG. `seed_from_u64` expands a 64-bit state through a PCG32
/// round per 4 seed bytes, exactly like `rand_core 0.6`.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(mut state: u64) -> Self {
        // PCG32 constants and output function, as used by rand_core.
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let word = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&word.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly over their whole domain (floats: `[0, 1)`).
pub trait StandardSample: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}
standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
              i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64,
              usize => next_u64, isize => next_u64);

impl StandardSample for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        // 24 random mantissa bits in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased uniform draw from `[0, width)` by rejection sampling.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, width: u64) -> u64 {
    debug_assert!(width > 0);
    if width.is_power_of_two() {
        return rng.next_u64() & (width - 1);
    }
    let zone = (u64::MAX / width) * width;
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % width;
        }
    }
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64(rng, width) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let width = (hi as i128 - lo as i128) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, width + 1) as $t)
            }
        }
    )*};
}
range_int!(u32, u64, usize, i32, i64);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
range_float!(f32, f64);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::*;

    /// A small, fast, seedable generator (SplitMix64) for code that asks
    /// for "some deterministic RNG" without caring which.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let w = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&w[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 8];

        fn from_seed(seed: [u8; 8]) -> SmallRng {
            SmallRng {
                state: u64::from_le_bytes(seed),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(1u64..=5);
            assert!((1..=5).contains(&y));
            let f = r.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn standard_floats_are_unit_interval() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = r.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }
}
