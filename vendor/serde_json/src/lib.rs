//! Offline stand-in for `serde_json`: JSON text over the vendored
//! [`serde::Value`] data model. Provides `to_string`, `to_string_pretty`,
//! `from_str`, and the `json!` literal macro — the full surface this
//! workspace uses.

pub use serde::{DeError as Error, Number, Value};

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Serialize a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize a value to human-readable JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let v = parse_value(text)?;
    T::from_value(&v)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Convert a [`Value`] tree into any deserializable type.
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T, Error> {
    T::from_value(v)
}

// --- Writer --------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match n {
        Number::U(u) => {
            let _ = write!(out, "{u}");
        }
        Number::I(i) => {
            let _ = write!(out, "{i}");
        }
        Number::F(f) if f.is_finite() => {
            // Rust's float Display is shortest-round-trip, so `from_str`
            // recovers the bit pattern exactly. Keep a trailing `.0` on
            // integral floats so they stay floats across the trip.
            if f.fract() == 0.0 && f.abs() < 1e15 {
                let _ = write!(out, "{f:.1}");
            } else {
                let _ = write!(out, "{f}");
            }
        }
        // Non-finite floats have no JSON representation; write a string
        // (the vendored serde's f64 deserializer accepts these back).
        Number::F(f) if f.is_nan() => out.push_str("\"NaN\""),
        Number::F(f) if *f > 0.0 => out.push_str("\"Infinity\""),
        Number::F(_) => out.push_str("\"-Infinity\""),
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    let (nl, pad, pad_close, colon) = match indent {
        Some(w) => (
            "\n",
            " ".repeat(w * (depth + 1)),
            " ".repeat(w * depth),
            ": ",
        ),
        None => ("", String::new(), String::new(), ":"),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(out, n),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_value(out, item, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_escaped(out, k);
                out.push_str(colon);
                write_value(out, item, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
}

// --- Parser --------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("JSON parse error at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b't' if self.eat_literal("true") => Ok(Value::Bool(true)),
            b'f' if self.eat_literal("false") => Ok(Value::Bool(false)),
            b'n' if self.eat_literal("null") => Ok(Value::Null),
            b'-' | b'0'..=b'9' => self.parse_number(),
            c => Err(self.err(&format!("unexpected `{}`", c as char))),
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let hex = std::str::from_utf8(hex).map_err(|_| self.err("bad \\u"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u digits"))?;
                            self.pos += 4;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        c => return Err(self.err(&format!("bad escape `\\{}`", c as char))),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if is_float {
            let f: f64 = text.parse().map_err(|_| self.err("bad float"))?;
            Ok(Value::Num(Number::F(f)))
        } else if text.starts_with('-') {
            let i: i64 = text.parse().map_err(|_| self.err("bad integer"))?;
            Ok(Value::Num(Number::I(i)))
        } else {
            let u: u64 = text.parse().map_err(|_| self.err("bad integer"))?;
            Ok(Value::Num(Number::U(u)))
        }
    }
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.parse()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

// --- json! macro ----------------------------------------------------------

/// Build a [`Value`] from a JSON-like literal. Supports objects with
/// string-literal keys whose values are arbitrary expressions convertible
/// to `Value` via `Into` (use `vec![..]` for arrays inside objects),
/// plus top-level arrays and `null`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($item) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::Value::from($val)) ),*
        ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_rendering() {
        let v = json!({
            "name": "vulfi",
            "count": 3u64,
            "rate": 42.5f64,
            "tags": vec!["a", "b"],
            "none": Value::Null,
        });
        let compact = to_string(&v).unwrap();
        assert_eq!(
            compact,
            r#"{"name":"vulfi","count":3,"rate":42.5,"tags":["a","b"],"none":null}"#
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("  \"count\": 3"), "{pretty}");
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
    }

    #[test]
    fn parse_handles_escapes_and_nesting() {
        let v: Value = from_str(r#"{"s": "a\"b\\c\nd", "n": [1, -2, 3.5e2]}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "a\"b\\c\nd");
        let arr = v.get("n").unwrap().as_array().unwrap();
        assert_eq!(arr[0], Value::Num(Number::U(1)));
        assert_eq!(arr[1], Value::Num(Number::I(-2)));
        assert_eq!(arr[2], Value::Num(Number::F(350.0)));
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1f64, 1.0 / 3.0, 99.000000001, 1e-30, -7.25, 40.0] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{text}");
        }
    }

    #[test]
    fn non_finite_floats_survive() {
        let inf = to_string(&f64::INFINITY).unwrap();
        assert_eq!(from_str::<f64>(&inf).unwrap(), f64::INFINITY);
        let nan = to_string(&f64::NAN).unwrap();
        assert!(from_str::<f64>(&nan).unwrap().is_nan());
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn integral_floats_stay_floats() {
        let text = to_string(&40.0f64).unwrap();
        assert_eq!(text, "40.0");
        assert_eq!(
            from_str::<Value>(&text).unwrap(),
            Value::Num(Number::F(40.0))
        );
    }
}
