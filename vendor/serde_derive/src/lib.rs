//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! serde facade.
//!
//! Since the offline container has neither `syn` nor `quote`, the item is
//! parsed directly from the `proc_macro::TokenStream`. Supported shapes —
//! which cover every derive in this workspace — are structs with named
//! fields and enums whose variants are all unit variants. Generics,
//! tuple/unit structs, and data-carrying enum variants are rejected with
//! a compile error rather than silently mis-handled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    /// Struct name + field names, in declaration order.
    Struct(String, Vec<String>),
    /// Enum name + unit variant names.
    Enum(String, Vec<String>),
}

/// Skip attributes (`#[...]`, including doc comments) and visibility
/// (`pub`, `pub(...)`) at the cursor.
fn skip_meta(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` followed by a bracket group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_meta(&tokens, 0);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    if kind != "struct" && kind != "enum" {
        return Err(format!("cannot derive for `{kind}` items"));
    }
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!("generic type `{name}` is not supported"));
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => {
            return Err(format!(
                "`{name}`: only braced {kind}s with named members are supported"
            ))
        }
    };
    let body: Vec<TokenTree> = body.into_iter().collect();
    let mut names = Vec::new();
    let mut j = 0;
    while j < body.len() {
        j = skip_meta(&body, j);
        let Some(tt) = body.get(j) else { break };
        let TokenTree::Ident(id) = tt else {
            return Err(format!("`{name}`: unexpected token {tt} in body"));
        };
        names.push(id.to_string());
        j += 1;
        match (kind.as_str(), body.get(j)) {
            // Struct field: `name : Type ,` — skip to the next top-level comma.
            ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ':' => {
                j += 1;
                while j < body.len() {
                    if let TokenTree::Punct(p) = &body[j] {
                        if p.as_char() == ',' {
                            j += 1;
                            break;
                        }
                        // `<` .. `>` inside types contain no top-level commas
                        // in this token model only when angle brackets are
                        // punctuation — track nesting depth.
                        if p.as_char() == '<' {
                            let mut depth = 1;
                            j += 1;
                            while j < body.len() && depth > 0 {
                                if let TokenTree::Punct(q) = &body[j] {
                                    match q.as_char() {
                                        '<' => depth += 1,
                                        '>' => depth -= 1,
                                        _ => {}
                                    }
                                }
                                j += 1;
                            }
                            continue;
                        }
                    }
                    j += 1;
                }
            }
            // Unit enum variant: `Name ,` or final `Name`.
            ("enum", Some(TokenTree::Punct(p))) if p.as_char() == ',' => j += 1,
            ("enum", None) => {}
            ("enum", Some(other)) => {
                return Err(format!(
                    "`{name}`: only unit enum variants are supported, found `{other}` after `{}`",
                    names.last().unwrap()
                ));
            }
            ("struct", _) => {
                return Err(format!("`{name}`: only named struct fields are supported"));
            }
            _ => unreachable!(),
        }
    }
    Ok(if kind == "struct" {
        Item::Struct(name, names)
    } else {
        Item::Enum(name, names)
    })
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::Struct(name, fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__o.push(({f:?}.to_string(), \
                         serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         let mut __o: Vec<(String, serde::Value)> = Vec::new();\n\
                         {pushes}\n\
                         serde::Value::Object(__o)\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?},"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Str(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::Struct(name, fields) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: serde::field(__v, {f:?})?,"))
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                         if __v.as_object().is_none() {{\n\
                             return Err(serde::DeError::expected({name:?}, __v));\n\
                         }}\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => Ok({name}::{v}),"))
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                         match __v.as_str() {{\n\
                             Some(__s) => match __s {{\n\
                                 {arms}\n\
                                 other => Err(serde::DeError(format!(\n\
                                     \"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             None => Err(serde::DeError::expected({name:?}, __v)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}
