//! Offline stand-in for `proptest`.
//!
//! Re-implements the subset of proptest's API this workspace's property
//! tests use — `proptest!`, `prop_assert*`, `prop_oneof!`, `Just`,
//! ranges/tuples as strategies, `any::<T>()`, `prop::collection::vec`,
//! `prop_map`, `prop_recursive`, `ProptestConfig::with_cases` — as a
//! plain randomized test runner. Failing inputs are printed but **not
//! shrunk** (upstream's key extra); cases are seeded deterministically
//! per test name, so failures reproduce run-to-run.

use std::rc::Rc;

// --- RNG -----------------------------------------------------------------

/// SplitMix64; deterministic per (test name, case index).
#[derive(Debug, Clone)]
pub struct PropRng {
    state: u64,
}

impl PropRng {
    pub fn for_case(test_name: &str, case: u32) -> PropRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        PropRng {
            state: h ^ ((case as u64).wrapping_mul(0x9E3779B97F4A7C15)),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = (u64::MAX / bound) * bound;
        loop {
            let x = self.next_u64();
            if x < zone {
                return x % bound;
            }
        }
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// --- Config --------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

// --- Strategy ------------------------------------------------------------

/// A generator of random values (no shrinking).
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut PropRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut PropRng| self.sample(rng)))
    }

    /// Depth-bounded recursive strategies. `_desired_size` and
    /// `_expected_branch` are accepted for API compatibility; recursion
    /// chance halves per level instead.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let expanded = f(cur).boxed();
            let leaf2 = leaf.clone();
            cur = BoxedStrategy(Rc::new(move |rng: &mut PropRng| {
                if rng.below(2) == 0 {
                    leaf2.sample(rng)
                } else {
                    expanded.sample(rng)
                }
            }));
        }
        cur
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut PropRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> BoxedStrategy<V> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut PropRng) -> V {
        (self.0)(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;
    fn sample(&self, _rng: &mut PropRng) -> V {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut PropRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between boxed alternatives (the `prop_oneof!` payload).
pub struct Union<V> {
    pub arms: Vec<BoxedStrategy<V>>,
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut PropRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

// --- Ranges as strategies -------------------------------------------------

macro_rules! strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut PropRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(width) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut PropRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as i128 - lo as i128) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(width + 1) as $t)
            }
        }
    )*};
}
strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut PropRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
strategy_float_range!(f32, f64);

// --- Tuples of strategies -------------------------------------------------

macro_rules! strategy_tuple {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut PropRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
strategy_tuple! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

// --- any::<T>() -----------------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut PropRng) -> Self;
}

macro_rules! arb_via_bits {
    ($($t:ty => $bits:expr),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut PropRng) -> $t {
                (rng.next_u64() >> (64 - $bits)) as $t
            }
        }
    )*};
}
arb_via_bits!(u8 => 8, u16 => 16, u32 => 32, i8 => 8, i16 => 16, i32 => 32);

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut PropRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut PropRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut PropRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut PropRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut PropRng) -> f32 {
        // Mostly well-behaved magnitudes, occasionally extreme/special.
        match rng.below(8) {
            0 => f32::from_bits(rng.next_u32()),
            _ => ((rng.unit_f64() - 0.5) * 2.0e3) as f32,
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut PropRng) -> f64 {
        match rng.below(8) {
            0 => f64::from_bits(rng.next_u64()),
            _ => (rng.unit_f64() - 0.5) * 2.0e6,
        }
    }
}

/// Strategy wrapper over [`Arbitrary`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut PropRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// --- prop:: namespace -----------------------------------------------------

pub mod prop {
    pub mod collection {
        use crate::{PropRng, Strategy};

        /// Length bound for [`vec`]: a fixed size, `min..max`, or `min..=max`.
        pub struct SizeRange {
            min: usize,
            /// Exclusive upper bound.
            max: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> SizeRange {
                SizeRange { min: n, max: n + 1 }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> SizeRange {
                SizeRange {
                    min: r.start,
                    max: r.end,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
                SizeRange {
                    min: *r.start(),
                    max: *r.end() + 1,
                }
            }
        }

        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut PropRng) -> Vec<S::Value> {
                let width = (self.size.max - self.size.min).max(1) as u64;
                let len = self.size.min + rng.below(width) as usize;
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// `prop::collection::vec(strategy, len)` / `vec(strategy, min..max)`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

// --- Macros ---------------------------------------------------------------

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any,
        Arbitrary, BoxedStrategy, Just, PropRng, ProptestConfig, Strategy,
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union { arms: vec![ $( $crate::Strategy::boxed($arm) ),+ ] }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond), format!($($fmt)+), file!(), line!()
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return Err(format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`) at {}:{}",
                stringify!($a), stringify!($b), __a, __b, file!(), line!()
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return Err(format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`, {}) at {}:{}",
                stringify!($a), stringify!($b), __a, __b, format!($($fmt)+),
                file!(), line!()
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return Err(format!(
                "assertion failed: `{} != {}` (both: `{:?}`) at {}:{}",
                stringify!($a),
                stringify!($b),
                __a,
                file!(),
                line!()
            ));
        }
    }};
}

/// Bind `pat in strategy` / `ident: Type` parameters, then leave the
/// test body to run. Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, ) => {};
    ($rng:ident, $p:pat in $s:expr, $($rest:tt)*) => {
        let $p = $crate::Strategy::sample(&$s, &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $p:pat in $s:expr) => {
        let $p = $crate::Strategy::sample(&$s, &mut $rng);
    };
    ($rng:ident, $i:ident : $t:ty, $($rest:tt)*) => {
        let $i = <$t as $crate::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $i:ident : $t:ty) => {
        let $i = <$t as $crate::Arbitrary>::arbitrary(&mut $rng);
    };
}

/// Expand the test functions. Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*) => {
        #[test]
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::PropRng::for_case(stringify!($name), __case);
                let __outcome: ::std::result::Result<(), ::std::string::String> = {
                    $crate::__proptest_bind!(__rng, $($params)*);
                    #[allow(clippy::redundant_closure_call)]
                    (|| { $body Ok(()) })()
                };
                if let Err(__e) = __outcome {
                    panic!("proptest case {}/{} failed:\n{}", __case + 1, __cfg.cases, __e);
                }
            }
        }
        $crate::__proptest_fns!{ @cfg($cfg) $($rest)* }
    };
}

/// proptest's entry macro: a block of `#[test] fn name(bindings) { .. }`
/// items, each run for `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        let mut a = PropRng::for_case("t", 3);
        let mut b = PropRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = PropRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_anys_bind(x in 1u64..100, y: u32, flag: bool) {
            prop_assert!((1..100).contains(&x));
            let _ = (y, flag);
        }

        #[test]
        fn vec_strategy_respects_size(v in prop::collection::vec(0i32..5, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9, "len {}", v.len());
            for x in &v {
                prop_assert!((0..5).contains(x));
            }
        }

        #[test]
        fn oneof_and_map_work(e in prop_oneof![
            Just(0u8),
            (1u8..4).prop_map(|n| n * 10),
        ]) {
            prop_assert!(e == 0 || (10..40).contains(&e));
        }

        #[test]
        fn tuples_sample_elementwise((a, b) in (0u32..10, 10u32..20)) {
            prop_assert!(a < 10 && (10..20).contains(&b));
        }
    }

    proptest! {
        #[test]
        fn recursive_strategies_terminate(n in Just(1u8).prop_recursive(3, 8, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| a.saturating_add(b))
        })) {
            prop_assert!(n >= 1);
        }

        #[test]
        fn trailing_comma_params_parse(a: i32, b: i32,) {
            let _ = (a, b);
            prop_assert!(true);
        }
    }
}
