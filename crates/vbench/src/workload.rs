//! The concrete [`Workload`] implementation for SPMD-C benchmark kernels.

use spmdc::VectorIsa;
use vexec::{Memory, Trap};
use vir::Module;
use vulfi::workload::{SetupResult, Workload};

/// Setup callback type: deterministically materialize input `i`.
pub type SetupFn = Box<dyn Fn(&mut Memory, u64) -> Result<SetupResult, Trap> + Send + Sync>;

/// A benchmark: a compiled SPMD-C kernel plus its input family.
pub struct SpmdWorkload {
    name: String,
    entry: String,
    module: Module,
    isa: VectorIsa,
    num_inputs: u64,
    setup: SetupFn,
    /// Source language label for Table I ("C++ (SPMD-C)" or "ISPC (SPMD-C)").
    pub language: &'static str,
    /// Suite label for Table I ("Parvec", "ISPC", "SCL", "Micro").
    pub suite: &'static str,
    /// Test-input description for Table I.
    pub input_desc: String,
}

impl SpmdWorkload {
    /// Compile `src` for `isa` and wrap it as a workload.
    #[allow(clippy::too_many_arguments)]
    pub fn compile(
        name: impl Into<String>,
        suite: &'static str,
        language: &'static str,
        input_desc: impl Into<String>,
        src: &str,
        entry: impl Into<String>,
        isa: VectorIsa,
        num_inputs: u64,
        setup: SetupFn,
    ) -> Result<SpmdWorkload, spmdc::CompileError> {
        let name = name.into();
        let entry = entry.into();
        let module = spmdc::compile(src, isa, &name)?;
        Ok(SpmdWorkload {
            name,
            entry,
            module,
            isa,
            num_inputs,
            setup,
            language,
            suite,
            input_desc: input_desc.into(),
        })
    }

    pub fn isa(&self) -> VectorIsa {
        self.isa
    }
}

impl Workload for SpmdWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn entry(&self) -> &str {
        &self.entry
    }

    fn module(&self) -> &Module {
        &self.module
    }

    fn num_inputs(&self) -> u64 {
        self.num_inputs
    }

    fn setup(&self, mem: &mut Memory, input: u64) -> Result<SetupResult, Trap> {
        (self.setup)(mem, input % self.num_inputs.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vexec::{RtVal, Scalar};
    use vulfi::workload::OutputRegion;

    #[test]
    fn compile_and_run_a_workload() {
        let src = r#"
export void negate(uniform float a[], uniform int n) {
    foreach (i = 0 ... n) {
        a[i] = -a[i];
    }
}
"#;
        let w = SpmdWorkload::compile(
            "negate",
            "Micro",
            "SPMD-C",
            "n in {6}",
            src,
            "negate",
            VectorIsa::Avx,
            1,
            Box::new(|mem, _| {
                let a = mem.alloc_f32_slice(&[1.0, -2.0, 3.0, -4.0, 5.0, -6.0])?;
                Ok(SetupResult {
                    args: vec![RtVal::Scalar(Scalar::ptr(a)), RtVal::Scalar(Scalar::i32(6))],
                    outputs: vec![OutputRegion { addr: a, bytes: 24 }],
                })
            }),
        )
        .unwrap();
        assert_eq!(w.name(), "negate");
        assert_eq!(w.isa(), VectorIsa::Avx);
        let d = vulfi::campaign::measure_dyn_insts(w.module(), w.entry(), &w, 0).unwrap();
        assert!(d > 0);
    }
}
