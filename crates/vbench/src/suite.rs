//! The benchmark registry: the nine study programs of paper Table I plus
//! the three §IV-E micro-benchmarks, each buildable for AVX and SSE.

use spmdc::VectorIsa;

use crate::micro;
use crate::suite_ext;
use crate::suite_ispc;
use crate::suite_parvec;
use crate::suite_scl;
use crate::util::Scale;
use crate::workload::SpmdWorkload;

/// Names of the nine study benchmarks, in the paper's Table I order.
pub const STUDY_NAMES: [&str; 9] = [
    "Fluidanimate",
    "Swaptions",
    "Blackscholes",
    "Sorting",
    "Stencil",
    "Ray tracing",
    "Chebyshev",
    "Jacobi",
    "ConjugateGradient",
];

/// Names of the three micro-benchmarks, in the paper's Fig. 12 order.
pub const MICRO_NAMES: [&str; 3] = ["vector copy", "dot product", "vector sum"];

/// Build all nine study benchmarks for one target.
pub fn study_benchmarks(isa: VectorIsa, scale: Scale) -> Vec<SpmdWorkload> {
    vec![
        suite_parvec::fluidanimate(isa, scale),
        suite_parvec::swaptions(isa, scale),
        suite_ispc::blackscholes(isa, scale),
        suite_ispc::sorting(isa, scale),
        suite_ispc::stencil(isa, scale),
        suite_ispc::raytracing(isa, scale),
        suite_scl::chebyshev(isa, scale),
        suite_scl::jacobi(isa, scale),
        suite_scl::conjugate_gradient(isa, scale),
    ]
}

/// Build one study benchmark by its Table I name.
pub fn study_benchmark(name: &str, isa: VectorIsa, scale: Scale) -> Option<SpmdWorkload> {
    Some(match name {
        "Fluidanimate" => suite_parvec::fluidanimate(isa, scale),
        "Swaptions" => suite_parvec::swaptions(isa, scale),
        "Blackscholes" => suite_ispc::blackscholes(isa, scale),
        "Sorting" => suite_ispc::sorting(isa, scale),
        "Stencil" => suite_ispc::stencil(isa, scale),
        "Ray tracing" => suite_ispc::raytracing(isa, scale),
        "Chebyshev" => suite_scl::chebyshev(isa, scale),
        "Jacobi" => suite_scl::jacobi(isa, scale),
        "ConjugateGradient" => suite_scl::conjugate_gradient(isa, scale),
        "Mandelbrot" => suite_ext::mandelbrot(isa, scale),
        _ => return None,
    })
}

/// Build the three micro-benchmarks for one target.
pub fn micro_benchmarks(isa: VectorIsa, scale: Scale) -> Vec<SpmdWorkload> {
    micro::micro_benchmarks(isa, scale)
}

/// Extension benchmarks beyond the paper's Table I (currently:
/// Mandelbrot, exercising divergent varying `while` loops).
pub fn extension_benchmarks(isa: VectorIsa, scale: Scale) -> Vec<SpmdWorkload> {
    vec![suite_ext::mandelbrot(isa, scale)]
}

/// Build one micro-benchmark by name.
pub fn micro_benchmark(name: &str, isa: VectorIsa, scale: Scale) -> Option<SpmdWorkload> {
    Some(match name {
        "vector copy" => micro::vector_copy(isa, scale),
        "dot product" => micro::dot_product(isa, scale),
        "vector sum" => micro::vector_sum(isa, scale),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vexec::{Interp, NoHost};
    use vulfi::workload::Workload;

    #[test]
    fn all_nine_compile_on_both_targets() {
        for isa in VectorIsa::ALL {
            let all = study_benchmarks(isa, Scale::Test);
            assert_eq!(all.len(), 9);
            for (w, name) in all.iter().zip(STUDY_NAMES) {
                assert_eq!(w.name(), name);
                vir::verify::verify_module(w.module())
                    .unwrap_or_else(|e| panic!("{name}/{isa}: {e}"));
            }
        }
    }

    #[test]
    fn all_nine_run_all_inputs_golden() {
        for isa in VectorIsa::ALL {
            for w in study_benchmarks(isa, Scale::Test) {
                for input in 0..w.num_inputs() {
                    let mut interp = Interp::new(w.module());
                    let setup = w.setup(&mut interp.mem, input).unwrap();
                    interp
                        .run(w.entry(), &setup.args, &mut NoHost)
                        .unwrap_or_else(|t| {
                            panic!("{}/{isa} input {input} trapped: {t}", w.name())
                        });
                }
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(study_benchmark("Stencil", VectorIsa::Avx, Scale::Test).is_some());
        assert!(study_benchmark("NoSuch", VectorIsa::Avx, Scale::Test).is_none());
        assert!(micro_benchmark("dot product", VectorIsa::Sse4, Scale::Test).is_some());
        assert!(micro_benchmark("nope", VectorIsa::Sse4, Scale::Test).is_none());
    }

    #[test]
    fn every_study_benchmark_has_vector_instructions() {
        // The whole point of the suite: these are *vector* programs.
        for w in study_benchmarks(VectorIsa::Avx, Scale::Test) {
            let f = w.module().function(w.entry()).unwrap();
            let has_vec = f.placed_insts().any(|(_, i)| f.inst_is_vector(i));
            assert!(has_vec, "{} has no vector instructions", w.name());
        }
    }
}
