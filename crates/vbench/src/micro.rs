//! The three micro-benchmarks of the paper's error-detection study
//! (§IV-E): vector copy (Fig. 6), vector dot product, and vector sum.

use spmdc::VectorIsa;
use vexec::{RtVal, Scalar};
use vulfi::workload::{OutputRegion, SetupResult};

use crate::util::{DetRng, Scale};
use crate::workload::SpmdWorkload;

/// Vector copy, exactly the paper's Fig. 6 program.
pub const VCOPY_SRC: &str = r#"
export void vcopy_ispc(uniform int a1[], uniform int a2[], uniform int n) {
    foreach (i = 0 ... n) {
        a2[i] = a1[i];
    }
}
"#;

pub const DOTPROD_SRC: &str = r#"
export uniform float dotprod_ispc(uniform float a[], uniform float b[], uniform int n) {
    uniform float sum = 0.0;
    foreach (i = 0 ... n) {
        sum += reduce_add(a[i] * b[i]);
    }
    return sum;
}
"#;

pub const VSUM_SRC: &str = r#"
export uniform float vsum_ispc(uniform float a[], uniform int n) {
    uniform float sum = 0.0;
    foreach (i = 0 ... n) {
        sum += reduce_add(a[i]);
    }
    return sum;
}
"#;

fn sizes(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Test => vec![33, 64, 101],
        Scale::Paper => vec![1000, 4096, 10_000],
    }
}

/// Build the vector-copy micro-benchmark.
pub fn vector_copy(isa: VectorIsa, scale: Scale) -> SpmdWorkload {
    let ns = sizes(scale);
    let count = ns.len() as u64;
    SpmdWorkload::compile(
        "vector copy",
        "Micro",
        "ISPC (SPMD-C)",
        format!("1D array length: {ns:?}"),
        VCOPY_SRC,
        "vcopy_ispc",
        isa,
        count,
        Box::new(move |mem, input| {
            let n = ns[input as usize % ns.len()];
            let mut rng = DetRng::new(0xC0FE + input);
            let vals: Vec<i32> = (0..n).map(|_| rng.below_i32(1 << 20)).collect();
            let a1 = mem.alloc_i32_slice(&vals)?;
            let a2 = mem.alloc_i32_slice(&vec![0; n])?;
            Ok(SetupResult {
                args: vec![
                    RtVal::Scalar(Scalar::ptr(a1)),
                    RtVal::Scalar(Scalar::ptr(a2)),
                    RtVal::Scalar(Scalar::i32(n as i32)),
                ],
                outputs: vec![OutputRegion {
                    addr: a2,
                    bytes: (n * 4) as u64,
                }],
            })
        }),
    )
    .expect("vector copy compiles")
}

/// Build the dot-product micro-benchmark.
pub fn dot_product(isa: VectorIsa, scale: Scale) -> SpmdWorkload {
    let ns = sizes(scale);
    let count = ns.len() as u64;
    SpmdWorkload::compile(
        "dot product",
        "Micro",
        "ISPC (SPMD-C)",
        format!("1D array length: {ns:?}"),
        DOTPROD_SRC,
        "dotprod_ispc",
        isa,
        count,
        Box::new(move |mem, input| {
            let n = ns[input as usize % ns.len()];
            let mut rng = DetRng::new(0xD07 + input);
            let a = mem.alloc_f32_slice(&rng.f32_vec(n, -1.0, 1.0))?;
            let b = mem.alloc_f32_slice(&rng.f32_vec(n, -1.0, 1.0))?;
            Ok(SetupResult {
                args: vec![
                    RtVal::Scalar(Scalar::ptr(a)),
                    RtVal::Scalar(Scalar::ptr(b)),
                    RtVal::Scalar(Scalar::i32(n as i32)),
                ],
                // The returned scalar is the only output.
                outputs: vec![],
            })
        }),
    )
    .expect("dot product compiles")
}

/// Build the vector-sum micro-benchmark.
pub fn vector_sum(isa: VectorIsa, scale: Scale) -> SpmdWorkload {
    let ns = sizes(scale);
    let count = ns.len() as u64;
    SpmdWorkload::compile(
        "vector sum",
        "Micro",
        "ISPC (SPMD-C)",
        format!("1D array length: {ns:?}"),
        VSUM_SRC,
        "vsum_ispc",
        isa,
        count,
        Box::new(move |mem, input| {
            let n = ns[input as usize % ns.len()];
            let mut rng = DetRng::new(0x5A5 + input);
            let a = mem.alloc_f32_slice(&rng.f32_vec(n, -2.0, 2.0))?;
            Ok(SetupResult {
                args: vec![
                    RtVal::Scalar(Scalar::ptr(a)),
                    RtVal::Scalar(Scalar::i32(n as i32)),
                ],
                outputs: vec![],
            })
        }),
    )
    .expect("vector sum compiles")
}

/// All three §IV-E micro-benchmarks.
pub fn micro_benchmarks(isa: VectorIsa, scale: Scale) -> Vec<SpmdWorkload> {
    vec![
        vector_copy(isa, scale),
        dot_product(isa, scale),
        vector_sum(isa, scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use vexec::{Interp, NoHost};
    use vulfi::workload::Workload;

    #[test]
    fn vcopy_copies() {
        for isa in VectorIsa::ALL {
            let w = vector_copy(isa, Scale::Test);
            let mut interp = Interp::new(w.module());
            let setup = w.setup(&mut interp.mem, 0).unwrap();
            interp.run(w.entry(), &setup.args, &mut NoHost).unwrap();
            let n = 33;
            let a1 = setup.args[0].scalar().as_u64();
            let a2 = setup.args[1].scalar().as_u64();
            assert_eq!(
                interp.mem.read_i32_slice(a1, n).unwrap(),
                interp.mem.read_i32_slice(a2, n).unwrap()
            );
        }
    }

    #[test]
    fn dotprod_matches_reference() {
        let w = dot_product(VectorIsa::Avx, Scale::Test);
        let mut interp = Interp::new(w.module());
        let setup = w.setup(&mut interp.mem, 1).unwrap();
        let n = 64usize;
        let a = setup.args[0].scalar().as_u64();
        let b = setup.args[1].scalar().as_u64();
        let av = interp.mem.read_f32_slice(a, n).unwrap();
        let bv = interp.mem.read_f32_slice(b, n).unwrap();
        let r = interp.run(w.entry(), &setup.args, &mut NoHost).unwrap();
        let got = r.ret.unwrap().scalar().as_f32();
        let expect: f32 = av.iter().zip(&bv).map(|(x, y)| x * y).sum();
        assert!((got - expect).abs() < 1e-3, "{got} vs {expect}");
    }

    #[test]
    fn vsum_matches_reference() {
        let w = vector_sum(VectorIsa::Sse4, Scale::Test);
        let mut interp = Interp::new(w.module());
        let setup = w.setup(&mut interp.mem, 2).unwrap();
        let n = 101usize;
        let a = setup.args[0].scalar().as_u64();
        let av = interp.mem.read_f32_slice(a, n).unwrap();
        let r = interp.run(w.entry(), &setup.args, &mut NoHost).unwrap();
        let got = r.ret.unwrap().scalar().as_f32();
        let expect: f32 = av.iter().sum();
        assert!((got - expect).abs() < 1e-3, "{got} vs {expect}");
    }

    #[test]
    fn inputs_are_deterministic() {
        let w = vector_copy(VectorIsa::Avx, Scale::Test);
        let snap = |input: u64| {
            let mut mem = vexec::Memory::default();
            let s = w.setup(&mut mem, input).unwrap();
            let a1 = s.args[0].scalar().as_u64();
            mem.read_i32_slice(a1, 33).unwrap()
        };
        assert_eq!(snap(0), snap(0));
        assert_ne!(snap(0), snap(1), "different inputs differ");
    }
}
