//! PARVEC-derived benchmarks (paper Table I): `Fluidanimate` and
//! `Swaptions`. The paper uses the PARVEC vectorized C++ codes; here both
//! are re-implemented as SPMD-C kernels that keep the computational core —
//! an O(n²) SPH density sweep for fluidanimate and an HJM-style Monte-Carlo
//! rate simulation for swaptions (per-lane LCG paths, as the real
//! hardware/testbed RNG is unavailable).

use spmdc::VectorIsa;
use vexec::{RtVal, Scalar};
use vulfi::workload::{OutputRegion, SetupResult};

use crate::util::{DetRng, Scale};
use crate::workload::SpmdWorkload;

/// SPH particle-density kernel (the heart of fluidanimate's
/// ComputeDensities phase), all-pairs form.
pub const FLUIDANIMATE_SRC: &str = r#"
export void fluid_density(uniform float px[], uniform float py[], uniform float pz[],
                          uniform float density[], uniform int n, uniform float h2) {
    foreach (i = 0 ... n) {
        float xi = px[i];
        float yi = py[i];
        float zi = pz[i];
        float rho = 0.0;
        for (uniform int j = 0; j < n; j++) {
            uniform float xj = px[j];
            uniform float yj = py[j];
            uniform float zj = pz[j];
            float dx = xi - xj;
            float dy = yi - yj;
            float dz = zi - zj;
            float r2 = dx * dx + dy * dy + dz * dz;
            if (r2 < h2) {
                float diff = h2 - r2;
                rho += diff * diff * diff;
            }
        }
        density[i] = rho;
    }
}
"#;

/// Monte-Carlo swaption pricing: per-lane LCG paths of a mean-zero rate
/// walk, averaged into a discounted payoff.
pub const SWAPTIONS_SRC: &str = r#"
export void swaptions_price(uniform float strike[], uniform float vol[], uniform float r0[],
                            uniform float prices[], uniform int nsw, uniform int npaths,
                            uniform int nsteps) {
    for (uniform int s = 0; s < nsw; s++) {
        uniform float K = strike[s];
        uniform float sigma = vol[s];
        uniform float r = r0[s];
        uniform float sum = 0.0;
        foreach (p = 0 ... npaths) {
            int seed = p * 1103515245 + 12345 + s * 7919;
            float rate = r;
            for (uniform int t = 0; t < nsteps; t++) {
                seed = seed * 1103515245 + 12345;
                int u = (seed >> 8) & 65535;
                float z = ((float)u / 65536.0) - 0.5;
                rate = rate + sigma * z * 0.1;
                rate = max(rate, 0.0);
            }
            float payoff = max(rate - K, 0.0);
            sum += reduce_add(payoff);
        }
        prices[s] = sum / (float)npaths * exp(-r);
    }
}
"#;

/// Reference SPH density (for tests).
pub fn fluid_density_ref(px: &[f32], py: &[f32], pz: &[f32], h2: f32) -> Vec<f32> {
    let n = px.len();
    (0..n)
        .map(|i| {
            let mut rho = 0.0f32;
            for j in 0..n {
                let dx = px[i] - px[j];
                let dy = py[i] - py[j];
                let dz = pz[i] - pz[j];
                let r2 = dx * dx + dy * dy + dz * dz;
                if r2 < h2 {
                    let diff = h2 - r2;
                    rho += diff * diff * diff;
                }
            }
            rho
        })
        .collect()
}

pub fn fluidanimate(isa: VectorIsa, scale: Scale) -> SpmdWorkload {
    let sizes = match scale {
        Scale::Test => vec![24usize, 40],
        Scale::Paper => vec![200, 350],
    };
    let count = sizes.len() as u64;
    SpmdWorkload::compile(
        "Fluidanimate",
        "Parvec",
        "C++ (SPMD-C)",
        "sim_small / sim_medium particle sets",
        FLUIDANIMATE_SRC,
        "fluid_density",
        isa,
        count,
        Box::new(move |mem, input| {
            let n = sizes[input as usize % sizes.len()];
            let mut rng = DetRng::new(0xF1u64 + input);
            let px = rng.f32_vec(n, 0.0, 1.0);
            let py = rng.f32_vec(n, 0.0, 1.0);
            let pz = rng.f32_vec(n, 0.0, 1.0);
            let ppx = mem.alloc_f32_slice(&px)?;
            let ppy = mem.alloc_f32_slice(&py)?;
            let ppz = mem.alloc_f32_slice(&pz)?;
            let pd = mem.alloc_f32_slice(&vec![0.0; n])?;
            Ok(SetupResult {
                args: vec![
                    RtVal::Scalar(Scalar::ptr(ppx)),
                    RtVal::Scalar(Scalar::ptr(ppy)),
                    RtVal::Scalar(Scalar::ptr(ppz)),
                    RtVal::Scalar(Scalar::ptr(pd)),
                    RtVal::Scalar(Scalar::i32(n as i32)),
                    RtVal::Scalar(Scalar::f32(0.09)),
                ],
                outputs: vec![OutputRegion {
                    addr: pd,
                    bytes: (n * 4) as u64,
                }],
            })
        }),
    )
    .expect("fluidanimate compiles")
}

pub fn swaptions(isa: VectorIsa, scale: Scale) -> SpmdWorkload {
    // Paper: swaptions ∈ {16, 64}, simulations ∈ {100, 200}.
    let configs: Vec<(usize, usize, usize)> = match scale {
        Scale::Test => vec![(4, 16, 6), (6, 24, 6)],
        Scale::Paper => vec![(16, 100, 20), (64, 200, 20)],
    };
    let count = configs.len() as u64;
    SpmdWorkload::compile(
        "Swaptions",
        "Parvec",
        "C++ (SPMD-C)",
        "swaptions: [16,64], simulations: [100,200]",
        SWAPTIONS_SRC,
        "swaptions_price",
        isa,
        count,
        Box::new(move |mem, input| {
            let (nsw, npaths, nsteps) = configs[input as usize % configs.len()];
            let mut rng = DetRng::new(0x5AB + input);
            let strike = rng.f32_vec(nsw, 0.02, 0.06);
            let vol = rng.f32_vec(nsw, 0.1, 0.4);
            let r0 = rng.f32_vec(nsw, 0.01, 0.05);
            let ps = mem.alloc_f32_slice(&strike)?;
            let pv = mem.alloc_f32_slice(&vol)?;
            let pr = mem.alloc_f32_slice(&r0)?;
            let pp = mem.alloc_f32_slice(&vec![0.0; nsw])?;
            Ok(SetupResult {
                args: vec![
                    RtVal::Scalar(Scalar::ptr(ps)),
                    RtVal::Scalar(Scalar::ptr(pv)),
                    RtVal::Scalar(Scalar::ptr(pr)),
                    RtVal::Scalar(Scalar::ptr(pp)),
                    RtVal::Scalar(Scalar::i32(nsw as i32)),
                    RtVal::Scalar(Scalar::i32(npaths as i32)),
                    RtVal::Scalar(Scalar::i32(nsteps as i32)),
                ],
                outputs: vec![OutputRegion {
                    addr: pp,
                    bytes: (nsw * 4) as u64,
                }],
            })
        }),
    )
    .expect("swaptions compiles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vexec::{Interp, NoHost};
    use vulfi::workload::Workload;

    #[test]
    fn fluidanimate_matches_reference() {
        for isa in VectorIsa::ALL {
            let w = fluidanimate(isa, Scale::Test);
            let mut interp = Interp::new(w.module());
            let setup = w.setup(&mut interp.mem, 0).unwrap();
            let n = 24;
            let px = interp
                .mem
                .read_f32_slice(setup.args[0].scalar().as_u64(), n)
                .unwrap();
            let py = interp
                .mem
                .read_f32_slice(setup.args[1].scalar().as_u64(), n)
                .unwrap();
            let pz = interp
                .mem
                .read_f32_slice(setup.args[2].scalar().as_u64(), n)
                .unwrap();
            interp.run(w.entry(), &setup.args, &mut NoHost).unwrap();
            let got = interp
                .mem
                .read_f32_slice(setup.args[3].scalar().as_u64(), n)
                .unwrap();
            let expect = fluid_density_ref(&px, &py, &pz, 0.09);
            for i in 0..n {
                assert!(
                    (got[i] - expect[i]).abs() < 1e-4,
                    "isa={isa} i={i}: {} vs {}",
                    got[i],
                    expect[i]
                );
            }
        }
    }

    #[test]
    fn swaptions_runs_and_prices_are_sane() {
        for isa in VectorIsa::ALL {
            let w = swaptions(isa, Scale::Test);
            let mut interp = Interp::new(w.module());
            let setup = w.setup(&mut interp.mem, 0).unwrap();
            interp.run(w.entry(), &setup.args, &mut NoHost).unwrap();
            let prices = interp
                .mem
                .read_f32_slice(setup.args[3].scalar().as_u64(), 4)
                .unwrap();
            for p in prices {
                assert!(p.is_finite());
                assert!((0.0..1.0).contains(&p), "price {p} out of range");
            }
        }
    }

    #[test]
    fn swaptions_isa_agree_up_to_reduction_order() {
        // The LCG paths are integer-deterministic, but the horizontal
        // payoff reduction runs 8 lanes on AVX and 4 on SSE, so float
        // rounding differs slightly between targets.
        let run = |isa| {
            let w = swaptions(isa, Scale::Test);
            let mut interp = Interp::new(w.module());
            let setup = w.setup(&mut interp.mem, 1).unwrap();
            interp.run(w.entry(), &setup.args, &mut NoHost).unwrap();
            interp
                .mem
                .read_f32_slice(setup.args[3].scalar().as_u64(), 6)
                .unwrap()
        };
        let (avx, sse) = (run(VectorIsa::Avx), run(VectorIsa::Sse4));
        for (a, s) in avx.iter().zip(&sse) {
            assert!((a - s).abs() < 1e-4, "{a} vs {s}");
        }
    }
}
