//! Benchmarks re-implemented from Burkardt's scientific computing library
//! (paper Table I): `Chebyshev`, `Jacobi`, and `Conjugate Gradient`.

use spmdc::VectorIsa;
use vexec::{RtVal, Scalar};
use vulfi::workload::{OutputRegion, SetupResult};

use crate::util::{DetRng, Scale};
use crate::workload::SpmdWorkload;

/// Chebyshev coefficients of sampled function values:
/// `c[k] = 2/n * Σ_j fx[j] * cos(π k (j + 0.5) / n)`.
pub const CHEBYSHEV_SRC: &str = r#"
export void chebyshev_coeffs(uniform float fx[], uniform float c[], uniform int n) {
    foreach (k = 0 ... n) {
        float sum = 0.0;
        for (uniform int j = 0; j < n; j++) {
            uniform float fj = fx[j];
            sum += fj * cos(3.14159265 * (float)k * (((float)j + 0.5) / (float)n));
        }
        c[k] = sum * (2.0 / (float)n);
    }
}
"#;

/// 2D Jacobi relaxation with a source term.
pub const JACOBI_SRC: &str = r#"
export void jacobi_ispc(uniform float u0[], uniform float u1[], uniform float f[],
                        uniform int w, uniform int h, uniform int steps) {
    for (uniform int t = 0; t < steps; t++) {
        for (uniform int y = 1; y < h - 1; y++) {
            uniform int row = y * w;
            foreach (x = 1 ... w - 1) {
                u1[x + row] = 0.25 * (u0[x + (row - 1)] + u0[x + (row + 1)]
                                      + u0[x + (row - w)] + u0[x + (row + w)] + f[x + row]);
            }
        }
        for (uniform int y2 = 1; y2 < h - 1; y2++) {
            uniform int row2 = y2 * w;
            foreach (x2 = 1 ... w - 1) {
                u0[x2 + row2] = u1[x2 + row2];
            }
        }
    }
}
"#;

/// Conjugate gradient on the 1D Poisson (tridiagonal 2/-1) operator,
/// matrix-free, fixed iteration count. Boundary loads are masked affine
/// accesses — the masked-intrinsic path the paper's Fig. 5 shows.
pub const CG_SRC: &str = r#"
export void cg_ispc(uniform float b[], uniform float x[], uniform float r[],
                    uniform float p[], uniform float ap[], uniform int n,
                    uniform int iters) {
    foreach (i = 0 ... n) {
        r[i] = b[i];
        p[i] = b[i];
        x[i] = 0.0;
    }
    uniform float rs = 0.0;
    foreach (i2 = 0 ... n) {
        rs += reduce_add(r[i2] * r[i2]);
    }
    for (uniform int it = 0; it < iters; it++) {
        foreach (i3 = 0 ... n) {
            float left = 0.0;
            float right = 0.0;
            if (i3 > 0) {
                left = p[i3 - 1];
            }
            if (i3 < n - 1) {
                right = p[i3 + 1];
            }
            ap[i3] = 2.0 * p[i3] - left - right;
        }
        uniform float pap = 0.0;
        foreach (i4 = 0 ... n) {
            pap += reduce_add(p[i4] * ap[i4]);
        }
        uniform float alpha = rs / pap;
        foreach (i5 = 0 ... n) {
            x[i5] = x[i5] + alpha * p[i5];
            r[i5] = r[i5] - alpha * ap[i5];
        }
        uniform float rs_new = 0.0;
        foreach (i6 = 0 ... n) {
            rs_new += reduce_add(r[i6] * r[i6]);
        }
        uniform float beta = rs_new / rs;
        foreach (i7 = 0 ... n) {
            p[i7] = r[i7] + beta * p[i7];
        }
        rs = rs_new;
    }
}
"#;

/// Reference Chebyshev coefficients (f64 accumulation, for tests).
pub fn chebyshev_ref(fx: &[f32]) -> Vec<f32> {
    let n = fx.len();
    (0..n)
        .map(|k| {
            let mut sum = 0.0f64;
            for (j, &f) in fx.iter().enumerate() {
                sum += f as f64
                    * (std::f64::consts::PI * k as f64 * ((j as f64 + 0.5) / n as f64)).cos();
            }
            (sum * 2.0 / n as f64) as f32
        })
        .collect()
}

pub fn chebyshev(isa: VectorIsa, scale: Scale) -> SpmdWorkload {
    // Paper: degree ∈ [1, 256].
    let degrees = match scale {
        Scale::Test => vec![13usize, 26],
        Scale::Paper => vec![64, 256],
    };
    let count = degrees.len() as u64;
    SpmdWorkload::compile(
        "Chebyshev",
        "SCL",
        "ISPC (SPMD-C)",
        "degree: [1, 256]",
        CHEBYSHEV_SRC,
        "chebyshev_coeffs",
        isa,
        count,
        Box::new(move |mem, input| {
            let n = degrees[input as usize % degrees.len()];
            // Sample f(cos θ_j) for f(x) = x³ - 0.4x + noise-free smooth fn.
            let fx: Vec<f32> = (0..n)
                .map(|j| {
                    let xj = (std::f64::consts::PI * (j as f64 + 0.5) / n as f64).cos() as f32;
                    xj * xj * xj - 0.4 * xj
                })
                .collect();
            let pfx = mem.alloc_f32_slice(&fx)?;
            let pc = mem.alloc_f32_slice(&vec![0.0; n])?;
            Ok(SetupResult {
                args: vec![
                    RtVal::Scalar(Scalar::ptr(pfx)),
                    RtVal::Scalar(Scalar::ptr(pc)),
                    RtVal::Scalar(Scalar::i32(n as i32)),
                ],
                outputs: vec![OutputRegion {
                    addr: pc,
                    bytes: (n * 4) as u64,
                }],
            })
        }),
    )
    .expect("chebyshev compiles")
}

pub fn jacobi(isa: VectorIsa, scale: Scale) -> SpmdWorkload {
    // Paper: 32x32 .. 192x192.
    let dims = match scale {
        Scale::Test => vec![(14usize, 12usize, 2usize), (18, 14, 2)],
        Scale::Paper => vec![(32, 32, 8), (192, 192, 8)],
    };
    let count = dims.len() as u64;
    SpmdWorkload::compile(
        "Jacobi",
        "SCL",
        "ISPC (SPMD-C)",
        "2D array dimension: 32x32 .. 192x192",
        JACOBI_SRC,
        "jacobi_ispc",
        isa,
        count,
        Box::new(move |mem, input| {
            let (w, h, steps) = dims[input as usize % dims.len()];
            let mut rng = DetRng::new(0x1AC0B1 + input);
            let u0 = mem.alloc_f32_slice(&rng.f32_vec(w * h, 0.0, 1.0))?;
            let u1 = mem.alloc_f32_slice(&vec![0.0; w * h])?;
            let f = mem.alloc_f32_slice(&rng.f32_vec(w * h, -0.1, 0.1))?;
            Ok(SetupResult {
                args: vec![
                    RtVal::Scalar(Scalar::ptr(u0)),
                    RtVal::Scalar(Scalar::ptr(u1)),
                    RtVal::Scalar(Scalar::ptr(f)),
                    RtVal::Scalar(Scalar::i32(w as i32)),
                    RtVal::Scalar(Scalar::i32(h as i32)),
                    RtVal::Scalar(Scalar::i32(steps as i32)),
                ],
                outputs: vec![OutputRegion {
                    addr: u0,
                    bytes: (w * h * 4) as u64,
                }],
            })
        }),
    )
    .expect("jacobi compiles")
}

pub fn conjugate_gradient(isa: VectorIsa, scale: Scale) -> SpmdWorkload {
    // Paper: 32x32 .. 256x256 systems; ours is the 1D Poisson analogue.
    let sizes = match scale {
        Scale::Test => vec![(21usize, 21usize), (34, 12)],
        Scale::Paper => vec![(256, 12), (1024, 16)],
    };
    let count = sizes.len() as u64;
    SpmdWorkload::compile(
        "ConjugateGradient",
        "SCL",
        "ISPC (SPMD-C)",
        "system size: 32 .. 256 (1D Poisson)",
        CG_SRC,
        "cg_ispc",
        isa,
        count,
        Box::new(move |mem, input| {
            let (n, iters) = sizes[input as usize % sizes.len()];
            let mut rng = DetRng::new(0xC6 + input);
            let b = mem.alloc_f32_slice(&rng.f32_vec(n, -1.0, 1.0))?;
            let x = mem.alloc_f32_slice(&vec![0.0; n])?;
            let r = mem.alloc_f32_slice(&vec![0.0; n])?;
            let p = mem.alloc_f32_slice(&vec![0.0; n])?;
            let ap = mem.alloc_f32_slice(&vec![0.0; n])?;
            Ok(SetupResult {
                args: vec![
                    RtVal::Scalar(Scalar::ptr(b)),
                    RtVal::Scalar(Scalar::ptr(x)),
                    RtVal::Scalar(Scalar::ptr(r)),
                    RtVal::Scalar(Scalar::ptr(p)),
                    RtVal::Scalar(Scalar::ptr(ap)),
                    RtVal::Scalar(Scalar::i32(n as i32)),
                    RtVal::Scalar(Scalar::i32(iters as i32)),
                ],
                outputs: vec![OutputRegion {
                    addr: x,
                    bytes: (n * 4) as u64,
                }],
            })
        }),
    )
    .expect("conjugate gradient compiles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vexec::{Interp, NoHost};
    use vulfi::workload::Workload;

    #[test]
    fn chebyshev_matches_reference() {
        for isa in VectorIsa::ALL {
            let w = chebyshev(isa, Scale::Test);
            let mut interp = Interp::new(w.module());
            let setup = w.setup(&mut interp.mem, 0).unwrap();
            let n = 13;
            let fx = interp
                .mem
                .read_f32_slice(setup.args[0].scalar().as_u64(), n)
                .unwrap();
            interp.run(w.entry(), &setup.args, &mut NoHost).unwrap();
            let got = interp
                .mem
                .read_f32_slice(setup.args[1].scalar().as_u64(), n)
                .unwrap();
            let expect = chebyshev_ref(&fx);
            for i in 0..n {
                assert!(
                    (got[i] - expect[i]).abs() < 2e-3,
                    "isa={isa} i={i}: {} vs {}",
                    got[i],
                    expect[i]
                );
            }
        }
    }

    #[test]
    fn jacobi_matches_reference() {
        let w = jacobi(VectorIsa::Sse4, Scale::Test);
        let mut interp = Interp::new(w.module());
        let setup = w.setup(&mut interp.mem, 0).unwrap();
        let (wd, h, steps) = (14usize, 12usize, 2usize);
        let u_addr = setup.args[0].scalar().as_u64();
        let f_addr = setup.args[2].scalar().as_u64();
        let mut u = interp.mem.read_f32_slice(u_addr, wd * h).unwrap();
        let f = interp.mem.read_f32_slice(f_addr, wd * h).unwrap();
        interp.run(w.entry(), &setup.args, &mut NoHost).unwrap();
        let got = interp.mem.read_f32_slice(u_addr, wd * h).unwrap();
        for _ in 0..steps {
            let snap = u.clone();
            for y in 1..h - 1 {
                for x in 1..wd - 1 {
                    let i = y * wd + x;
                    u[i] = 0.25 * (snap[i - 1] + snap[i + 1] + snap[i - wd] + snap[i + wd] + f[i]);
                }
            }
        }
        for i in 0..wd * h {
            assert!(
                (got[i] - u[i]).abs() < 1e-4,
                "i={i}: {} vs {}",
                got[i],
                u[i]
            );
        }
    }

    #[test]
    fn cg_reduces_residual() {
        for isa in VectorIsa::ALL {
            let w = conjugate_gradient(isa, Scale::Test);
            let mut interp = Interp::new(w.module());
            let setup = w.setup(&mut interp.mem, 0).unwrap();
            let n = 21usize;
            let b_addr = setup.args[0].scalar().as_u64();
            let x_addr = setup.args[1].scalar().as_u64();
            let b = interp.mem.read_f32_slice(b_addr, n).unwrap();
            interp.run(w.entry(), &setup.args, &mut NoHost).unwrap();
            let x = interp.mem.read_f32_slice(x_addr, n).unwrap();
            // Residual of A x vs b under the tridiagonal (2,-1) operator.
            let apply = |v: &[f32], i: usize| {
                let left = if i > 0 { v[i - 1] } else { 0.0 };
                let right = if i + 1 < n { v[i + 1] } else { 0.0 };
                2.0 * v[i] - left - right
            };
            // n CG iterations solve an n-dimensional SPD system (exact
            // termination property), so the residual must be tiny.
            let res: f32 = (0..n).map(|i| (apply(&x, i) - b[i]).powi(2)).sum();
            let b_norm: f32 = b.iter().map(|v| v * v).sum();
            assert!(
                res < b_norm * 1e-3,
                "isa={isa}: CG did not converge: {res} vs {b_norm}"
            );
        }
    }

    #[test]
    fn cg_boundary_masked_loads_do_not_trap() {
        // n chosen so lane 0 of iteration 0 and the last lane of the last
        // full-body iteration both sit on the array boundary.
        let w = conjugate_gradient(VectorIsa::Avx, Scale::Test);
        let mut interp = Interp::new(w.module());
        let setup = w.setup(&mut interp.mem, 1).unwrap();
        interp.run(w.entry(), &setup.args, &mut NoHost).unwrap();
    }
}
