//! # vbench — the VULFI paper's benchmark suite, rebuilt
//!
//! The nine study benchmarks of paper Table I and the three §IV-E
//! micro-benchmarks, re-implemented in SPMD-C and compiled to VIR for both
//! AVX (8-lane) and SSE (4-lane) targets:
//!
//! | Suite  | Benchmarks |
//! |--------|------------|
//! | Parvec | Fluidanimate (SPH density), Swaptions (Monte-Carlo pricing) |
//! | ISPC   | Blackscholes, Sorting (odd-even transposition), Stencil (2D 5-point), Ray tracing (sphere caster) |
//! | SCL    | Chebyshev (coefficients), Jacobi (2D relaxation), ConjugateGradient (1D Poisson) |
//! | Micro  | vector copy (paper Fig. 6), dot product, vector sum |
//!
//! Each benchmark is a [`workload::SpmdWorkload`]: a compiled kernel plus
//! a deterministic input family, pluggable straight into
//! `vulfi::campaign`. Unit tests pin every kernel against a scalar Rust
//! reference implementation.

pub mod micro;
pub mod suite;
pub mod suite_ext;
pub mod suite_ispc;
pub mod suite_parvec;
pub mod suite_scl;
pub mod util;
pub mod workload;

pub use suite::{
    micro_benchmark, micro_benchmarks, study_benchmark, study_benchmarks, MICRO_NAMES, STUDY_NAMES,
};
pub use util::{DetRng, Scale};
pub use workload::SpmdWorkload;
