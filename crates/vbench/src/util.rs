//! Deterministic input generation.
//!
//! Experiment inputs must be reproducible bit-for-bit: the golden and
//! faulty runs of one experiment regenerate the same input, and studies
//! re-run with the same seed must see the same data. A tiny splitmix64
//! generator keeps `vbench` independent of `rand` version changes.

/// Deterministic 64-bit generator (splitmix64).
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    pub fn new(seed: u64) -> DetRng {
        DetRng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f32 in [0, 1).
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform f32 in [lo, hi).
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Uniform i32 in [0, bound).
    pub fn below_i32(&mut self, bound: i32) -> i32 {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as i32
    }

    /// A vector of uniform f32 in [lo, hi).
    pub fn f32_vec(&mut self, n: usize, lo: f32, hi: f32) -> Vec<f32> {
        (0..n).map(|_| self.range_f32(lo, hi)).collect()
    }
}

/// Study scale: test-sized inputs for CI, larger inputs approximating the
/// paper's Table I workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Small inputs: full studies finish in seconds.
    #[default]
    Test,
    /// Larger inputs: dynamic instruction counts in the multi-million
    /// range, closer to the paper's Table I.
    Paper,
}

impl Scale {
    /// Multiply a base size by the scale factor.
    pub fn size(self, test: usize, paper: usize) -> usize {
        match self {
            Scale::Test => test,
            Scale::Paper => paper,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f32_in_range() {
        let mut r = DetRng::new(3);
        for _ in 0..1000 {
            let v = r.range_f32(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&v));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::new(9);
        for _ in 0..1000 {
            let v = r.below_i32(17);
            assert!((0..17).contains(&v));
        }
    }

    #[test]
    fn scale_selects_sizes() {
        assert_eq!(Scale::Test.size(10, 1000), 10);
        assert_eq!(Scale::Paper.size(10, 1000), 1000);
    }
}
