//! Extension benchmarks beyond the paper's Table I.
//!
//! `Mandelbrot` is ISPC's canonical example program; the paper's study
//! predates the features needed to handle it faithfully (varying `while`
//! loops with per-lane retirement). This reproduction supports them, so
//! Mandelbrot is included as an extension workload — useful for probing
//! how lane-divergent control flow changes the fault-outcome mix.

use spmdc::VectorIsa;
use vexec::{RtVal, Scalar};
use vulfi::workload::{OutputRegion, SetupResult};

use crate::util::Scale;
use crate::workload::SpmdWorkload;

/// The ISPC mandelbrot kernel: per-pixel escape-time iteration under a
/// varying `while` (masked loop with `mask.any` back edge).
pub const MANDELBROT_SRC: &str = r#"
export void mandelbrot_ispc(uniform float x0, uniform float y0,
                            uniform float dx, uniform float dy,
                            uniform int w, uniform int h, uniform int maxit,
                            uniform int out[]) {
    for (uniform int j = 0; j < h; j++) {
        uniform float cy = y0 + dy * (float)j;
        uniform int row = j * w;
        foreach (i = 0 ... w) {
            float cx = x0 + dx * (float)i;
            float zx = 0.0;
            float zy = 0.0;
            int count = 0;
            while (zx * zx + zy * zy < 4.0 && count < maxit) {
                float nzx = zx * zx - zy * zy + cx;
                zy = 2.0 * zx * zy + cy;
                zx = nzx;
                count = count + 1;
            }
            out[i + row] = count;
        }
    }
}
"#;

/// Scalar reference escape-time (for tests).
pub fn mandelbrot_ref(cx: f32, cy: f32, maxit: i32) -> i32 {
    let (mut zx, mut zy, mut count) = (0.0f32, 0.0f32, 0);
    while zx * zx + zy * zy < 4.0 && count < maxit {
        let nzx = zx * zx - zy * zy + cx;
        zy = 2.0 * zx * zy + cy;
        zx = nzx;
        count += 1;
    }
    count
}

pub fn mandelbrot(isa: VectorIsa, scale: Scale) -> SpmdWorkload {
    let (w, h, maxit) = match scale {
        Scale::Test => (18usize, 10usize, 32),
        Scale::Paper => (96, 64, 256),
    };
    // Three camera windows standing in for different zoom levels.
    let windows: [(f32, f32, f32, f32); 3] = [
        (-2.2, -1.2, 3.0, 2.4),
        (-1.0, -0.4, 0.8, 0.8),
        (-0.2, 0.6, 0.3, 0.3),
    ];
    SpmdWorkload::compile(
        "Mandelbrot",
        "Extension",
        "ISPC (SPMD-C)",
        format!("{w}x{h}, maxit {maxit}, 3 zoom windows"),
        MANDELBROT_SRC,
        "mandelbrot_ispc",
        isa,
        windows.len() as u64,
        Box::new(move |mem, input| {
            let (x0, y0, spanx, spany) = windows[input as usize % windows.len()];
            let out = mem.alloc_i32_slice(&vec![0; w * h])?;
            Ok(SetupResult {
                args: vec![
                    RtVal::Scalar(Scalar::f32(x0)),
                    RtVal::Scalar(Scalar::f32(y0)),
                    RtVal::Scalar(Scalar::f32(spanx / w as f32)),
                    RtVal::Scalar(Scalar::f32(spany / h as f32)),
                    RtVal::Scalar(Scalar::i32(w as i32)),
                    RtVal::Scalar(Scalar::i32(h as i32)),
                    RtVal::Scalar(Scalar::i32(maxit)),
                    RtVal::Scalar(Scalar::ptr(out)),
                ],
                outputs: vec![OutputRegion {
                    addr: out,
                    bytes: (w * h * 4) as u64,
                }],
            })
        }),
    )
    .expect("mandelbrot compiles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vexec::{Interp, NoHost};
    use vulfi::workload::Workload;

    #[test]
    fn mandelbrot_matches_reference() {
        for isa in VectorIsa::ALL {
            let w = mandelbrot(isa, Scale::Test);
            let mut interp = Interp::new(w.module());
            let setup = w.setup(&mut interp.mem, 0).unwrap();
            interp.run(w.entry(), &setup.args, &mut NoHost).unwrap();
            let (wd, h, maxit) = (18usize, 10usize, 32);
            let got = interp
                .mem
                .read_i32_slice(setup.args[7].scalar().as_u64(), wd * h)
                .unwrap();
            let (x0, y0) = (-2.2f32, -1.2f32);
            let (dx, dy) = (3.0 / wd as f32, 2.4 / h as f32);
            for j in 0..h {
                for i in 0..wd {
                    let expect = mandelbrot_ref(x0 + dx * i as f32, y0 + dy * j as f32, maxit);
                    assert_eq!(got[j * wd + i], expect, "isa={isa} pixel ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn mandelbrot_campaigns_run() {
        use vir::analysis::SiteCategory;
        let w = mandelbrot(VectorIsa::Avx, Scale::Test);
        for cat in SiteCategory::ALL {
            let prog = vulfi::prepare(&w, cat).unwrap();
            let c = vulfi::run_campaign(&prog, &w, 15, 1).unwrap();
            assert_eq!(c.counts.total(), 15, "{cat}");
        }
    }

    #[test]
    fn divergent_loops_make_vector_control_sites() {
        // The escape-time mask feeds the mask.any back edge, so vector
        // registers are control sites here — unlike foreach-only kernels.
        let w = mandelbrot(VectorIsa::Avx, Scale::Test);
        let f = w.module().function(w.entry()).unwrap();
        let sites = vulfi::enumerate_sites(f);
        let mix = vulfi::category_mix(&sites);
        let control = mix
            .iter()
            .find(|(c, _)| *c == vir::analysis::SiteCategory::Control)
            .unwrap()
            .1;
        assert!(
            control.vector > 0,
            "divergent while must produce vector control sites"
        );
    }
}
