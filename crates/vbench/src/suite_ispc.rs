//! Benchmarks drawn from the ISPC compiler's example programs (paper
//! Table I): `Blackscholes`, `Sorting`, `Stencil`, and `Ray tracing`.

use spmdc::VectorIsa;
use vexec::{RtVal, Scalar};
use vulfi::workload::{OutputRegion, SetupResult};

use crate::util::{DetRng, Scale};
use crate::workload::SpmdWorkload;

/// Black-Scholes European call pricing with the Abramowitz–Stegun CND
/// approximation, CND inlined for both d1 and d2.
pub const BLACKSCHOLES_SRC: &str = r#"
export void blackscholes(uniform float Sa[], uniform float Xa[], uniform float Ta[],
                         uniform float ra[], uniform float va[], uniform float result[],
                         uniform int n) {
    foreach (i = 0 ... n) {
        float S = Sa[i];
        float X = Xa[i];
        float T = Ta[i];
        float r = ra[i];
        float v = va[i];

        float sqrtT = sqrt(T);
        float d1 = (log(S / X) + (r + v * v * 0.5) * T) / (v * sqrtT);
        float d2 = d1 - v * sqrtT;

        // CND(d1)
        float L1 = abs(d1);
        float k1 = 1.0 / (1.0 + 0.2316419 * L1);
        float k1_2 = k1 * k1;
        float k1_3 = k1_2 * k1;
        float k1_4 = k1_3 * k1;
        float k1_5 = k1_4 * k1;
        float w1 = 1.0 - 0.39894228 * exp(-L1 * L1 * 0.5)
            * (0.319381530 * k1 - 0.356563782 * k1_2 + 1.781477937 * k1_3
               - 1.821255978 * k1_4 + 1.330274429 * k1_5);
        if (d1 < 0.0) {
            w1 = 1.0 - w1;
        }

        // CND(d2)
        float L2 = abs(d2);
        float k2 = 1.0 / (1.0 + 0.2316419 * L2);
        float k2_2 = k2 * k2;
        float k2_3 = k2_2 * k2;
        float k2_4 = k2_3 * k2;
        float k2_5 = k2_4 * k2;
        float w2 = 1.0 - 0.39894228 * exp(-L2 * L2 * 0.5)
            * (0.319381530 * k2 - 0.356563782 * k2_2 + 1.781477937 * k2_3
               - 1.821255978 * k2_4 + 1.330274429 * k2_5);
        if (d2 < 0.0) {
            w2 = 1.0 - w2;
        }

        result[i] = S * w1 - X * exp(-r * T) * w2;
    }
}
"#;

/// Odd-even transposition sort, vectorized over pair indices. Gathers and
/// scatters through varying indices under varying control flow — the
/// address-heavy profile the paper observes for `Sorting`.
pub const SORTING_SRC: &str = r#"
export void sort_ispc(uniform float a[], uniform int n) {
    for (uniform int pass = 0; pass < n; pass++) {
        uniform int off = pass % 2;
        uniform int npairs = (n - off) / 2;
        foreach (j = 0 ... npairs) {
            int idx = 2 * j + off;
            if (idx + 1 < n) {
                float x = a[idx];
                float y = a[idx + 1];
                if (x > y) {
                    a[idx] = y;
                    a[idx + 1] = x;
                }
            }
        }
    }
}
"#;

/// 2D 5-point stencil, `steps` relaxation sweeps.
pub const STENCIL_SRC: &str = r#"
export void stencil_ispc(uniform float ain[], uniform float aout[],
                         uniform int w, uniform int h, uniform int steps) {
    for (uniform int t = 0; t < steps; t++) {
        for (uniform int y = 1; y < h - 1; y++) {
            uniform int row = y * w;
            foreach (x = 1 ... w - 1) {
                aout[x + row] = 0.2 * (ain[x + row] + ain[x + (row - 1)] + ain[x + (row + 1)]
                                       + ain[x + (row - w)] + ain[x + (row + w)]);
            }
        }
        for (uniform int y2 = 1; y2 < h - 1; y2++) {
            uniform int row2 = y2 * w;
            foreach (x2 = 1 ... w - 1) {
                ain[x2 + row2] = aout[x2 + row2];
            }
        }
    }
}
"#;

/// Sphere-scene ray caster: one primary ray per pixel, nearest-hit shading
/// with a fixed light direction.
pub const RAYTRACING_SRC: &str = r#"
export void raytrace_ispc(uniform float spheres[], uniform int nspheres,
                          uniform float img[], uniform int w, uniform int h) {
    for (uniform int y = 0; y < h; y++) {
        uniform int row = y * w;
        uniform float py = ((float)y + 0.5) / (float)h - 0.5;
        foreach (x = 0 ... w) {
            float px = ((float)x + 0.5) / (float)w - 0.5;
            float inv = 1.0 / sqrt(px * px + py * py + 1.0);
            float dx = px * inv;
            float dy = py * inv;
            float dz = inv;
            float tmin = 1000000000.0;
            float shade = 0.0;
            for (uniform int s = 0; s < nspheres; s++) {
                uniform float cx = spheres[s * 4 + 0];
                uniform float cy = spheres[s * 4 + 1];
                uniform float cz = spheres[s * 4 + 2];
                uniform float rad = spheres[s * 4 + 3];
                float b = dx * cx + dy * cy + dz * cz;
                uniform float c2 = cx * cx + cy * cy + cz * cz - rad * rad;
                float disc = b * b - c2;
                if (disc > 0.0) {
                    float t = b - sqrt(disc);
                    if (t > 0.001) {
                        if (t < tmin) {
                            tmin = t;
                            float hx = dx * t - cx;
                            float hy = dy * t - cy;
                            float hz = dz * t - cz;
                            float hinv = 1.0 / sqrt(hx * hx + hy * hy + hz * hz + 0.000001);
                            shade = abs((hx * 0.577 + hy * 0.577 + hz * 0.577) * hinv);
                        }
                    }
                }
            }
            img[x + row] = shade;
        }
    }
}
"#;

/// Scalar reference for Black-Scholes (for tests).
pub fn blackscholes_ref(s: f32, x: f32, t: f32, r: f32, v: f32) -> f32 {
    fn cnd(d: f32) -> f32 {
        let l = d.abs();
        let k = 1.0 / (1.0 + 0.2316419 * l);
        let poly = 0.319_381_54 * k - 0.356_563_78 * k.powi(2) + 1.781_477_9 * k.powi(3)
            - 1.821_255_9 * k.powi(4)
            + 1.330_274_5 * k.powi(5);
        let w = 1.0 - 0.398_942_3 * (-l * l * 0.5).exp() * poly;
        if d < 0.0 {
            1.0 - w
        } else {
            w
        }
    }
    let sqrt_t = t.sqrt();
    let d1 = ((s / x).ln() + (r + v * v * 0.5) * t) / (v * sqrt_t);
    let d2 = d1 - v * sqrt_t;
    s * cnd(d1) - x * (-r * t).exp() * cnd(d2)
}

pub fn blackscholes(isa: VectorIsa, scale: Scale) -> SpmdWorkload {
    let sizes = match scale {
        Scale::Test => vec![37usize, 64, 90],
        Scale::Paper => vec![1000, 4000, 16_000],
    };
    let count = sizes.len() as u64;
    SpmdWorkload::compile(
        "Blackscholes",
        "ISPC",
        "ISPC (SPMD-C)",
        "sim_small / sim_medium / sim_large option sets",
        BLACKSCHOLES_SRC,
        "blackscholes",
        isa,
        count,
        Box::new(move |mem, input| {
            let n = sizes[input as usize % sizes.len()];
            let mut rng = DetRng::new(0xB5 + input);
            let s = mem.alloc_f32_slice(&rng.f32_vec(n, 10.0, 100.0))?;
            let x = mem.alloc_f32_slice(&rng.f32_vec(n, 10.0, 100.0))?;
            let t = mem.alloc_f32_slice(&rng.f32_vec(n, 0.1, 2.0))?;
            let r = mem.alloc_f32_slice(&rng.f32_vec(n, 0.01, 0.1))?;
            let v = mem.alloc_f32_slice(&rng.f32_vec(n, 0.1, 0.6))?;
            let out = mem.alloc_f32_slice(&vec![0.0; n])?;
            Ok(SetupResult {
                args: vec![
                    RtVal::Scalar(Scalar::ptr(s)),
                    RtVal::Scalar(Scalar::ptr(x)),
                    RtVal::Scalar(Scalar::ptr(t)),
                    RtVal::Scalar(Scalar::ptr(r)),
                    RtVal::Scalar(Scalar::ptr(v)),
                    RtVal::Scalar(Scalar::ptr(out)),
                    RtVal::Scalar(Scalar::i32(n as i32)),
                ],
                outputs: vec![OutputRegion {
                    addr: out,
                    bytes: (n * 4) as u64,
                }],
            })
        }),
    )
    .expect("blackscholes compiles")
}

pub fn sorting(isa: VectorIsa, scale: Scale) -> SpmdWorkload {
    let sizes = match scale {
        Scale::Test => vec![30usize, 57],
        Scale::Paper => vec![1000, 4000],
    };
    let count = sizes.len() as u64;
    SpmdWorkload::compile(
        "Sorting",
        "ISPC",
        "ISPC (SPMD-C)",
        "1D array length: [1000, 100000] (scaled)",
        SORTING_SRC,
        "sort_ispc",
        isa,
        count,
        Box::new(move |mem, input| {
            let n = sizes[input as usize % sizes.len()];
            let mut rng = DetRng::new(0x50F7 + input);
            let a = mem.alloc_f32_slice(&rng.f32_vec(n, 0.0, 1000.0))?;
            Ok(SetupResult {
                args: vec![
                    RtVal::Scalar(Scalar::ptr(a)),
                    RtVal::Scalar(Scalar::i32(n as i32)),
                ],
                outputs: vec![OutputRegion {
                    addr: a,
                    bytes: (n * 4) as u64,
                }],
            })
        }),
    )
    .expect("sorting compiles")
}

pub fn stencil(isa: VectorIsa, scale: Scale) -> SpmdWorkload {
    // Paper: 2D arrays from 16x16 to 64x64.
    let dims = match scale {
        Scale::Test => vec![(16usize, 16usize, 2usize), (20, 12, 2)],
        Scale::Paper => vec![(16, 16, 8), (64, 64, 8)],
    };
    let count = dims.len() as u64;
    SpmdWorkload::compile(
        "Stencil",
        "ISPC",
        "ISPC (SPMD-C)",
        "2D array dimension: 16x16 .. 64x64",
        STENCIL_SRC,
        "stencil_ispc",
        isa,
        count,
        Box::new(move |mem, input| {
            let (w, h, steps) = dims[input as usize % dims.len()];
            let mut rng = DetRng::new(0x57E + input);
            let ain = mem.alloc_f32_slice(&rng.f32_vec(w * h, 0.0, 1.0))?;
            let aout = mem.alloc_f32_slice(&vec![0.0; w * h])?;
            Ok(SetupResult {
                args: vec![
                    RtVal::Scalar(Scalar::ptr(ain)),
                    RtVal::Scalar(Scalar::ptr(aout)),
                    RtVal::Scalar(Scalar::i32(w as i32)),
                    RtVal::Scalar(Scalar::i32(h as i32)),
                    RtVal::Scalar(Scalar::i32(steps as i32)),
                ],
                outputs: vec![OutputRegion {
                    addr: ain,
                    bytes: (w * h * 4) as u64,
                }],
            })
        }),
    )
    .expect("stencil compiles")
}

/// A deterministic synthetic scene standing in for the paper's Sponza /
/// Teapot / Cornell camera inputs.
pub fn make_scene(which: u64, nspheres: usize) -> Vec<f32> {
    let mut rng = DetRng::new(0x5CE4E_u64.wrapping_add(which));
    let mut s = Vec::with_capacity(nspheres * 4);
    for _ in 0..nspheres {
        s.push(rng.range_f32(-0.6, 0.6)); // cx
        s.push(rng.range_f32(-0.6, 0.6)); // cy
        s.push(rng.range_f32(2.0, 6.0)); // cz
        s.push(rng.range_f32(0.2, 0.8)); // radius
    }
    s
}

pub fn raytracing(isa: VectorIsa, scale: Scale) -> SpmdWorkload {
    let (w, h, nspheres) = match scale {
        Scale::Test => (16usize, 8usize, 5usize),
        Scale::Paper => (64, 48, 16),
    };
    SpmdWorkload::compile(
        "Ray tracing",
        "ISPC",
        "ISPC (SPMD-C)",
        "camera input: 3 synthetic scenes (Sponza/Teapot/Cornell stand-ins)",
        RAYTRACING_SRC,
        "raytrace_ispc",
        isa,
        3,
        Box::new(move |mem, input| {
            let scene = make_scene(input, nspheres);
            let ps = mem.alloc_f32_slice(&scene)?;
            let img = mem.alloc_f32_slice(&vec![0.0; w * h])?;
            Ok(SetupResult {
                args: vec![
                    RtVal::Scalar(Scalar::ptr(ps)),
                    RtVal::Scalar(Scalar::i32(nspheres as i32)),
                    RtVal::Scalar(Scalar::ptr(img)),
                    RtVal::Scalar(Scalar::i32(w as i32)),
                    RtVal::Scalar(Scalar::i32(h as i32)),
                ],
                outputs: vec![OutputRegion {
                    addr: img,
                    bytes: (w * h * 4) as u64,
                }],
            })
        }),
    )
    .expect("raytracing compiles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vexec::{Interp, NoHost};
    use vulfi::workload::Workload;

    #[test]
    fn blackscholes_matches_reference() {
        for isa in VectorIsa::ALL {
            let w = blackscholes(isa, Scale::Test);
            let mut interp = Interp::new(w.module());
            let setup = w.setup(&mut interp.mem, 0).unwrap();
            let n = 37;
            let read = |interp: &Interp, k: usize| {
                interp
                    .mem
                    .read_f32_slice(setup.args[k].scalar().as_u64(), n)
                    .unwrap()
            };
            let (s, x, t, r, v) = (
                read(&interp, 0),
                read(&interp, 1),
                read(&interp, 2),
                read(&interp, 3),
                read(&interp, 4),
            );
            interp.run(w.entry(), &setup.args, &mut NoHost).unwrap();
            let got = interp
                .mem
                .read_f32_slice(setup.args[5].scalar().as_u64(), n)
                .unwrap();
            for i in 0..n {
                let expect = blackscholes_ref(s[i], x[i], t[i], r[i], v[i]);
                assert!(
                    (got[i] - expect).abs() < 1e-2 * expect.abs().max(1.0),
                    "isa={isa} i={i}: {} vs {expect}",
                    got[i]
                );
            }
        }
    }

    #[test]
    fn sorting_sorts() {
        for isa in VectorIsa::ALL {
            for input in 0..2u64 {
                let w = sorting(isa, Scale::Test);
                let mut interp = Interp::new(w.module());
                let setup = w.setup(&mut interp.mem, input).unwrap();
                let n = if input == 0 { 30 } else { 57 };
                let addr = setup.args[0].scalar().as_u64();
                let mut expect = interp.mem.read_f32_slice(addr, n).unwrap();
                interp.run(w.entry(), &setup.args, &mut NoHost).unwrap();
                let got = interp.mem.read_f32_slice(addr, n).unwrap();
                expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
                assert_eq!(got, expect, "isa={isa} input={input}");
            }
        }
    }

    #[test]
    fn stencil_matches_reference() {
        let w = stencil(VectorIsa::Avx, Scale::Test);
        let mut interp = Interp::new(w.module());
        let setup = w.setup(&mut interp.mem, 0).unwrap();
        let (wd, h, steps) = (16usize, 16usize, 2usize);
        let addr = setup.args[0].scalar().as_u64();
        let mut reference = interp.mem.read_f32_slice(addr, wd * h).unwrap();
        interp.run(w.entry(), &setup.args, &mut NoHost).unwrap();
        let got = interp.mem.read_f32_slice(addr, wd * h).unwrap();
        for _ in 0..steps {
            let snap = reference.clone();
            for y in 1..h - 1 {
                for x in 1..wd - 1 {
                    let i = y * wd + x;
                    reference[i] =
                        0.2 * (snap[i] + snap[i - 1] + snap[i + 1] + snap[i - wd] + snap[i + wd]);
                }
            }
        }
        for i in 0..wd * h {
            assert!(
                (got[i] - reference[i]).abs() < 1e-4,
                "i={i}: {} vs {}",
                got[i],
                reference[i]
            );
        }
    }

    #[test]
    fn raytracing_hits_something() {
        for isa in VectorIsa::ALL {
            let w = raytracing(isa, Scale::Test);
            let mut interp = Interp::new(w.module());
            let setup = w.setup(&mut interp.mem, 0).unwrap();
            interp.run(w.entry(), &setup.args, &mut NoHost).unwrap();
            let img = interp
                .mem
                .read_f32_slice(setup.args[2].scalar().as_u64(), 16 * 8)
                .unwrap();
            let lit = img.iter().filter(|&&p| p > 0.0).count();
            assert!(lit > 0, "isa={isa}: no pixel hit any sphere");
            assert!(img.iter().all(|p| p.is_finite()));
        }
    }

    #[test]
    fn raytracing_scenes_differ() {
        let w = raytracing(VectorIsa::Avx, Scale::Test);
        let render = |input: u64| {
            let mut interp = Interp::new(w.module());
            let setup = w.setup(&mut interp.mem, input).unwrap();
            interp.run(w.entry(), &setup.args, &mut NoHost).unwrap();
            interp
                .mem
                .read_f32_slice(setup.args[2].scalar().as_u64(), 16 * 8)
                .unwrap()
        };
        assert_ne!(render(0), render(1));
        assert_ne!(render(1), render(2));
    }
}
