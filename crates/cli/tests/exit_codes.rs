//! Exit-code contract of the real binary, pinned by subprocess tests:
//!
//! - `vulfi store fsck` / `vulfi trace fsck` exit **non-zero** when a
//!   log is corrupt and `--repair` was not given, zero after repair.
//! - `vulfi gauntlet run` exits non-zero on an invariant breach and on
//!   a partial store without `--resume`; a SIGKILLed gauntlet resumed
//!   with `--resume` merges to the bit-identical verdicts of an
//!   uninterrupted run in a fresh store.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vulfi_cli_exit_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn vulfi(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_vulfi"))
        .args(args)
        .output()
        .expect("spawn vulfi binary")
}

fn context(out: &Output) -> String {
    format!(
        "status {:?}\nstdout:\n{}\nstderr:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    )
}

fn assert_exit(out: &Output, want: i32, what: &str) {
    assert_eq!(out.status.code(), Some(want), "{what}: {}", context(out));
}

/// Flip one byte in the middle of the *first* line of `log` — a
/// non-tail corruption, which fsck must treat as loud (a torn tail
/// could be an interrupted writer and is tolerated).
fn corrupt_first_line(log: &Path) {
    let mut bytes = std::fs::read(log).unwrap();
    let first_nl = bytes.iter().position(|&b| b == b'\n').unwrap();
    let target = first_nl / 2;
    bytes[target] ^= 0x01;
    std::fs::write(log, &bytes).unwrap();
}

fn find_log(root: &Path, file: &str) -> PathBuf {
    for entry in std::fs::read_dir(root).unwrap() {
        let p = entry.unwrap().path().join(file);
        if p.is_file() {
            return p;
        }
    }
    panic!("no {file} under {}", root.display());
}

#[test]
fn store_fsck_exit_codes_pin_corruption_policy() {
    let store = temp_dir("store_fsck");
    let store_s = store.to_str().unwrap();
    let out = vulfi(&[
        "study",
        "--bench",
        "vector sum",
        "--experiments",
        "8",
        "--campaigns",
        "4",
        "--seed",
        "11",
        "--shard-size",
        "4",
        "--store",
        store_s,
    ]);
    assert_exit(&out, 0, "seed study");

    assert_exit(
        &vulfi(&["store", "fsck", "--store", store_s]),
        0,
        "clean fsck",
    );

    corrupt_first_line(&find_log(&store, "shards.jsonl"));
    assert_exit(
        &vulfi(&["store", "fsck", "--store", store_s]),
        1,
        "fsck must fail loudly on corruption without --repair",
    );
    assert_exit(
        &vulfi(&["store", "fsck", "--store", store_s, "--repair"]),
        0,
        "fsck --repair quarantines and succeeds",
    );
    assert_exit(
        &vulfi(&["store", "fsck", "--store", store_s]),
        0,
        "store is clean after repair",
    );
}

#[test]
fn trace_fsck_exit_codes_pin_corruption_policy() {
    let store = temp_dir("trace_fsck_store");
    let trace = temp_dir("trace_fsck_trace");
    let store_s = store.to_str().unwrap();
    let trace_s = trace.to_str().unwrap();
    let out = vulfi(&[
        "study",
        "--bench",
        "vector sum",
        "--experiments",
        "8",
        "--campaigns",
        "4",
        "--seed",
        "11",
        "--shard-size",
        "4",
        "--store",
        store_s,
        "--trace",
        trace_s,
    ]);
    assert_exit(&out, 0, "seed traced study");

    assert_exit(
        &vulfi(&["trace", "fsck", "--trace", trace_s]),
        0,
        "clean trace fsck",
    );

    corrupt_first_line(&find_log(&trace, "traces.jsonl"));
    assert_exit(
        &vulfi(&["trace", "fsck", "--trace", trace_s]),
        1,
        "trace fsck must fail loudly on corruption without --repair",
    );
    assert_exit(
        &vulfi(&["trace", "fsck", "--trace", trace_s, "--repair"]),
        0,
        "trace fsck --repair quarantines and succeeds",
    );
}

const GAUNTLET_SCENARIO: &str = r#"
name = "exit-code-gauntlet"
models = ["single-bit-flip", "stuck-at:3=1", "memory-cell"]
isas = ["avx"]
benches = ["vector sum"]
categories = ["pure-data"]
experiments = 10
campaigns = 4
seed = 13
shard_size = 2

[invariants]
crash_rate_max = 90.0
"#;

fn write_scenario(dir: &Path, name: &str, text: &str) -> String {
    std::fs::create_dir_all(dir).unwrap();
    let p = dir.join(name);
    std::fs::write(&p, text).unwrap();
    p.to_str().unwrap().to_string()
}

#[test]
fn gauntlet_breach_exits_nonzero_and_pass_exits_zero() {
    let dir = temp_dir("gauntlet_breach");
    let store = dir.join("store");
    let store_s = store.to_str().unwrap();
    let pass = write_scenario(&dir, "pass.toml", GAUNTLET_SCENARIO);
    let fail = write_scenario(
        &dir,
        "fail.toml",
        &GAUNTLET_SCENARIO.replace("crash_rate_max = 90.0", "sdc_rate_max = 0.0"),
    );

    let out = vulfi(&["gauntlet", "run", &pass, "--store", store_s]);
    assert_exit(&out, 0, "passing gauntlet");
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(stdout.contains("0 breaches: PASS"), "{stdout}");

    // Same cells, impossible invariant: cache hits, but verdict FAIL.
    let out = vulfi(&["gauntlet", "run", &fail, "--store", store_s, "--resume"]);
    assert_exit(&out, 1, "breached gauntlet must exit non-zero");
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(stdout.contains("FAIL (sdc_rate_max)"), "{stdout}");
}

#[test]
fn gauntlet_killed_and_resumed_matches_uninterrupted_run() {
    let dir = temp_dir("gauntlet_kill");
    let killed_store = dir.join("killed");
    let clean_store = dir.join("clean");
    let scenario = write_scenario(&dir, "kill.toml", GAUNTLET_SCENARIO);

    // SIGKILL the runner mid-gauntlet. If the process wins the race and
    // finishes first, the resume below is a pure cache hit — the
    // comparison still holds, the test just exercises less.
    let mut child = Command::new(env!("CARGO_BIN_EXE_vulfi"))
        .args([
            "gauntlet",
            "run",
            &scenario,
            "--store",
            killed_store.to_str().unwrap(),
            "--jobs",
            "1",
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn gauntlet");
    std::thread::sleep(std::time::Duration::from_millis(120));
    let _ = child.kill();
    let _ = child.wait();

    let resumed = vulfi(&[
        "gauntlet",
        "run",
        &scenario,
        "--store",
        killed_store.to_str().unwrap(),
        "--resume",
        "--json",
    ]);
    assert_exit(&resumed, 0, "resumed gauntlet");

    let clean = vulfi(&[
        "gauntlet",
        "run",
        &scenario,
        "--store",
        clean_store.to_str().unwrap(),
        "--json",
    ]);
    assert_exit(&clean, 0, "uninterrupted gauntlet");

    // The JSON verdicts carry every per-cell tally (key, n, sdc, benign,
    // crash, rates, invariant arithmetic) — bit-identical merges mean
    // byte-identical documents.
    assert_eq!(
        String::from_utf8_lossy(&resumed.stdout),
        String::from_utf8_lossy(&clean.stdout),
        "kill -9 + --resume must reproduce the uninterrupted verdicts"
    );
}
