//! Service-level chaos and CLI contract tests, driven through the real
//! binary:
//!
//! - `vulfi serv` (the canonical typo) exits non-zero with a suggestion
//!   and the usage text on stderr;
//! - a daemon `kill -9`'d mid-campaign, then restarted over the same
//!   store, completes the study to a result **byte-identical** to a
//!   plain `vulfi study` of the same spec, and the store passes fsck.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

use vulfi_serve::Client;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vulfi_cli_serve_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn vulfi(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_vulfi"))
        .args(args)
        .output()
        .expect("spawn vulfi binary")
}

fn assert_ok(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed (status {:?})\nstdout:\n{}\nstderr:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
}

/// Spawn `vulfi serve` on an ephemeral port and wait for it to publish
/// its address in `<store>/serve.addr`.
fn spawn_daemon(store: &Path, workers: &str) -> (Child, String) {
    spawn_daemon_with(store, workers, &[])
}

fn spawn_daemon_with(store: &Path, workers: &str, extra: &[&str]) -> (Child, String) {
    let addr_file = store.join("serve.addr");
    let _ = std::fs::remove_file(&addr_file);
    let child = Command::new(env!("CARGO_BIN_EXE_vulfi"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--store",
            store.to_str().unwrap(),
            "--workers",
            workers,
        ])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn vulfi serve");
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(a) = std::fs::read_to_string(&addr_file) {
            if !a.trim().is_empty() {
                break a.trim().to_string();
            }
        }
        assert!(
            Instant::now() < deadline,
            "daemon never published its address"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    (child, addr)
}

#[test]
fn serv_typo_exits_nonzero_with_suggestion_and_usage() {
    let out = vulfi(&["serv"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown command 'serv'"), "{stderr}");
    assert!(stderr.contains("did you mean 'serve'?"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");

    // A plain bogus command still errors with usage, minus a suggestion.
    let out = vulfi(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown command 'frobnicate'"), "{stderr}");
    assert!(!stderr.contains("did you mean"), "{stderr}");
}

/// The dashboard must render zero-JS HTML before, during, and after a
/// study, and the ops event stream must reconstruct the job's full
/// lifecycle (submit → lease → shards → merge) from the log alone —
/// both over HTTP and through `vulfi events summarize` offline.
#[test]
fn dashboard_and_ops_events_reconstruct_the_lifecycle() {
    let store = temp_dir("dashboard");
    let (mut daemon, addr) = spawn_daemon(&store, "2");
    let client = Client::new(addr.clone());

    // Idle dashboard: self-contained, auto-refreshing, no scripts.
    let (status, html) = client.get_text("/dashboard").expect("idle dashboard");
    assert_eq!(status, 200, "{html}");
    assert!(html.contains("id=\"jobs\""), "{html}");
    assert!(html.contains("id=\"active\""), "{html}");
    assert!(html.contains("id=\"metrics\""), "{html}");
    assert!(html.contains("http-equiv=\"refresh\""), "{html}");
    assert!(!html.contains("<script"), "dashboard must be zero-JS");
    assert!(
        !html.contains("http://"),
        "dashboard must be self-contained"
    );

    // Run a small study to completion.
    let (status, doc) = client
        .post(
            "/studies",
            &serde_json::json!({
                "bench": "Blackscholes",
                "experiments": 10u64,
                "campaigns": 2u64,
                "shard_size": 5u64,
            }),
            &[("X-Vulfi-Tenant", "dash")],
        )
        .expect("submit");
    assert_eq!(status, 202, "{doc:?}");
    let key = doc
        .get("key")
        .and_then(|v| v.as_str())
        .expect("submit returns key")
        .to_string();
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        assert!(Instant::now() < deadline, "study never completed");
        let (_, s) = client.get(&format!("/studies/{key}")).expect("status");
        if s.get("result").is_some() {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    // Dashboard now shows the job row.
    let (status, html) = client.get_text("/dashboard").expect("dashboard");
    assert_eq!(status, 200);
    assert!(html.contains("Blackscholes"), "{html}");
    assert!(html.contains(&key[..12]), "{html}");
    assert!(html.contains("dash"), "tenant must be shown: {html}");

    // Machine-readable slice of the ops log for this study.
    let (status, doc) = client
        .get(&format!("/studies/{key}/events"))
        .expect("events endpoint");
    assert_eq!(status, 200, "{doc:?}");
    let text = serde_json::to_string(&doc).unwrap();
    for kind in [
        "Submitted",
        "Started",
        "LeaseGranted",
        "ShardDone",
        "Merged",
        "Completed",
    ] {
        assert!(text.contains(kind), "missing {kind} in {text}");
    }

    let out = vulfi(&["shutdown", "--addr", &addr]);
    assert_ok(&out, "vulfi shutdown");
    daemon.wait().expect("daemon exit");

    // Offline reconstruction from the log alone.
    let out = vulfi(&["events", "summarize", "--store", store.to_str().unwrap()]);
    assert_ok(&out, "events summarize");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("completed"), "{stdout}");
    assert!(stdout.contains("merged"), "{stdout}");
    assert!(stdout.contains("worker"), "{stdout}");

    let out = vulfi(&[
        "events",
        "summarize",
        "--store",
        store.to_str().unwrap(),
        "--json",
    ]);
    assert_ok(&out, "events summarize --json");
    let s: serde_json::Value =
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).expect("summary JSON");
    let jobs = s
        .get("jobs")
        .and_then(|v| v.as_array())
        .expect("jobs array");
    let job = jobs
        .iter()
        .find(|j| j.get("key").and_then(|k| k.as_str()) == Some(key.as_str()))
        .expect("summarized job for the study key");
    assert_eq!(
        job.get("outcome").and_then(|v| v.as_str()),
        Some("completed")
    );
    assert_eq!(job.get("tenant").and_then(|v| v.as_str()), Some("dash"));
    assert_eq!(job.get("experiments").and_then(|v| v.as_u64()), Some(20));
    assert!(job.get("shards").and_then(|v| v.as_u64()).unwrap_or(0) >= 4);

    // Tail renders one line per event; fsck reports a healthy log.
    let out = vulfi(&["events", "tail", "--store", store.to_str().unwrap()]);
    assert_ok(&out, "events tail");
    assert!(String::from_utf8_lossy(&out.stdout).contains("completed"));
    let out = vulfi(&["events", "fsck", "--store", store.to_str().unwrap()]);
    assert_ok(&out, "events fsck");
}

/// Telemetry + alerting end to end: a daemon sampling on a fast
/// interval must persist a telemetry series, fire a deliberately-firing
/// alert rule through `GET /alerts` and as ops events, render the alert
/// panel and inline-SVG sparklines on the (still zero-JS) dashboard,
/// resume the series across a restart, and the offline `vulfi alerts
/// check` over the same store must exit non-zero on the firing rule.
#[test]
fn telemetry_alerts_fire_over_http_dashboard_and_cli() {
    let store = temp_dir("telemetry");
    std::fs::create_dir_all(&store).expect("mkdir store");
    // `exp_s_below 1e9` always fires once one sample exists (an idle
    // daemon does 0 exp/s); `sdc_rate_above 1e9` can never fire — a
    // percentage is bounded by 100.
    let rules = store.join("alerts.toml");
    std::fs::write(
        &rules,
        "[throughput-floor]\nkind = \"exp_s_below\"\nthreshold = 1e9\n\n\
         [impossible]\nkind = \"sdc_rate_above\"\nthreshold = 1e9\nsustain_secs = 1\n",
    )
    .expect("write rules");
    let (mut daemon, addr) = spawn_daemon_with(
        &store,
        "2",
        &[
            "--rules",
            rules.to_str().unwrap(),
            "--telemetry-interval-ms",
            "50",
        ],
    );
    let client = Client::new(addr.clone());

    // Wait for the sampler to take enough samples for a sparkline and
    // for the always-true rule to fire.
    let deadline = Instant::now() + Duration::from_secs(30);
    let alerts = loop {
        assert!(Instant::now() < deadline, "alert never fired");
        let (status, doc) = client.get("/alerts").expect("GET /alerts");
        assert_eq!(status, 200, "{doc:?}");
        if doc.get("firing").and_then(|v| v.as_u64()).unwrap_or(0) >= 1 {
            break doc;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    let text = serde_json::to_string(&alerts).unwrap();
    assert!(text.contains("throughput-floor"), "{text}");
    assert!(text.contains("impossible"), "{text}");
    let firing: Vec<&str> = alerts
        .get("alerts")
        .and_then(|v| v.as_array())
        .expect("alerts array")
        .iter()
        .filter(|a| a.get("firing").and_then(|v| v.as_bool()) == Some(true))
        .filter_map(|a| a.get("rule").and_then(|v| v.as_str()))
        .collect();
    assert_eq!(firing, ["throughput-floor"], "only the floor rule fires");

    // Dashboard: alert panel + sparklines, still zero-JS.
    let deadline = Instant::now() + Duration::from_secs(30);
    let html = loop {
        assert!(Instant::now() < deadline, "sparkline never rendered");
        let (status, html) = client.get_text("/dashboard").expect("dashboard");
        assert_eq!(status, 200);
        if html.contains("class=\"spark\"") {
            break html;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(html.contains("id=\"alerts\""), "{html}");
    assert!(html.contains("id=\"telemetry\""), "{html}");
    assert!(html.contains("FIRING"), "{html}");
    assert!(html.contains("throughput-floor"), "{html}");
    assert!(html.contains("<svg"), "{html}");
    assert!(html.contains("<polyline"), "{html}");
    assert!(!html.contains("<script"), "dashboard must stay zero-JS");

    // Firing transitions are operational events.
    let out = vulfi(&[
        "events",
        "tail",
        "--store",
        store.to_str().unwrap(),
        "--top",
        "50",
    ]);
    assert_ok(&out, "events tail");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("alert-firing"), "{stdout}");
    assert!(stdout.contains("throughput-floor"), "{stdout}");

    let out = vulfi(&["shutdown", "--addr", &addr]);
    assert_ok(&out, "vulfi shutdown");
    daemon.wait().expect("daemon exit");

    // The series survived on disk.
    let series = store.join("telemetry").join("series.jsonl");
    assert!(series.exists(), "telemetry series must be persisted");
    let persisted = std::fs::read_to_string(&series).unwrap().lines().count();
    assert!(persisted >= 2, "expected several samples, got {persisted}");

    // Offline check over the persisted series: non-zero exit, FIRING in
    // the rendered table; the impossible rule must stay ok.
    let out = vulfi(&[
        "alerts",
        "check",
        "--rules",
        rules.to_str().unwrap(),
        "--store",
        store.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "firing alert must exit non-zero"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FIRING"), "{stdout}");
    assert!(stdout.contains("throughput-floor"), "{stdout}");
    assert!(stdout.contains("ok"), "{stdout}");

    // A restarted daemon resumes the same series file instead of
    // truncating it.
    let (mut daemon, addr) = spawn_daemon_with(
        &store,
        "1",
        &[
            "--rules",
            rules.to_str().unwrap(),
            "--telemetry-interval-ms",
            "50",
        ],
    );
    let client = Client::new(addr.clone());
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        assert!(Instant::now() < deadline, "restarted daemon never sampled");
        let grown = std::fs::read_to_string(&series).unwrap().lines().count();
        if grown > persisted {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let out = vulfi(&["shutdown", "--addr", &addr]);
    assert_ok(&out, "second shutdown");
    daemon.wait().expect("daemon exit");
    let _ = client;

    // The resumed log is still a healthy CheckedLog.
    let out = vulfi(&["alerts", "fsck", "--store", store.to_str().unwrap()]);
    assert_ok(&out, "alerts fsck");
}

/// The acceptance test for the service: kill -9 the daemon while workers
/// hold leased shards mid-campaign, restart over the same store, and the
/// completed study must merge bit-identically to `vulfi study`.
#[test]
fn killed_daemon_resumes_to_bit_identical_study() {
    let serve_store = temp_dir("chaos_serve");
    let study_store = temp_dir("chaos_study");

    let (mut daemon, addr) = spawn_daemon(&serve_store, "2");
    let client = Client::new(addr);

    // Enough shards (40) that the kill below lands mid-campaign.
    let (status, doc) = client
        .post(
            "/studies",
            &serde_json::json!({
                "bench": "Blackscholes",
                "experiments": 25u64,
                "campaigns": 8u64,
                "shard_size": 5u64,
            }),
            &[("X-Vulfi-Tenant", "chaos")],
        )
        .expect("submit");
    assert_eq!(status, 202, "{doc:?}");
    let key = doc
        .get("key")
        .and_then(|v| v.as_str())
        .expect("submit returns key")
        .to_string();

    // Wait until at least one shard has landed but the study is not
    // done, then SIGKILL the daemon — workers die holding leases, with
    // in-flight shards lost and the queue job stuck Running.
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut killed_midway = false;
    loop {
        assert!(Instant::now() < deadline, "study never made progress");
        let (_, s) = client.get(&format!("/studies/{key}")).expect("status");
        let covered = s.get("covered").and_then(|v| v.as_u64()).unwrap_or(0);
        let total = s.get("total").and_then(|v| v.as_u64()).unwrap_or(u64::MAX);
        if covered > 0 && covered < total {
            daemon.kill().expect("SIGKILL daemon");
            killed_midway = true;
            break;
        }
        if s.get("result").is_some() {
            // The study outran the poll loop; the restart below still
            // exercises recovery of a completed store.
            daemon.kill().expect("SIGKILL daemon");
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    daemon.wait().expect("reap killed daemon");

    // A fresh daemon over the same store re-queues the orphaned job and
    // re-runs exactly the missing shards.
    let (mut daemon, addr) = spawn_daemon(&serve_store, "2");
    let client = Client::new(addr.clone());
    let deadline = Instant::now() + Duration::from_secs(120);
    let service_result = loop {
        assert!(
            Instant::now() < deadline,
            "restarted daemon never finished the study"
        );
        let (_, s) = client
            .get(&format!("/studies/{key}"))
            .expect("status after restart");
        assert_ne!(
            s.get("state").and_then(|v| v.as_str()),
            Some("failed"),
            "{s:?}"
        );
        if let Some(r) = s.get("result") {
            break r.clone();
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    eprintln!("killed_midway={killed_midway}");

    // Reference: the same spec through `vulfi study` into a fresh store.
    let study_out = vulfi(&[
        "study",
        "--bench",
        "Blackscholes",
        "--experiments",
        "25",
        "--campaigns",
        "8",
        "--shard-size",
        "5",
        "--store",
        study_store.to_str().unwrap(),
        "--json",
    ]);
    assert_ok(&study_out, "reference vulfi study");
    let reference: serde_json::Value =
        serde_json::from_str(&String::from_utf8_lossy(&study_out.stdout)).expect("study JSON");

    // Same content-addressed key, and an identical merged result.
    assert_eq!(
        reference.get("key").and_then(|v| v.as_str()),
        Some(key.as_str()),
        "HTTP submission and CLI study must derive the same study key"
    );
    for field in [
        "mean_sdc",
        "margin_95",
        "samples",
        "counts",
        "campaigns",
        "converged",
    ] {
        let service = service_result
            .get(field)
            .unwrap_or_else(|| panic!("service result missing {field}"));
        let cli = reference
            .get(field)
            .unwrap_or_else(|| panic!("study output missing {field}"));
        assert_eq!(
            serde_json::to_string(service).unwrap(),
            serde_json::to_string(cli).unwrap(),
            "result field '{field}' diverged after kill + restart"
        );
    }

    // Byte-level check over the stores themselves: the summary documents
    // must be identical, proving the shard merge (not just the rendered
    // numbers) converged to the same state.
    let a = vulfi(&[
        "results",
        "summary",
        "--store",
        serve_store.to_str().unwrap(),
        "--json",
    ]);
    let b = vulfi(&[
        "results",
        "summary",
        "--store",
        study_store.to_str().unwrap(),
        "--json",
    ]);
    assert_ok(&a, "results summary (service store)");
    assert_ok(&b, "results summary (study store)");
    assert_eq!(
        String::from_utf8_lossy(&a.stdout),
        String::from_utf8_lossy(&b.stdout),
        "service store and study store must summarize byte-identically"
    );

    // Graceful shutdown via the CLI, then the store must pass fsck (the
    // kill left at most a healed torn tail behind).
    let out = vulfi(&["shutdown", "--addr", &addr]);
    assert_ok(&out, "vulfi shutdown");
    let status = daemon.wait().expect("daemon exit");
    assert!(
        status.success(),
        "daemon exited {status:?} after graceful shutdown"
    );
    let fsck = vulfi(&["store", "fsck", "--store", serve_store.to_str().unwrap()]);
    assert_ok(&fsck, "store fsck after chaos");
}
