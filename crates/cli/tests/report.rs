//! End-to-end analytics contract, driven through the real binary:
//!
//! - `report diff` on two stores produced by the same study key and
//!   seeds reports zero significant cells and zero drift — the
//!   determinism contract, checked statistically.
//! - `report html` emits one self-contained file: heatmap and diff
//!   sections present, no scripts, no external fetches.
//! - `bench --record` writes a parseable throughput report.
//! - `results summary` / `trace summarize` behave on empty and
//!   single-shard stores.

use std::path::PathBuf;
use std::process::{Command, Output};

use vulfi_orch::DiffReport;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vulfi_cli_report_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn vulfi(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_vulfi"))
        .args(args)
        .output()
        .expect("spawn vulfi binary")
}

fn assert_ok(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed (status {:?})\nstdout:\n{}\nstderr:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Run the standard small study into `store` (optionally tracing).
fn run_study(store: &str, trace: Option<&str>) {
    let mut args = vec![
        "study",
        "--bench",
        "vector sum",
        "--experiments",
        "12",
        "--campaigns",
        "5",
        "--seed",
        "7",
        "--shard-size",
        "5",
        "--store",
        store,
    ];
    if let Some(t) = trace {
        args.extend(["--trace", t]);
    }
    assert_ok(&vulfi(&args), "vulfi study");
}

#[test]
fn diff_of_twin_stores_reports_zero_significant_cells() {
    let a = temp_dir("twin_a");
    let b = temp_dir("twin_b");
    let (a_s, b_s) = (a.to_str().unwrap(), b.to_str().unwrap());
    run_study(a_s, None);
    run_study(b_s, None);

    let json = vulfi(&["report", "diff", a_s, b_s, "--json"]);
    assert_ok(&json, "vulfi report diff --json");
    let d: DiffReport = serde_json::from_str(stdout(&json).trim()).unwrap();
    assert_eq!(d.cells.len(), 1, "one comparable cell");
    assert_eq!(
        d.significant, 0,
        "identical seeds cannot differ significantly"
    );
    assert_eq!(d.drift, 0, "identical stores cannot drift");
    let c = &d.cells[0];
    assert_eq!(c.key_a, c.key_b, "same inputs hash to the same study key");
    assert_eq!((c.sdc_a, c.n_a), (c.sdc_b, c.n_b));
    assert!(!c.significant && !c.drift);
    assert!(c.p > 0.99, "identical proportions: p ≈ 1, got {}", c.p);
    assert!(
        c.lo_a <= c.rate_a && c.rate_a <= c.hi_a,
        "Wilson bounds bracket the rate"
    );

    // The human-readable table agrees.
    let text = vulfi(&["report", "diff", a_s, b_s]);
    assert_ok(&text, "vulfi report diff");
    let t = stdout(&text);
    assert!(t.contains("1 cell(s) compared, 0 significant"), "{t}");
    assert!(!t.contains("DRIFT"), "{t}");
}

#[test]
fn html_report_is_self_contained_and_complete() {
    let store = temp_dir("html_store");
    let trace = temp_dir("html_trace");
    let twin = temp_dir("html_twin");
    let out = temp_dir("html_out").join("report.html");
    let (store_s, trace_s, twin_s) = (
        store.to_str().unwrap(),
        trace.to_str().unwrap(),
        twin.to_str().unwrap(),
    );
    run_study(store_s, Some(trace_s));
    run_study(twin_s, None);

    let r = vulfi(&[
        "report",
        "html",
        "--store",
        store_s,
        "--trace",
        trace_s,
        "--diff-store",
        twin_s,
        "-o",
        out.to_str().unwrap(),
    ]);
    assert_ok(&r, "vulfi report html");
    let html = std::fs::read_to_string(&out).expect("report written");

    for id in [
        "studies",
        "diff",
        "heatmap",
        "occupancy",
        "propagation",
        "metrics",
    ] {
        assert!(
            html.contains(&format!("id=\"{id}\"")),
            "missing section {id}"
        );
    }
    // Real content, not placeholders: the studied workload appears in
    // the study table, heatmap, and occupancy profile.
    assert!(html.contains("vector sum"));
    assert!(html.contains("lane × bit SDC density"));
    assert!(html.contains("0 drifted") || html.contains("drifted"));
    // Self-contained: nothing executable, nothing fetched.
    for needle in ["<script", "http://", "https://", "<link", "@import", "url("] {
        assert!(!html.contains(needle), "external reference: {needle}");
    }
    assert!(html.contains("<svg"), "charts are inline SVG");
}

#[test]
fn bench_record_writes_parseable_throughput_report() {
    let out = temp_dir("bench").join("BENCH_report.json");
    std::fs::create_dir_all(out.parent().unwrap()).unwrap();
    let r = vulfi(&[
        "bench",
        "--bench",
        "vector sum",
        "--experiments",
        "10",
        "--seed",
        "3",
        "--record",
        "-o",
        out.to_str().unwrap(),
    ]);
    assert_ok(&r, "vulfi bench --record");
    let doc: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
    let benches = doc.get("benches").and_then(|v| v.as_array()).unwrap();
    assert_eq!(benches.len(), 1);
    let b = &benches[0];
    assert_eq!(b.get("name").and_then(|v| v.as_str()), Some("vector sum"));
    assert_eq!(b.get("experiments").and_then(|v| v.as_u64()), Some(10));
    assert!(b.get("exp_per_sec").and_then(|v| v.as_f64()).unwrap() > 0.0);
    assert!(b.get("dyn_insts").and_then(|v| v.as_u64()).unwrap() > 0);
    assert!(b.get("wall_ns").and_then(|v| v.as_u64()).unwrap() > 0);
}

#[test]
fn summaries_handle_empty_and_single_shard_stores() {
    // Empty stores: both summary commands succeed and say so.
    let empty_store = temp_dir("empty_store");
    let empty_trace = temp_dir("empty_trace");
    let rs = vulfi(&[
        "results",
        "summary",
        "--store",
        empty_store.to_str().unwrap(),
    ]);
    assert_ok(&rs, "results summary on empty store");
    assert!(stdout(&rs).contains("no studies under"), "{}", stdout(&rs));
    let ts = vulfi(&[
        "trace",
        "summarize",
        "--trace",
        empty_trace.to_str().unwrap(),
    ]);
    assert_ok(&ts, "trace summarize on empty store");
    assert!(
        stdout(&ts).contains("no trace spans under"),
        "{}",
        stdout(&ts)
    );
    // Diffing two empty stores is clean, not an error.
    let d = vulfi(&[
        "report",
        "diff",
        empty_store.to_str().unwrap(),
        empty_trace.to_str().unwrap(),
    ]);
    assert_ok(&d, "report diff on empty stores");
    assert!(
        stdout(&d).contains("no comparable studies"),
        "{}",
        stdout(&d)
    );

    // Single-shard store: one campaign-sized shard per campaign.
    let one = temp_dir("single_shard");
    let one_trace = temp_dir("single_shard_trace");
    let (one_s, one_trace_s) = (one.to_str().unwrap(), one_trace.to_str().unwrap());
    assert_ok(
        &vulfi(&[
            "study",
            "--bench",
            "vector sum",
            "--experiments",
            "10",
            "--campaigns",
            "4",
            "--seed",
            "5",
            "--shard-size",
            "100",
            "--store",
            one_s,
            "--trace",
            one_trace_s,
        ]),
        "single-shard study",
    );
    let rs = vulfi(&["results", "summary", "--store", one_s]);
    assert_ok(&rs, "results summary on single-shard store");
    assert!(stdout(&rs).contains("vector sum"), "{}", stdout(&rs));
    let ts = vulfi(&["trace", "summarize", "--trace", one_trace_s]);
    assert_ok(&ts, "trace summarize on single-shard store");
    assert!(stdout(&ts).contains("vector sum"), "{}", stdout(&ts));
    let hm = vulfi(&["report", "heatmap", "--trace", one_trace_s]);
    assert_ok(&hm, "report heatmap on single-shard store");
    assert!(
        stdout(&hm).contains("most vulnerable sites"),
        "{}",
        stdout(&hm)
    );
}
