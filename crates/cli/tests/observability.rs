//! End-to-end CLI observability contract, driven through the real
//! binary:
//!
//! - `study --json` streams one machine-readable `ProgressSnapshot` per
//!   line on stderr and always ends with `done == total`.
//! - `--metrics-out` writes Prometheus text that round-trips through
//!   the exposition parser with the exact experiment count.
//! - `vulfi trace summarize` / `vulfi trace fsck` succeed against the
//!   sidecar the study just wrote.

use std::path::PathBuf;
use std::process::{Command, Output};

use vulfi_orch::{parse_prometheus, ProgressSnapshot, TraceSummary};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vulfi_cli_obs_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn vulfi(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_vulfi"))
        .args(args)
        .output()
        .expect("spawn vulfi binary")
}

fn assert_ok(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed (status {:?})\nstdout:\n{}\nstderr:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
}

#[test]
fn study_json_stream_metrics_and_trace_tools() {
    let store = temp_dir("store");
    let trace = temp_dir("trace");
    let metrics = temp_dir("metrics").join("study.prom");
    std::fs::create_dir_all(metrics.parent().unwrap()).unwrap();
    let store_s = store.to_str().unwrap();
    let trace_s = trace.to_str().unwrap();
    let metrics_s = metrics.to_str().unwrap();

    // 5 campaigns x 12 experiments = 60, sharded by 5.
    let out = vulfi(&[
        "study",
        "--bench",
        "vector sum",
        "--experiments",
        "12",
        "--campaigns",
        "5",
        "--seed",
        "7",
        "--shard-size",
        "5",
        "--store",
        store_s,
        "--trace",
        trace_s,
        "--metrics-out",
        metrics_s,
        "--json",
    ]);
    assert_ok(&out, "vulfi study --json");

    // Every stderr line is a parseable ProgressSnapshot; the stream
    // ends with completion, so a consumer always sees done == total.
    let stderr = String::from_utf8(out.stderr).unwrap();
    let snaps: Vec<ProgressSnapshot> = stderr
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            serde_json::from_str(l)
                .unwrap_or_else(|e| panic!("progress line not a ProgressSnapshot: {e:?}\n{l}"))
        })
        .collect();
    assert!(
        snaps.len() >= 2,
        "expected at least one per-shard snapshot plus the final one, got {}",
        snaps.len()
    );
    for w in snaps.windows(2) {
        assert!(w[0].done <= w[1].done, "done must never decrease");
    }
    let last = snaps.last().unwrap();
    assert_eq!(last.total, 60);
    assert_eq!(last.done, last.total, "stream must end with done == total");
    assert_eq!(last.counts.total(), 60);

    // The study's own stdout JSON document still parses independently
    // of the progress stream.
    let stdout = String::from_utf8(out.stdout).unwrap();
    let doc: serde_json::Value = serde_json::from_str(stdout.trim()).unwrap();
    assert_eq!(
        doc.get("workload").and_then(|v| v.as_str()),
        Some("vector sum")
    );

    // --metrics-out round-trips through the Prometheus parser and the
    // experiment counter agrees with the study size.
    let text = std::fs::read_to_string(&metrics).unwrap();
    let samples = parse_prometheus(&text).expect("metrics file must parse as Prometheus text");
    let executed: f64 = samples
        .iter()
        .filter(|s| s.name == "vulfi_experiments_total")
        .map(|s| s.value)
        .sum();
    assert_eq!(executed, 60.0, "experiment counter must match the plan");
    let appends = samples
        .iter()
        .find(|s| s.name == "vulfi_shard_appends_total")
        .expect("shard append counter present");
    assert!(appends.value >= 12.0, "12 shards were appended");
    assert!(
        samples
            .iter()
            .any(|s| s.name == "vulfi_shard_append_latency_seconds_bucket"),
        "latency histogram present"
    );

    // `trace summarize` reads the sidecar the study just wrote: the
    // human form names percentiles, the JSON form is a TraceSummary
    // covering one span per experiment.
    let human = vulfi(&["trace", "summarize", "--trace", trace_s]);
    assert_ok(&human, "vulfi trace summarize");
    let text = String::from_utf8(human.stdout).unwrap();
    assert!(text.contains("p50"), "summary names percentiles:\n{text}");
    assert!(text.contains("vector sum"), "summary names the workload");

    let json = vulfi(&[
        "trace",
        "summarize",
        "--trace",
        trace_s,
        "--json",
        "--top",
        "3",
    ]);
    assert_ok(&json, "vulfi trace summarize --json");
    let summary: TraceSummary =
        serde_json::from_str(String::from_utf8(json.stdout).unwrap().trim()).unwrap();
    assert_eq!(summary.studies, 1);
    assert_eq!(summary.spans, 60);
    assert!(summary.top_sdc_sites.len() <= 3);

    // And the sidecar fscks clean through the CLI.
    let fsck = vulfi(&["trace", "fsck", "--trace", trace_s]);
    assert_ok(&fsck, "vulfi trace fsck");
}
