//! `vulfi` — command-line driver for the VULFI reproduction.
//!
//! ```text
//! vulfi compile <file.spmd> [--isa avx|sse] [-o out.vir]
//! vulfi sites <file.spmd|file.vir> [--isa avx|sse] [--func NAME]
//! vulfi instrument <file> --category pure-data|control|address [--isa ...] [--func NAME]
//! vulfi detect <file> [--isa ...] [--func NAME] [--uniform]
//! vulfi campaign --bench NAME [--isa ...] [--category ...] [--experiments N] [--seed N] [--detectors]
//! vulfi profile --bench NAME [--isa ...]
//! vulfi list
//! ```
//!
//! `.vir` inputs are parsed as textual IR; anything else is compiled as
//! SPMD-C.

use std::fs;
use std::process::ExitCode;

use spmdc::VectorIsa;
use vir::analysis::SiteCategory;
use vir::Module;
use vulfi::workload::Workload;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("vulfi: {e}");
            ExitCode::from(1)
        }
    }
}

fn usage() -> String {
    "usage:\n  vulfi compile <file> [--isa avx|sse] [-o out.vir]\n  \
     vulfi sites <file> [--isa avx|sse] [--func NAME]\n  \
     vulfi instrument <file> --category pure-data|control|address [--func NAME]\n  \
     vulfi detect <file> [--func NAME] [--uniform]\n  \
     vulfi campaign --bench NAME [--isa avx|sse] [--category CAT] [--experiments N] [--seed N] [--detectors]\n  \
     vulfi profile --bench NAME [--isa avx|sse]\n  \
     vulfi list"
        .to_string()
}

struct Flags {
    isa: VectorIsa,
    out: Option<String>,
    func: Option<String>,
    category: Option<SiteCategory>,
    bench: Option<String>,
    experiments: usize,
    seed: u64,
    detectors: bool,
    uniform: bool,
    positional: Vec<String>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut f = Flags {
        isa: VectorIsa::Avx,
        out: None,
        func: None,
        category: None,
        bench: None,
        experiments: 200,
        seed: 42,
        detectors: false,
        uniform: false,
        positional: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--isa" => {
                f.isa = match val(a)?.to_lowercase().as_str() {
                    "avx" => VectorIsa::Avx,
                    "sse" | "sse4" => VectorIsa::Sse4,
                    other => return Err(format!("unknown isa '{other}'")),
                }
            }
            "-o" | "--out" => f.out = Some(val(a)?),
            "--func" => f.func = Some(val(a)?),
            "--category" => {
                f.category = Some(match val(a)?.to_lowercase().as_str() {
                    "pure-data" | "puredata" | "data" => SiteCategory::PureData,
                    "control" | "ctrl" => SiteCategory::Control,
                    "address" | "addr" => SiteCategory::Address,
                    other => return Err(format!("unknown category '{other}'")),
                })
            }
            "--bench" => f.bench = Some(val(a)?),
            "--experiments" => {
                f.experiments = val(a)?
                    .parse()
                    .map_err(|_| "--experiments needs a number".to_string())?
            }
            "--seed" => {
                f.seed = val(a)?
                    .parse()
                    .map_err(|_| "--seed needs a number".to_string())?
            }
            "--detectors" => f.detectors = true,
            "--uniform" => f.uniform = true,
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => f.positional.push(other.to_string()),
        }
    }
    Ok(f)
}

/// Load a module: `.vir` parses, anything else compiles as SPMD-C.
fn load_module(path: &str, isa: VectorIsa) -> Result<Module, String> {
    let src = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let m = if path.ends_with(".vir") || path.ends_with(".ll") {
        vir::parser::parse_module(&src).map_err(|e| e.to_string())?
    } else {
        spmdc::compile(&src, isa, path).map_err(|e| e.to_string())?
    };
    vir::verify::verify_module(&m).map_err(|e| e.to_string())?;
    Ok(m)
}

/// Pick the target function: `--func`, else the first definition.
fn pick_func<'m>(m: &'m Module, flags: &Flags) -> Result<&'m str, String> {
    match &flags.func {
        Some(n) => m
            .function(n)
            .map(|f| f.name.as_str())
            .ok_or_else(|| format!("no function @{n}")),
        None => m
            .functions
            .first()
            .map(|f| f.name.as_str())
            .ok_or_else(|| "module has no functions".to_string()),
    }
}

fn emit(text: &str, out: &Option<String>) -> Result<(), String> {
    match out {
        Some(path) => fs::write(path, text).map_err(|e| format!("{path}: {e}")),
        None => {
            println!("{text}");
            Ok(())
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    let flags = parse_flags(&args[1..])?;
    match cmd.as_str() {
        "compile" => {
            let path = flags.positional.first().ok_or_else(usage)?;
            let m = load_module(path, flags.isa)?;
            emit(&vir::printer::print_module(&m), &flags.out)
        }
        "sites" => {
            let path = flags.positional.first().ok_or_else(usage)?;
            let m = load_module(path, flags.isa)?;
            let fname = pick_func(&m, &flags)?;
            let f = m.function(fname).unwrap();
            let sites = vulfi::enumerate_sites(f);
            println!(
                "@{fname}: {} static fault sites ({} scalar fault sites including lanes)",
                sites.len(),
                sites.iter().map(|s| s.lanes() as u64).sum::<u64>()
            );
            for (cat, mix) in vulfi::category_mix(&sites) {
                println!(
                    "  {:9}: {:4} sites ({} vector, {} scalar, {:.1}% vector)",
                    cat.name(),
                    mix.total(),
                    mix.vector,
                    mix.scalar,
                    mix.vector_pct()
                );
            }
            Ok(())
        }
        "instrument" => {
            let path = flags.positional.first().ok_or_else(usage)?;
            let category = flags.category.ok_or("instrument requires --category")?;
            let mut m = load_module(path, flags.isa)?;
            let fname = pick_func(&m, &flags)?.to_string();
            let r = vulfi::instrument_module(
                &mut m,
                &fname,
                vulfi::InstrumentOptions::new(category),
            )?;
            eprintln!("instrumented {} sites in @{fname}", r.sites.len());
            emit(&vir::printer::print_module(&m), &flags.out)
        }
        "detect" => {
            let path = flags.positional.first().ok_or_else(usage)?;
            let mut m = load_module(path, flags.isa)?;
            let fname = pick_func(&m, &flags)?.to_string();
            let n = detectors::insert_foreach_detectors(
                &mut m,
                &fname,
                detectors::CheckPlacement::OnExit,
            )?;
            eprintln!("inserted {n} foreach-invariant detector block(s)");
            if flags.uniform {
                let u = detectors::insert_uniform_detectors(&mut m, &fname)?;
                eprintln!("inserted {u} uniform-broadcast checker(s)");
            }
            emit(&vir::printer::print_module(&m), &flags.out)
        }
        "campaign" => {
            let name = flags.bench.as_deref().ok_or("campaign requires --bench")?;
            let scale = vbench::Scale::Test;
            let w = vbench::study_benchmark(name, flags.isa, scale)
                .or_else(|| vbench::micro_benchmark(name, flags.isa, scale))
                .ok_or_else(|| format!("unknown benchmark '{name}' (see `vulfi list`)"))?;
            let category = flags.category.unwrap_or(SiteCategory::PureData);
            let run_one = |w: &dyn Workload| -> Result<(), String> {
                let prog = vulfi::prepare(w, category).map_err(|e| e.to_string())?;
                println!(
                    "benchmark {} [{}], category {}, {} static sites, {} experiments, seed {}",
                    w.name(),
                    flags.isa,
                    category,
                    prog.sites.len(),
                    flags.experiments,
                    flags.seed
                );
                let c = vulfi::run_campaign(&prog, w, flags.experiments, flags.seed)
                    .map_err(|e| e.to_string())?;
                println!(
                    "SDC {:5.1}%   Benign {:5.1}%   Crash {:5.1}%",
                    c.counts.sdc_rate(),
                    c.counts.benign_rate(),
                    c.counts.crash_rate()
                );
                if c.counts.detected > 0 || c.counts.sdc_detected > 0 {
                    println!(
                        "detections: {} total, SDC detection rate {:.1}%",
                        c.counts.detected,
                        c.counts.sdc_detection_rate()
                    );
                }
                Ok(())
            };
            if flags.detectors {
                let wd = detectors::WithDetectors::new(&w, detectors::DetectorConfig::default())
                    .map_err(|e| e.to_string())?;
                run_one(&wd)
            } else {
                run_one(&w)
            }
        }
        "profile" => {
            let name = flags.bench.as_deref().ok_or("profile requires --bench")?;
            let scale = vbench::Scale::Test;
            let w = vbench::study_benchmark(name, flags.isa, scale)
                .or_else(|| vbench::micro_benchmark(name, flags.isa, scale))
                .ok_or_else(|| format!("unknown benchmark '{name}' (see `vulfi list`)"))?;
            let mut interp = vexec::Interp::new(w.module());
            interp.enable_profiling();
            let setup = w
                .setup(&mut interp.mem, 0)
                .map_err(|t| format!("setup failed: {t}"))?;
            interp
                .run(w.entry(), &setup.args, &mut vexec::NoHost)
                .map_err(|t| format!("golden run trapped: {t}"))?;
            let mix = interp.take_mix().expect("profiling enabled");
            println!(
                "{} [{}]: {} dynamic instructions, {:.1}% vector",
                w.name(),
                flags.isa,
                mix.total,
                mix.vector_pct()
            );
            println!("hottest opcodes:");
            for (op, n) in mix.hottest().into_iter().take(12) {
                println!("  {:16} {:>10}  ({:.1}%)", op, n, 100.0 * n as f64 / mix.total as f64);
            }
            Ok(())
        }
        "list" => {
            println!("study benchmarks (paper Table I):");
            for n in vbench::STUDY_NAMES {
                println!("  {n}");
            }
            println!("micro-benchmarks (paper Fig. 12):");
            for n in vbench::MICRO_NAMES {
                println!("  {n}");
            }
            Ok(())
        }
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{}", usage())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    fn write_temp(name: &str, content: &str) -> String {
        let path = std::env::temp_dir().join(format!("vulfi_cli_test_{name}"));
        fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    const KERNEL: &str = r#"
export void scale(uniform float a[], uniform int n, uniform float s) {
    foreach (i = 0 ... n) {
        a[i] = a[i] * s;
    }
}
"#;

    #[test]
    fn flags_parse() {
        let f = parse_flags(&s(&[
            "input.spmd",
            "--isa",
            "sse",
            "--category",
            "addr",
            "--seed",
            "9",
        ]))
        .unwrap();
        assert_eq!(f.isa, VectorIsa::Sse4);
        assert_eq!(f.category, Some(SiteCategory::Address));
        assert_eq!(f.seed, 9);
        assert_eq!(f.positional, vec!["input.spmd".to_string()]);
        assert!(parse_flags(&s(&["--isa", "mips"])).is_err());
        assert!(parse_flags(&s(&["--category", "weird"])).is_err());
        assert!(parse_flags(&s(&["--nope"])).is_err());
    }

    #[test]
    fn compile_and_sites_commands() {
        let path = write_temp("scale.spmd", KERNEL);
        run(&s(&["compile", &path])).unwrap();
        run(&s(&["sites", &path, "--isa", "avx"])).unwrap();
        // Output-to-file path.
        let out = std::env::temp_dir().join("vulfi_cli_test_out.vir");
        run(&s(&["compile", &path, "-o", out.to_str().unwrap()])).unwrap();
        let text = fs::read_to_string(&out).unwrap();
        assert!(text.contains("define void @scale"));
        // The emitted .vir file loads back.
        run(&s(&["sites", out.to_str().unwrap()])).unwrap();
    }

    #[test]
    fn instrument_and_detect_commands() {
        let path = write_temp("scale2.spmd", KERNEL);
        let out = std::env::temp_dir().join("vulfi_cli_test_instr.vir");
        run(&s(&[
            "instrument",
            &path,
            "--category",
            "control",
            "-o",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(fs::read_to_string(&out).unwrap().contains("@vulfi.inject"));
        let out2 = std::env::temp_dir().join("vulfi_cli_test_det.vir");
        run(&s(&["detect", &path, "--uniform", "-o", out2.to_str().unwrap()])).unwrap();
        let text = fs::read_to_string(&out2).unwrap();
        assert!(text.contains("@vulfi.check.foreach"));
        assert!(text.contains("@vulfi.check.uniform"));
    }

    #[test]
    fn campaign_profile_and_list_commands() {
        run(&s(&["list"])).unwrap();
        run(&s(&[
            "campaign",
            "--bench",
            "vector sum",
            "--category",
            "control",
            "--experiments",
            "20",
            "--detectors",
        ]))
        .unwrap();
        run(&s(&["profile", "--bench", "Blackscholes", "--isa", "sse"])).unwrap();
        assert!(run(&s(&["campaign", "--bench", "NoSuch"])).is_err());
        assert!(run(&s(&["bogus-subcommand"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert!(run(&s(&["compile", "/nonexistent/xyz.spmd"])).is_err());
        let bad = write_temp("bad.spmd", "export void f( {");
        assert!(run(&s(&["compile", &bad])).is_err());
        let badvir = write_temp("bad.vir", "define nonsense");
        assert!(run(&s(&["compile", &badvir])).is_err());
        let path = write_temp("scale3.spmd", KERNEL);
        assert!(run(&s(&["instrument", &path])).is_err(), "missing --category");
        assert!(run(&s(&["sites", &path, "--func", "missing"])).is_err());
    }
}
