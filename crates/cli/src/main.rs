//! `vulfi` — command-line driver for the VULFI reproduction.
//!
//! ```text
//! vulfi compile <file.spmd> [--isa avx|sse] [-o out.vir]
//! vulfi sites <file.spmd|file.vir> [--isa avx|sse] [--func NAME]
//! vulfi instrument <file> --category pure-data|control|address [--isa ...] [--func NAME]
//! vulfi detect <file> [--isa ...] [--func NAME] [--uniform]
//! vulfi campaign --bench NAME [--isa ...] [--category ...] [--experiments N] [--seed N] [--detectors]
//! vulfi study --bench NAME [--store DIR] [--resume] [--trace DIR] ...
//! vulfi trace summarize|fsck|export [--trace DIR] [--chrome] [-o PATH]
//! vulfi events tail|summarize|fsck [--store DIR]
//! vulfi alerts check|watch|fsck --rules FILE [--store DIR]
//! vulfi bench [trend] [--bench NAME] [--record] [--check BASELINE]
//! vulfi serve [--addr HOST:PORT] [--rules FILE] [--telemetry-interval-ms N]
//! vulfi profile --bench NAME [--isa ...] [--hotspots]
//! vulfi list
//! ```
//!
//! The full per-command flag reference is `vulfi help` (see [`usage`]).
//! `.vir` inputs are parsed as textual IR; anything else is compiled as
//! SPMD-C.

use std::fs;
use std::process::ExitCode;

use spmdc::VectorIsa;
use vir::analysis::SiteCategory;
use vir::Module;
use vulfi::workload::Workload;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("vulfi: {e}");
            ExitCode::from(1)
        }
    }
}

fn usage() -> String {
    "usage:\n  vulfi compile <file> [--isa avx|sse] [-o out.vir]\n  \
     vulfi sites <file> [--isa avx|sse] [--func NAME] [--json] [-o PATH]\n  \
     vulfi analyze <file>|--bench NAME [--isa avx|sse] [--func NAME] [--json] [-o PATH]\n  \
     vulfi lint <file>|--suite [--isa avx|sse] [--func NAME] [--deny] [--json] [-o PATH]\n  \
     vulfi instrument <file> --category pure-data|control|address [--func NAME]\n  \
     vulfi detect <file> [--func NAME] [--uniform]\n  \
     vulfi campaign --bench NAME [--isa avx|sse] [--category CAT] [--experiments N] [--seed N] [--detectors]\n         \
     [--strict] [--wall-limit-ms N] [--mem-limit-mb N]\n  \
     vulfi study --bench NAME [--isa avx|sse] [--category CAT] [--experiments N] [--campaigns N] [--seed N]\n         \
     [--store DIR] [--resume] [--jobs N] [--shard-size N] [--json] [--detectors] [--model M]\n         \
     [--strict] [--wall-limit-ms N] [--mem-limit-mb N] [--trace DIR] [--metrics-out PATH]\n         \
     [--prune[=on|verify]]\n  \
     vulfi results summary [--store DIR] [--json]\n  \
     vulfi results merge <SRC>... --store DST\n  \
     vulfi store fsck [--store DIR] [--repair] [--json]\n  \
     vulfi trace summarize [--trace DIR] [--top N] [--json]\n  \
     vulfi trace fsck [--trace DIR] [--repair] [--json]\n  \
     vulfi trace export --chrome [--store DIR] [--trace DIR] [-o out.json]\n  \
     vulfi events tail [--store DIR] [--top N] [--json]\n  \
     vulfi events summarize [--store DIR] [--json]\n  \
     vulfi events fsck [--store DIR] [--repair] [--json]\n  \
     vulfi alerts check --rules FILE [--store DIR] [--json]\n  \
     vulfi alerts watch --rules FILE [--store DIR] [--telemetry-interval-ms N]\n  \
     vulfi alerts fsck [--store DIR] [--repair] [--json]\n  \
     vulfi report diff <STORE_A> <STORE_B> [--json]\n  \
     vulfi report heatmap [--trace DIR] [--top N] [--model M] [--json]\n  \
     vulfi report html [--store DIR] [--trace DIR] [--diff-store DIR] [--metrics-in PATH]\n         \
     [--top N] [-o out.html]\n  \
     vulfi gauntlet run <SCENARIO.toml|.json> [--store DIR] [--jobs N] [--resume] [--json]\n         \
     [--strict] [--trace DIR] [--metrics-out PATH] [--wall-limit-ms N] [--mem-limit-mb N]\n  \
     vulfi gauntlet report <SCENARIO.toml|.json> [--store DIR] [-o out.html]\n  \
     vulfi bench [--bench NAME] [--isa avx|sse] [--category CAT] [--experiments N] [--seed N]\n         \
     [--record] [-o PATH] [--check BASELINE] [--prune]\n  \
     vulfi bench trend [-o REPORT.json] [--bench NAME] [--json]\n  \
     vulfi serve [--addr HOST:PORT] [--store DIR] [--workers N] [--lease-ttl-ms N]\n         \
     [--rules FILE] [--telemetry-interval-ms N]\n  \
     vulfi submit --bench NAME [--addr HOST:PORT] [--isa avx|sse] [--category CAT] [--scale test|paper]\n         \
     [--experiments N] [--campaigns N] [--seed N] [--shard-size N] [--detectors] [--model M]\n         \
     [--tenant NAME] [--wait] [--json] [--prune]\n  \
     vulfi status [KEY] [--addr HOST:PORT] [--report] [--json]\n  \
     vulfi shutdown [--addr HOST:PORT]\n  \
     vulfi profile --bench NAME [--isa avx|sse] [--hotspots] [--top N] [-o FOLDED.txt]\n  \
     vulfi list"
        .to_string()
}

#[derive(Debug)]
struct Flags {
    isa: VectorIsa,
    out: Option<String>,
    func: Option<String>,
    category: Option<SiteCategory>,
    bench: Option<String>,
    experiments: Option<usize>,
    campaigns: usize,
    seed: u64,
    detectors: bool,
    uniform: bool,
    store: String,
    resume: bool,
    jobs: Option<usize>,
    shard_size: usize,
    json: bool,
    /// Abort the campaign on an engine panic instead of recording a
    /// contained Crash outcome.
    strict: bool,
    /// `store fsck`: quarantine and rebuild corrupt shard logs.
    repair: bool,
    /// Wall-clock watchdog per faulty run, in milliseconds.
    wall_limit_ms: Option<u64>,
    /// Memory ceiling per faulty run, in MiB.
    mem_limit_mb: Option<u64>,
    /// Trace-store root: `study --trace DIR` records per-experiment
    /// spans there; `trace summarize|fsck` read it.
    trace: Option<String>,
    /// Write a metrics snapshot here after `study` (`.json` → JSON,
    /// anything else → Prometheus text format).
    metrics_out: Option<String>,
    /// `trace summarize`: how many SDC-prone sites to list.
    top: usize,
    /// `report html`: second store to diff the primary store against.
    diff_store: Option<String>,
    /// `report html`: fold a Prometheus-format metrics snapshot into the
    /// report.
    metrics_in: Option<String>,
    /// `bench`: write the machine-readable `BENCH_report.json`.
    record: bool,
    /// `bench`: compare throughput against this baseline report and fail
    /// on a >30% regression.
    check: Option<String>,
    /// `serve`/`submit`/`status`/`shutdown`: daemon address.
    addr: String,
    /// `serve`: worker threads collaborating on the active study.
    workers: usize,
    /// `serve`: shard lease TTL before a silent worker's shard re-runs.
    lease_ttl_ms: u64,
    /// `submit`: tenant name recorded with the job.
    tenant: Option<String>,
    /// `submit`: poll the study to completion before exiting.
    wait: bool,
    /// `submit`: workload input scale ("test" or "paper").
    scale: String,
    /// `status KEY`: fetch the analytics report instead of the status.
    report: bool,
    /// Fault model (`study`/`submit`; default single-bit-flip), or
    /// heatmap filter (`report heatmap`; default unfiltered).
    model: Option<String>,
    /// `study`/`submit`: static-pruning mode — `None` (off), `"on"`
    /// (discharge provably-benign injections without executing), or
    /// `"verify"` (execute everything, cross-validate the predictions).
    prune: Option<String>,
    /// `lint`: exit non-zero when any lint fires.
    deny: bool,
    /// `lint`: lint every built-in study benchmark instead of a file.
    suite: bool,
    /// `profile`: per-site hotspot table with attributed wall time.
    hotspots: bool,
    /// `alerts`/`serve`: declarative alert rules file (TOML or JSON).
    rules: Option<String>,
    /// `serve`/`alerts watch`: telemetry sampling interval; 0 disables
    /// the daemon's sampler entirely.
    telemetry_interval_ms: u64,
    /// `trace export`: emit Chrome trace-event JSON (Perfetto-loadable).
    chrome: bool,
    positional: Vec<String>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut f = Flags {
        isa: VectorIsa::Avx,
        out: None,
        func: None,
        category: None,
        bench: None,
        experiments: None,
        campaigns: 8,
        seed: 42,
        detectors: false,
        uniform: false,
        store: "results/store".to_string(),
        resume: false,
        jobs: None,
        shard_size: 25,
        json: false,
        strict: false,
        repair: false,
        wall_limit_ms: None,
        mem_limit_mb: None,
        trace: None,
        metrics_out: None,
        top: 10,
        diff_store: None,
        metrics_in: None,
        record: false,
        check: None,
        addr: "127.0.0.1:7070".to_string(),
        workers: 2,
        lease_ttl_ms: 60_000,
        tenant: None,
        wait: false,
        scale: "test".to_string(),
        report: false,
        model: None,
        prune: None,
        deny: false,
        suite: false,
        hotspots: false,
        rules: None,
        telemetry_interval_ms: 1_000,
        chrome: false,
        positional: Vec::new(),
    };
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        let mut val = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--isa" => {
                f.isa = match val(a)?.to_lowercase().as_str() {
                    "avx" => VectorIsa::Avx,
                    "sse" | "sse4" => VectorIsa::Sse4,
                    other => return Err(format!("unknown isa '{other}'")),
                }
            }
            "-o" | "--out" => f.out = Some(val(a)?),
            "--func" => f.func = Some(val(a)?),
            "--category" => {
                f.category = Some(match val(a)?.to_lowercase().as_str() {
                    "pure-data" | "puredata" | "data" => SiteCategory::PureData,
                    "control" | "ctrl" => SiteCategory::Control,
                    "address" | "addr" => SiteCategory::Address,
                    other => return Err(format!("unknown category '{other}'")),
                })
            }
            "--bench" => f.bench = Some(val(a)?),
            "--experiments" => {
                f.experiments = Some(
                    val(a)?
                        .parse()
                        .map_err(|_| "--experiments needs a number".to_string())?,
                )
            }
            "--campaigns" => {
                f.campaigns = val(a)?
                    .parse()
                    .map_err(|_| "--campaigns needs a number".to_string())?
            }
            "--seed" => {
                f.seed = val(a)?
                    .parse()
                    .map_err(|_| "--seed needs a number".to_string())?
            }
            "--store" => f.store = val(a)?,
            "--jobs" => {
                f.jobs = Some(
                    val(a)?
                        .parse()
                        .map_err(|_| "--jobs needs a number".to_string())?,
                )
            }
            "--shard-size" => {
                f.shard_size = val(a)?
                    .parse::<usize>()
                    .map_err(|_| "--shard-size needs a number".to_string())?
                    .max(1)
            }
            "--wall-limit-ms" => {
                f.wall_limit_ms = Some(
                    val(a)?
                        .parse()
                        .map_err(|_| "--wall-limit-ms needs a number".to_string())?,
                )
            }
            "--mem-limit-mb" => {
                f.mem_limit_mb = Some(
                    val(a)?
                        .parse()
                        .map_err(|_| "--mem-limit-mb needs a number".to_string())?,
                )
            }
            "--model" => f.model = Some(val(a)?),
            "--trace" => f.trace = Some(val(a)?),
            "--metrics-out" => f.metrics_out = Some(val(a)?),
            "--diff-store" => f.diff_store = Some(val(a)?),
            "--metrics-in" => f.metrics_in = Some(val(a)?),
            "--record" => f.record = true,
            "--check" => f.check = Some(val(a)?),
            "--addr" => f.addr = val(a)?,
            "--workers" => {
                f.workers = val(a)?
                    .parse::<usize>()
                    .map_err(|_| "--workers needs a number".to_string())?
                    .max(1)
            }
            "--lease-ttl-ms" => {
                f.lease_ttl_ms = val(a)?
                    .parse()
                    .map_err(|_| "--lease-ttl-ms needs a number".to_string())?
            }
            "--tenant" => f.tenant = Some(val(a)?),
            "--scale" => f.scale = val(a)?,
            "--wait" => f.wait = true,
            "--report" => f.report = true,
            "--top" => {
                f.top = val(a)?
                    .parse::<usize>()
                    .map_err(|_| "--top needs a number".to_string())?
            }
            "--prune" => {
                // `--prune` alone means "on"; a mode may follow either as
                // the next word or glued on with `=`.
                f.prune = match it.peek().map(|s| s.as_str()) {
                    Some(m @ ("on" | "verify" | "off")) => {
                        it.next();
                        Some(m.to_string())
                    }
                    _ => Some("on".to_string()),
                };
                if f.prune.as_deref() == Some("off") {
                    f.prune = None;
                }
            }
            other if other.starts_with("--prune=") => match other.trim_start_matches("--prune=") {
                m @ ("on" | "verify") => f.prune = Some(m.to_string()),
                "off" => f.prune = None,
                bad => {
                    return Err(format!(
                        "--prune mode '{bad}' not in [\"off\", \"on\", \"verify\"]"
                    ))
                }
            },
            "--rules" => f.rules = Some(val(a)?),
            "--telemetry-interval-ms" => {
                f.telemetry_interval_ms = val(a)?
                    .parse()
                    .map_err(|_| "--telemetry-interval-ms needs a number".to_string())?
            }
            "--chrome" => f.chrome = true,
            "--deny" => f.deny = true,
            "--suite" => f.suite = true,
            "--hotspots" => f.hotspots = true,
            "--strict" => f.strict = true,
            "--repair" => f.repair = true,
            "--resume" => f.resume = true,
            "--json" => f.json = true,
            "--detectors" => f.detectors = true,
            "--uniform" => f.uniform = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other}\n{}", usage()))
            }
            other => f.positional.push(other.to_string()),
        }
    }
    Ok(f)
}

/// Load a module: `.vir` parses, anything else compiles as SPMD-C.
fn load_module(path: &str, isa: VectorIsa) -> Result<Module, String> {
    let src = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let m = if path.ends_with(".vir") || path.ends_with(".ll") {
        vir::parser::parse_module(&src).map_err(|e| e.to_string())?
    } else {
        spmdc::compile(&src, isa, path).map_err(|e| e.to_string())?
    };
    vir::verify::verify_module(&m).map_err(|e| e.to_string())?;
    Ok(m)
}

/// Pick the target function: `--func`, else the first definition.
fn pick_func<'m>(m: &'m Module, flags: &Flags) -> Result<&'m vir::Function, String> {
    let available = || {
        let names: Vec<String> = m.functions.iter().map(|f| format!("@{}", f.name)).collect();
        if names.is_empty() {
            "module defines no functions".to_string()
        } else {
            format!("module defines: {}", names.join(", "))
        }
    };
    match &flags.func {
        Some(n) => m
            .function(n)
            .ok_or_else(|| format!("no function @{n}; {}", available())),
        None => m
            .functions
            .first()
            .ok_or_else(|| "module has no functions".to_string()),
    }
}

fn emit(text: &str, out: &Option<String>) -> Result<(), String> {
    match out {
        Some(path) => fs::write(path, text).map_err(|e| format!("{path}: {e}")),
        None => {
            println!("{text}");
            Ok(())
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    let flags = parse_flags(&args[1..])?;
    match cmd.as_str() {
        "compile" => {
            let path = flags.positional.first().ok_or_else(usage)?;
            let m = load_module(path, flags.isa)?;
            emit(&vir::printer::print_module(&m), &flags.out)
        }
        "sites" => {
            let path = flags.positional.first().ok_or_else(usage)?;
            let m = load_module(path, flags.isa)?;
            let f = pick_func(&m, &flags)?;
            let fname = f.name.as_str();
            let sites = vulfi::enumerate_sites(f);
            if flags.json {
                let docs: Vec<serde_json::Value> = sites
                    .iter()
                    .map(|s| {
                        let inst = f.inst(s.inst);
                        let value = match s.kind {
                            vulfi::SiteKind::Lvalue => inst
                                .result
                                .map(|v| f.value_display_name(v))
                                .unwrap_or_default(),
                            vulfi::SiteKind::StoreValue { operand_index } => inst
                                .operands()
                                .get(operand_index)
                                .and_then(|op| op.value())
                                .map(|v| f.value_display_name(v))
                                .unwrap_or_else(|| "const".to_string()),
                        };
                        let category = if s.flags.address {
                            "address"
                        } else if s.flags.control {
                            "control"
                        } else {
                            "pure-data"
                        };
                        serde_json::json!({
                            "id": s.id as u64,
                            "value": value,
                            "opcode": inst.opcode(),
                            "kind": match s.kind {
                                vulfi::SiteKind::Lvalue => "lvalue".to_string(),
                                vulfi::SiteKind::StoreValue { operand_index } =>
                                    format!("store-value:{operand_index}"),
                            },
                            "category": category,
                            "address": s.flags.address,
                            "control": s.flags.control,
                            "masked": s.mask.is_some(),
                            "mask_source": match &s.mask {
                                Some(m) => serde_json::json!(m.arg_index as u64),
                                None => serde_json::Value::Null,
                            },
                            "vector": s.is_vector_inst,
                            "lanes": s.lanes() as u64,
                            "elem": s.elem().name(),
                        })
                    })
                    .collect();
                let doc = serde_json::json!({
                    "function": fname,
                    "sites": serde_json::Value::Array(docs),
                });
                emit(&serde_json::to_string_pretty(&doc).unwrap(), &flags.out)
            } else {
                println!(
                    "@{fname}: {} static fault sites ({} scalar fault sites including lanes)",
                    sites.len(),
                    sites.iter().map(|s| s.lanes() as u64).sum::<u64>()
                );
                for (cat, mix) in vulfi::category_mix(&sites) {
                    println!(
                        "  {:9}: {:4} sites ({} vector, {} scalar, {:.1}% vector)",
                        cat.name(),
                        mix.total(),
                        mix.vector,
                        mix.scalar,
                        mix.vector_pct()
                    );
                }
                Ok(())
            }
        }
        "analyze" => analyze_cmd(&flags),
        "lint" => lint_cmd(&flags),
        "instrument" => {
            let path = flags.positional.first().ok_or_else(usage)?;
            let category = flags.category.ok_or("instrument requires --category")?;
            let mut m = load_module(path, flags.isa)?;
            let fname = pick_func(&m, &flags)?.name.clone();
            let r =
                vulfi::instrument_module(&mut m, &fname, vulfi::InstrumentOptions::new(category))?;
            eprintln!("instrumented {} sites in @{fname}", r.sites.len());
            emit(&vir::printer::print_module(&m), &flags.out)
        }
        "detect" => {
            let path = flags.positional.first().ok_or_else(usage)?;
            let mut m = load_module(path, flags.isa)?;
            let fname = pick_func(&m, &flags)?.name.clone();
            let n = detectors::insert_foreach_detectors(
                &mut m,
                &fname,
                detectors::CheckPlacement::OnExit,
            )?;
            eprintln!("inserted {n} foreach-invariant detector block(s)");
            if flags.uniform {
                let u = detectors::insert_uniform_detectors(&mut m, &fname)?;
                eprintln!("inserted {u} uniform-broadcast checker(s)");
            }
            emit(&vir::printer::print_module(&m), &flags.out)
        }
        "campaign" => {
            let name = flags.bench.as_deref().ok_or("campaign requires --bench")?;
            let scale = vbench::Scale::Test;
            let w = vbench::study_benchmark(name, flags.isa, scale)
                .or_else(|| vbench::micro_benchmark(name, flags.isa, scale))
                .ok_or_else(|| format!("unknown benchmark '{name}' (see `vulfi list`)"))?;
            let category = flags.category.unwrap_or(SiteCategory::PureData);
            let experiments = flags.experiments.unwrap_or(200);
            vulfi::set_strict(flags.strict);
            let run_one = |w: &dyn Workload| -> Result<(), String> {
                let mut prog = vulfi::prepare(w, category).map_err(|e| e.to_string())?;
                apply_limits(&mut prog, &flags);
                println!(
                    "benchmark {} [{}], category {}, {} static sites, {} experiments, seed {}",
                    w.name(),
                    flags.isa,
                    category,
                    prog.sites.len(),
                    experiments,
                    flags.seed
                );
                let c = vulfi::run_campaign(&prog, w, experiments, flags.seed)
                    .map_err(|e| e.to_string())?;
                println!(
                    "SDC {:5.1}%   Benign {:5.1}%   Crash {:5.1}%",
                    c.counts.sdc_rate(),
                    c.counts.benign_rate(),
                    c.counts.crash_rate()
                );
                if c.counts.detected > 0 || c.counts.sdc_detected > 0 {
                    println!(
                        "detections: {} total, SDC detection rate {:.1}%",
                        c.counts.detected,
                        c.counts.sdc_detection_rate()
                    );
                }
                report_engine_faults();
                Ok(())
            };
            if flags.detectors {
                let wd = detectors::WithDetectors::new(&w, detectors::DetectorConfig::default())
                    .map_err(|e| e.to_string())?;
                run_one(&wd)
            } else {
                run_one(&w)
            }
        }
        "study" => run_study_cmd(&flags),
        "results" => match flags.positional.first().map(String::as_str) {
            Some("summary") => results_summary(&flags),
            Some("merge") => results_merge(&flags),
            _ => Err(format!("results needs a subcommand\n{}", usage())),
        },
        "store" => match flags.positional.first().map(String::as_str) {
            Some("fsck") => store_fsck(&flags),
            _ => Err(format!("store needs a subcommand (fsck)\n{}", usage())),
        },
        "trace" => match flags.positional.first().map(String::as_str) {
            Some("summarize") => trace_summarize(&flags),
            Some("fsck") => trace_fsck(&flags),
            Some("export") => trace_export(&flags),
            _ => Err(format!(
                "trace needs a subcommand (summarize, fsck, export)\n{}",
                usage()
            )),
        },
        "events" => match flags.positional.first().map(String::as_str) {
            Some("tail") => events_tail(&flags),
            Some("summarize") => events_summarize(&flags),
            Some("fsck") => events_fsck(&flags),
            _ => Err(format!(
                "events needs a subcommand (tail, summarize, fsck)\n{}",
                usage()
            )),
        },
        "alerts" => match flags.positional.first().map(String::as_str) {
            Some("check") => alerts_check(&flags),
            Some("watch") => alerts_watch(&flags),
            Some("fsck") => alerts_fsck(&flags),
            _ => Err(format!(
                "alerts needs a subcommand (check, watch, fsck)\n{}",
                usage()
            )),
        },
        "report" => match flags.positional.first().map(String::as_str) {
            Some("diff") => report_diff(&flags),
            Some("heatmap") => report_heatmap(&flags),
            Some("html") => report_html(&flags),
            _ => Err(format!(
                "report needs a subcommand (diff, heatmap, html)\n{}",
                usage()
            )),
        },
        "gauntlet" => match flags.positional.first().map(String::as_str) {
            Some("run") => gauntlet_run(&flags),
            Some("report") => gauntlet_report(&flags),
            _ => Err(format!(
                "gauntlet needs a subcommand (run, report)\n{}",
                usage()
            )),
        },
        "bench" => match flags.positional.first().map(String::as_str) {
            Some("trend") => bench_trend(&flags),
            _ => bench_cmd(&flags),
        },
        "serve" => serve_cmd(&flags),
        "submit" => submit_cmd(&flags),
        "status" => status_cmd(&flags),
        "shutdown" => shutdown_cmd(&flags),
        "profile" => {
            let name = flags.bench.as_deref().ok_or("profile requires --bench")?;
            let scale = vbench::Scale::Test;
            let w = vbench::study_benchmark(name, flags.isa, scale)
                .or_else(|| vbench::micro_benchmark(name, flags.isa, scale))
                .ok_or_else(|| format!("unknown benchmark '{name}' (see `vulfi list`)"))?;
            let mut interp = vexec::Interp::new(w.module());
            interp.enable_profiling();
            if flags.hotspots {
                interp.enable_hotspots();
            }
            let setup = w
                .setup(&mut interp.mem, 0)
                .map_err(|t| format!("setup failed: {t}"))?;
            interp
                .run(w.entry(), &setup.args, &mut vexec::NoHost)
                .map_err(|t| format!("golden run trapped: {t}"))?;
            let mix = interp.take_mix().expect("profiling enabled");
            println!(
                "{} [{}]: {} dynamic instructions, {:.1}% vector",
                w.name(),
                flags.isa,
                mix.total,
                mix.vector_pct()
            );
            println!("hottest opcodes:");
            for (op, n) in mix.hottest().into_iter().take(12) {
                println!(
                    "  {:16} {:>10}  ({:.1}%)",
                    op,
                    n,
                    100.0 * n as f64 / mix.total as f64
                );
            }
            if mix.lanes_total > 0 {
                println!(
                    "lane occupancy: mean {:.2} active lanes per vector instruction, \
                     {:.1}% lane utilization",
                    mix.avg_active_lanes(),
                    100.0 * mix.lane_utilization()
                );
                for (active, n) in mix.occupancy_histogram() {
                    println!("  {active:>2} active lane(s): {n:>10} inst(s)");
                }
            }
            if flags.hotspots {
                let hot = interp.take_hotspots().expect("hotspots enabled");
                print_hotspots(&hot, &flags)?;
            }
            Ok(())
        }
        "list" => {
            println!("study benchmarks (paper Table I):");
            for n in vbench::STUDY_NAMES {
                println!("  {n}");
            }
            println!("micro-benchmarks (paper Fig. 12):");
            for n in vbench::MICRO_NAMES {
                println!("  {n}");
            }
            Ok(())
        }
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => match suggest_command(other) {
            Some(best) => Err(format!(
                "unknown command '{other}' (did you mean '{best}'?)\n{}",
                usage()
            )),
            None => Err(format!("unknown command '{other}'\n{}", usage())),
        },
    }
}

/// Every top-level subcommand, for typo suggestions.
const COMMANDS: &[&str] = &[
    "compile",
    "sites",
    "analyze",
    "lint",
    "instrument",
    "detect",
    "campaign",
    "study",
    "results",
    "store",
    "trace",
    "events",
    "alerts",
    "report",
    "gauntlet",
    "bench",
    "serve",
    "submit",
    "status",
    "shutdown",
    "profile",
    "list",
    "help",
];

/// Levenshtein distance, small inputs only (command names).
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

/// The closest known command within edit distance 2, if any — so
/// `vulfi serv` points at `serve` instead of dumping only the usage.
fn suggest_command(typo: &str) -> Option<&'static str> {
    COMMANDS
        .iter()
        .copied()
        .map(|c| (edit_distance(typo, c), c))
        .filter(|(d, c)| *d <= 2 && *d < c.len())
        .min_by_key(|(d, _)| *d)
        .map(|(_, c)| c)
}

/// Surface any engine panics that were contained during this run: they
/// were counted as Crash outcomes, but an operator should know the
/// engine (not the injected fault alone) was involved.
fn report_engine_faults() {
    let faults = vulfi::drain_engine_faults();
    if faults.is_empty() {
        return;
    }
    eprintln!(
        "warning: {} experiment(s) absorbed an engine panic (recorded as Crash; \
         re-run with --strict to abort instead):",
        faults.len()
    );
    for f in faults.iter().take(5) {
        eprintln!("  {f}");
    }
    if faults.len() > 5 {
        eprintln!("  ... and {} more", faults.len() - 5);
    }
}

/// Apply `--wall-limit-ms` / `--mem-limit-mb` to a prepared program.
fn apply_limits(prog: &mut vulfi::Prepared, flags: &Flags) {
    if let Some(ms) = flags.wall_limit_ms {
        prog.limits.wall_ms = ms;
    }
    if let Some(mb) = flags.mem_limit_mb {
        prog.limits.mem_bytes = mb << 20;
    }
}

fn isa_name(isa: VectorIsa) -> &'static str {
    match isa {
        VectorIsa::Avx => "avx",
        VectorIsa::Sse4 => "sse",
    }
}

fn load_bench(name: &str, isa: VectorIsa) -> Result<vbench::SpmdWorkload, String> {
    let scale = vbench::Scale::Test;
    vbench::study_benchmark(name, isa, scale)
        .or_else(|| vbench::micro_benchmark(name, isa, scale))
        .ok_or_else(|| format!("unknown benchmark '{name}' (see `vulfi list`)"))
}

/// `vulfi analyze`: the static vulnerability report — classify every
/// (site, lane, bit) of the chosen function and print per-site
/// provably-benign fractions. A file positional analyzes that module;
/// `--bench` analyzes the same built-in module a study would instrument.
fn analyze_cmd(flags: &Flags) -> Result<(), String> {
    let (m, entry) = match flags.positional.first() {
        Some(path) => {
            let m = load_module(path, flags.isa)?;
            let entry = pick_func(&m, flags)?.name.clone();
            (m, entry)
        }
        None => {
            let name = flags
                .bench
                .as_deref()
                .ok_or("analyze needs a module file or --bench NAME")?;
            let w = load_bench(name, flags.isa)?;
            let entry = w.entry().to_string();
            (w.module().clone(), entry)
        }
    };
    let report = vulfi::analyze_module(&m, &entry)?;
    if flags.json {
        return emit(
            &serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?,
            &flags.out,
        );
    }
    let mut text = format!(
        "@{}: {} sites, {} scalar bits, {:.1}% provably benign\n",
        report.function,
        report.sites.len(),
        report.total_bits(),
        100.0 * report.benign_fraction()
    );
    text.push_str(&format!(
        "{:>4}  {:18} {:12} {:12} {:10} {:16} {:>8}\n",
        "site", "value", "opcode", "kind", "category", "class", "benign%"
    ));
    for s in &report.sites {
        text.push_str(&format!(
            "{:>4}  {:18} {:12} {:12} {:10} {:16} {:>7.1}%\n",
            s.id,
            s.value,
            s.opcode,
            s.kind,
            s.category,
            s.class,
            100.0 * s.benign_fraction()
        ));
    }
    emit(text.trim_end(), &flags.out)
}

/// `vulfi lint`: run the static diagnostic catalog (VL001–VL005) over a
/// module file or, with `--suite`, over every built-in study benchmark.
/// `--deny` turns any finding into a non-zero exit.
fn lint_cmd(flags: &Flags) -> Result<(), String> {
    let mut findings: Vec<(String, vir::analysis::LintFinding)> = Vec::new();
    let mut targets = 0usize;
    if flags.suite {
        for name in vbench::STUDY_NAMES {
            let w = load_bench(name, flags.isa)?;
            targets += 1;
            findings.extend(
                vir::analysis::lint_module(w.module())
                    .into_iter()
                    .map(|f| (name.to_string(), f)),
            );
        }
    } else {
        let path = flags
            .positional
            .first()
            .ok_or("lint needs a module file or --suite")?;
        let m = load_module(path, flags.isa)?;
        targets += 1;
        let module_findings = match &flags.func {
            Some(_) => vir::analysis::lint_function(pick_func(&m, flags)?),
            None => vir::analysis::lint_module(&m),
        };
        findings.extend(module_findings.into_iter().map(|f| (path.clone(), f)));
    }
    if flags.json {
        let docs: Vec<serde_json::Value> = findings
            .iter()
            .map(|(target, f)| {
                serde_json::json!({
                    "target": target.clone(),
                    "id": f.id,
                    "name": f.name,
                    "function": f.function.clone(),
                    "block": f.block.clone(),
                    "value": f.value.clone(),
                    "message": f.message.clone(),
                })
            })
            .collect();
        emit(
            &serde_json::to_string_pretty(&serde_json::Value::Array(docs)).unwrap(),
            &flags.out,
        )?;
    } else {
        let mut text = String::new();
        for (target, f) in &findings {
            text.push_str(&format!("{target}: {f}\n"));
        }
        text.push_str(&format!(
            "{} finding(s) across {} target(s)\n",
            findings.len(),
            targets
        ));
        emit(text.trim_end(), &flags.out)?;
    }
    if flags.deny && !findings.is_empty() {
        return Err(format!("lint: {} finding(s) denied", findings.len()));
    }
    Ok(())
}

/// `vulfi study`: run (or resume) a persistent study through the store.
fn run_study_cmd(flags: &Flags) -> Result<(), String> {
    let name = flags.bench.as_deref().ok_or("study requires --bench")?;
    if let Some(j) = flags.jobs {
        vulfi_orch::set_jobs(j);
    }
    let w = load_bench(name, flags.isa)?;
    let category = flags.category.unwrap_or(SiteCategory::PureData);
    let cfg = vulfi::StudyConfig {
        experiments_per_campaign: flags.experiments.unwrap_or(25),
        max_campaigns: flags.campaigns,
        seed: flags.seed,
        model: match flags.model.as_deref() {
            Some(m) => vulfi::FaultModel::parse(m)?,
            None => vulfi::FaultModel::default(),
        },
        // `--prune=verify` runs the full study (same key as an unpruned
        // run) and cross-validates predictions post-hoc; only `--prune`
        // / `--prune=on` actually discharges experiments.
        prune: flags.prune.as_deref() == Some("on"),
        ..vulfi::StudyConfig::default()
    };
    if flags.prune.is_some() && cfg.model != vulfi::FaultModel::SingleBitFlip {
        return Err(format!(
            "--prune requires the single-bit-flip model, not '{}'",
            cfg.model
        ));
    }
    let store = vulfi_orch::Store::open(&flags.store).map_err(|e| e.to_string())?;
    let isa = isa_name(flags.isa);
    vulfi::set_strict(flags.strict);

    let run_one = |w: &dyn Workload| -> Result<(), String> {
        let mut prog = vulfi::prepare(w, category).map_err(|e| e.to_string())?;
        prog.model = cfg.model;
        apply_limits(&mut prog, flags);
        let key = vulfi_orch::study_key(&prog, w.name(), isa, &cfg);
        let study = store.study(&key);
        if study.exists() && !flags.resume {
            let done = study.shards().map_err(|e| e.to_string())?;
            let plan = vulfi_orch::plan_shards(&cfg, flags.shard_size);
            let pending = vulfi_orch::missing_jobs(&plan, &done, &cfg).len();
            if pending > 0 && pending < plan.len() {
                return Err(format!(
                    "study {key} has partial results ({}/{} shards stored); \
                     pass --resume to execute only the missing shards, or remove {}",
                    plan.len() - pending,
                    plan.len(),
                    study.dir().display()
                ));
            }
        }
        let progress: Option<vulfi_orch::ProgressFn> = Some(make_progress_reporter(flags.json));
        let out = vulfi_orch::run_study_persistent(
            &prog,
            w,
            w.name(),
            isa,
            &cfg,
            &store,
            vulfi_orch::RunOptions {
                shard_size: flags.shard_size,
                max_shards: None,
                progress,
                trace: flags.trace.as_ref().map(std::path::PathBuf::from),
            },
        )
        .map_err(|e| e.to_string())?;
        if let Some(path) = &flags.metrics_out {
            write_metrics(path)?;
        }
        let r = out
            .result
            .ok_or_else(|| "study incomplete after run (store corrupted?)".to_string())?;
        // Pruning accounting and `--prune=verify` cross-validation both
        // read the stored shards back (cheap: the study just ran or was
        // cached under the same key).
        let prune_mode = flags.prune.as_deref();
        let (discharged, soundness) = if prune_mode.is_some() {
            let done = store.study(&out.key).shards().map_err(|e| e.to_string())?;
            let discharged = done
                .iter()
                .flat_map(|s| &s.experiments)
                .filter(|e| e.injection.is_none() && e.dynamic_sites > 0)
                .count() as u64;
            let soundness = if prune_mode == Some("verify") {
                Some(vulfi_orch::verify_soundness(w, &done).map_err(|e| e.to_string())?)
            } else {
                None
            };
            (discharged, soundness)
        } else {
            (0, None)
        };
        if flags.json {
            let mut doc = serde_json::json!({
                "key": out.key.0.clone(),
                "workload": w.name(),
                "isa": isa,
                "category": category.name(),
                "model": cfg.model.name(),
                "mean_sdc": r.summary.mean,
                "margin_95": r.summary.margin_95,
                "campaigns": r.summary.campaigns,
                "converged": r.converged,
                "samples": r.samples.clone(),
                "counts": serde_json::to_value(&r.counts).unwrap(),
                "shards_total": out.total_shards as u64,
                "shards_reused": out.reused_shards as u64,
                "shards_executed": out.executed_shards as u64,
                "wall_ns": out.wall_ns,
                "dyn_insts": out.dyn_insts,
            });
            if let Some(mode) = prune_mode {
                if let serde_json::Value::Object(o) = &mut doc {
                    o.push(("prune".to_string(), serde_json::json!(mode)));
                    o.push(("discharged".to_string(), serde_json::json!(discharged)));
                    if let Some(s) = &soundness {
                        o.push((
                            "soundness".to_string(),
                            serde_json::json!({
                                "checked": s.checked,
                                "predicted_benign": s.predicted_benign,
                                "violations": s.violations.len() as u64,
                            }),
                        ));
                    }
                }
            }
            println!("{}", serde_json::to_string_pretty(&doc).unwrap());
        } else {
            println!(
                "study {} [{}], category {}, key {}",
                w.name(),
                isa,
                category,
                out.key
            );
            println!(
                "shards: {} total, {} reused, {} executed",
                out.total_shards, out.reused_shards, out.executed_shards
            );
            println!(
                "SDC {:.1}% ± {:.1} over {} campaigns ({})",
                r.summary.mean,
                r.summary.margin_95,
                r.summary.campaigns,
                if r.converged {
                    "converged"
                } else {
                    "not converged"
                }
            );
            println!(
                "counts: SDC {} Benign {} Crash {} | {} dyn insts | {:.2}s wall",
                r.counts.sdc,
                r.counts.benign,
                r.counts.crash,
                out.dyn_insts,
                out.wall_ns as f64 / 1e9
            );
            if r.counts.detected > 0 {
                println!(
                    "detections: {} total, SDC detection rate {:.1}%",
                    r.counts.detected,
                    r.counts.sdc_detection_rate()
                );
            }
            if prune_mode == Some("on") {
                let total = r.counts.total().max(1);
                println!(
                    "pruning: {} of {} experiments statically discharged ({:.1}%) without execution",
                    discharged,
                    r.counts.total(),
                    100.0 * discharged as f64 / total as f64
                );
            }
            if let Some(s) = &soundness {
                println!(
                    "soundness: {} injection(s) checked, {} predicted benign, {} violation(s)",
                    s.checked,
                    s.predicted_benign,
                    s.violations.len()
                );
            }
        }
        report_engine_faults();
        if let Some(s) = &soundness {
            if !s.is_sound() {
                let mut msg = format!(
                    "prediction soundness violated: {} predicted-benign injection(s) \
                     had a non-benign or detected outcome",
                    s.violations.len()
                );
                for v in s.violations.iter().take(5) {
                    msg.push_str(&format!("\n  {v}"));
                }
                return Err(msg);
            }
        }
        Ok(())
    };
    if flags.detectors {
        let wd = detectors::WithDetectors::new(&w, detectors::DetectorConfig::default())
            .map_err(|e| e.to_string())?;
        run_one(&wd)
    } else {
        run_one(&w)
    }
}

/// `vulfi results summary`: one line (or JSON record) per stored study.
fn results_summary(flags: &Flags) -> Result<(), String> {
    let store = vulfi_orch::Store::open(&flags.store).map_err(|e| e.to_string())?;
    let keys = store.studies().map_err(|e| e.to_string())?;
    let mut docs = Vec::new();
    for key in &keys {
        let study = store.study(key);
        let m = study.read_manifest().map_err(|e| e.to_string())?;
        let shards = study.shards().map_err(|e| e.to_string())?;
        let covered = vulfi_orch::covered_experiments(&shards, &m.cfg);
        let total = m.cfg.max_campaigns * m.cfg.experiments_per_campaign;
        match vulfi_orch::merge(&m.cfg, m.category, &shards) {
            Some(r) => {
                if flags.json {
                    docs.push(serde_json::json!({
                        "key": key.0.clone(),
                        "workload": m.workload.clone(),
                        "isa": m.isa.clone(),
                        "category": m.category.name(),
                        "status": "complete",
                        "mean_sdc": r.summary.mean,
                        "margin_95": r.summary.margin_95,
                        "campaigns": r.summary.campaigns,
                        "converged": r.converged,
                    }));
                } else {
                    println!(
                        "{}  {:24} {:4} {:9}  SDC {:5.1}% ± {:4.1}  {:2} campaigns  {}",
                        &key.0[..12],
                        m.workload,
                        m.isa,
                        m.category.name(),
                        r.summary.mean,
                        r.summary.margin_95,
                        r.summary.campaigns,
                        if r.converged { "converged" } else { "capped" }
                    );
                }
            }
            None => {
                if flags.json {
                    docs.push(serde_json::json!({
                        "key": key.0.clone(),
                        "workload": m.workload.clone(),
                        "isa": m.isa.clone(),
                        "category": m.category.name(),
                        "status": "partial",
                        "covered_experiments": covered as u64,
                        "total_experiments": total as u64,
                    }));
                } else {
                    println!(
                        "{}  {:24} {:4} {:9}  partial: {}/{} experiments",
                        &key.0[..12],
                        m.workload,
                        m.isa,
                        m.category.name(),
                        covered,
                        total
                    );
                }
            }
        }
    }
    if flags.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::Value::Array(docs)).unwrap()
        );
    } else if keys.is_empty() {
        println!("no studies under {}", flags.store);
    }
    Ok(())
}

/// `vulfi results merge <SRC>... --store DST`: fold shard logs from other
/// stores (e.g. per-machine result dirs) into one, skipping shards whose
/// experiments the destination already covers.
fn results_merge(flags: &Flags) -> Result<(), String> {
    let srcs = &flags.positional[1..];
    if srcs.is_empty() {
        return Err(format!(
            "results merge needs source store dirs\n{}",
            usage()
        ));
    }
    let dst = vulfi_orch::Store::open(&flags.store).map_err(|e| e.to_string())?;
    let mut studies = 0usize;
    let mut appended = 0usize;
    for src in srcs {
        let src_store = vulfi_orch::Store::open(src).map_err(|e| e.to_string())?;
        for key in src_store.studies().map_err(|e| e.to_string())? {
            let from = src_store.study(&key);
            let manifest = from.read_manifest().map_err(|e| e.to_string())?;
            let to = dst.study(&key);
            if !to.exists() {
                let mut m = manifest.clone();
                m.complete = false;
                to.write_manifest(&m).map_err(|e| e.to_string())?;
            }
            studies += 1;
            let mut have: std::collections::HashSet<(usize, usize)> = to
                .shards()
                .map_err(|e| e.to_string())?
                .iter()
                .flat_map(|r| (r.start..r.end).map(move |i| (r.campaign, i)))
                .collect();
            for rec in from.shards().map_err(|e| e.to_string())? {
                if (rec.start..rec.end).any(|i| !have.contains(&(rec.campaign, i))) {
                    to.append_shard(&rec).map_err(|e| e.to_string())?;
                    have.extend((rec.start..rec.end).map(|i| (rec.campaign, i)));
                    appended += 1;
                }
            }
            let shards = to.shards().map_err(|e| e.to_string())?;
            if vulfi_orch::merge(&manifest.cfg, manifest.category, &shards).is_some() {
                let mut m = to.read_manifest().map_err(|e| e.to_string())?;
                if !m.complete {
                    m.complete = true;
                    to.write_manifest(&m).map_err(|e| e.to_string())?;
                }
            }
        }
    }
    println!(
        "merged {studies} stud{} from {} store(s): {appended} new shard(s) into {}",
        if studies == 1 { "y" } else { "ies" },
        srcs.len(),
        flags.store
    );
    Ok(())
}

/// Build the `study` progress reporter.
///
/// - `--json`: one compact [`vulfi_orch::ProgressSnapshot`] JSON object
///   per line on stderr (stdout stays reserved for the final result
///   document). The runner guarantees the last line reports
///   `done == total` on a completed study.
/// - TTY stderr: a multi-line status block (progress plus metrics
///   folded in from the global registry), redrawn in place at most
///   ~4×/s and always for the final snapshot.
/// - otherwise: one plain status line per shard.
fn make_progress_reporter(json: bool) -> vulfi_orch::ProgressFn {
    use std::io::{IsTerminal as _, Write as _};
    if json {
        return Box::new(|s: &vulfi_orch::ProgressSnapshot| {
            if let Ok(line) = serde_json::to_string(s) {
                let mut err = std::io::stderr().lock();
                let _ = writeln!(err, "{line}");
            }
        });
    }
    let tty = std::io::stderr().is_terminal();
    // (time of last redraw, lines the last block occupied)
    let state = std::sync::Mutex::new((None::<std::time::Instant>, 0usize));
    Box::new(move |s: &vulfi_orch::ProgressSnapshot| {
        if !tty {
            eprintln!("{}", s.render_line());
            return;
        }
        let mut st = state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let finished = s.done >= s.total;
        let due =
            st.0.map(|t| t.elapsed() >= std::time::Duration::from_millis(250))
                .unwrap_or(true);
        if !due && !finished {
            return;
        }
        let block = render_status_block(s);
        let mut err = std::io::stderr().lock();
        if st.1 > 0 {
            // Redraw over the previous block.
            let _ = write!(err, "\x1b[{}A", st.1);
        }
        for line in &block {
            let _ = writeln!(err, "\r\x1b[2K{line}");
        }
        let _ = err.flush();
        *st = (Some(std::time::Instant::now()), block.len());
    })
}

/// Smallest histogram bucket bound covering the median observation
/// (`None` for the +Inf overflow bucket or an empty histogram).
fn median_bound(h: &vulfi_orch::metrics::HistogramSnapshot) -> Option<f64> {
    let total = h.count();
    if total == 0 {
        return None;
    }
    let mut seen = 0u64;
    for (i, c) in h.counts.iter().enumerate() {
        seen += c;
        if 2 * seen >= total {
            return h.bounds.get(i).copied();
        }
    }
    None
}

/// The multi-line TTY status: the classic progress line with the
/// metrics registry folded in underneath.
fn render_status_block(s: &vulfi_orch::ProgressSnapshot) -> Vec<String> {
    let m = vulfi_orch::metrics::global().snapshot();
    let lat = &m.append_latency_seconds;
    let appends = lat.count();
    let avg_ms = if appends > 0 {
        1e3 * lat.sum / appends as f64
    } else {
        0.0
    };
    let mut lines = vec![
        s.render_line(),
        format!(
            "  store: {} append(s), avg {avg_ms:.2} ms | {} retried | {} engine fault(s)",
            appends, m.store_retries, m.engine_faults
        ),
    ];
    let traced: u64 = m
        .propagation_insts
        .iter()
        .map(|c| c.histogram.count())
        .sum();
    if traced > 0 {
        let per: Vec<String> = m
            .propagation_insts
            .iter()
            .filter(|c| c.histogram.count() > 0)
            .map(|c| {
                let p50 = match median_bound(&c.histogram) {
                    Some(b) => format!("≤{}", vulfi_orch::humanize(b as u64)),
                    None => format!(
                        ">{}",
                        vulfi_orch::humanize(*c.histogram.bounds.last().unwrap_or(&0.0) as u64)
                    ),
                };
                format!("{} p50 {p50}", c.category)
            })
            .collect();
        lines.push(format!(
            "  trace: {traced} propagation sample(s) | {} insts",
            per.join(", ")
        ));
    }
    lines
}

/// Write a snapshot of the global metrics registry to `path`:
/// `.json` → JSON, anything else → Prometheus text exposition format.
fn write_metrics(path: &str) -> Result<(), String> {
    let snap = vulfi_orch::metrics::global().snapshot();
    let text = if path.ends_with(".json") {
        vulfi_orch::render_json(&snap).map_err(|e| e.to_string())?
    } else {
        vulfi_orch::render_prometheus(&snap)
    };
    fs::write(path, text).map_err(|e| format!("{path}: {e}"))
}

fn trace_root(flags: &Flags) -> String {
    flags
        .trace
        .clone()
        .unwrap_or_else(|| "results/trace".to_string())
}

/// `vulfi trace summarize`: roll up every study's trace shards into
/// per-category outcome counts and propagation percentiles, plus the
/// most SDC-prone static sites.
fn trace_summarize(flags: &Flags) -> Result<(), String> {
    let root = trace_root(flags);
    let store = vulfi_orch::TraceStore::open(&root).map_err(|e| e.to_string())?;
    let s = vulfi_orch::summarize(&store, flags.top).map_err(|e| e.to_string())?;
    if flags.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&s).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    if s.spans == 0 {
        println!("no trace spans under {root}");
        return Ok(());
    }
    println!(
        "{} stud{}, {} span(s), {} injected",
        s.studies,
        if s.studies == 1 { "y" } else { "ies" },
        s.spans,
        s.injected
    );
    for c in &s.categories {
        let prop = match &c.propagation {
            Some(p) => format!(
                "propagation p50 {} p90 {} p99 {} max {} insts ({} samples)",
                vulfi_orch::humanize(p.p50),
                vulfi_orch::humanize(p.p90),
                vulfi_orch::humanize(p.p99),
                vulfi_orch::humanize(p.max),
                p.samples
            ),
            None => "no propagation samples".to_string(),
        };
        println!(
            "  {:9}: {:6} spans | SDC {} Benign {} Crash {} | {}",
            c.category, c.spans, c.sdc, c.benign, c.crash, prop
        );
    }
    if !s.top_sdc_sites.is_empty() {
        println!("top SDC-prone sites:");
        for site in &s.top_sdc_sites {
            println!(
                "  site {:4} {:12} ({})  SDC {}/{}",
                site.site_id, site.opcode, site.workload, site.sdc, site.total
            );
        }
    }
    Ok(())
}

/// `vulfi trace fsck`: check every study's trace log; with `--repair`,
/// quarantine corrupt logs and salvage the intact shards.
fn trace_fsck(flags: &Flags) -> Result<(), String> {
    let root = trace_root(flags);
    let store = vulfi_orch::TraceStore::open(&root).map_err(|e| e.to_string())?;
    let report = store.fsck(flags.repair).map_err(|e| e.to_string())?;
    print_fsck_report(&report, flags, &root)?;
    if report.needs_repair() && !flags.repair {
        return Err(format!(
            "corrupt trace log(s) found under {root}; re-run with --repair to \
             quarantine them and salvage intact records (summaries then cover \
             the surviving spans)"
        ));
    }
    Ok(())
}

/// `vulfi trace export --chrome`: stitch the ops log and trace store
/// into the causal span tree (request → job → shard → experiment) and
/// emit Chrome trace-event JSON loadable in Perfetto or chrome://tracing.
fn trace_export(flags: &Flags) -> Result<(), String> {
    if !flags.chrome {
        return Err(
            "trace export currently supports only --chrome (Chrome trace-event JSON)".to_string(),
        );
    }
    let root = trace_root(flags);
    let traces = vulfi_orch::TraceStore::open(&root).map_err(|e| e.to_string())?;
    // Prefer the ops log: it carries real wall-clock causality. A store
    // written by local `vulfi study --trace` has no ops log, so fall
    // back to a synthetic timeline laid out from the trace shards alone.
    let ops_events = vulfi_orch::OpsLog::open(&flags.store)
        .and_then(|ops| ops.events())
        .unwrap_or_default();
    let spans = if ops_events.is_empty() {
        vulfi_orch::spans_from_traces(&traces).map_err(|e| e.to_string())?
    } else {
        vulfi_orch::spans_from_ops(&ops_events, Some(&traces)).map_err(|e| e.to_string())?
    };
    if spans.is_empty() {
        return Err(format!(
            "nothing to export: no ops events under {} and no trace spans under {root}",
            flags.store
        ));
    }
    let text = vulfi_orch::render_chrome(&spans).map_err(|e| e.to_string())?;
    // Self-check: parse our own output and prove the layer nesting
    // before anyone loads it into a viewer.
    let counts = vulfi_orch::validate_chrome(&text)
        .map_err(|e| format!("internal error: export failed self-validation: {e}"))?;
    match &flags.out {
        Some(out) => {
            fs::write(out, &text).map_err(|e| format!("{out}: {e}"))?;
            eprintln!("wrote {out}");
        }
        None => println!("{text}"),
    }
    eprintln!(
        "chrome export: {} request, {} job, {} shard, {} experiment span(s)",
        counts.request, counts.job, counts.shard, counts.experiment
    );
    Ok(())
}

/// `vulfi profile --hotspots`: the self-profiler's site table — opcodes
/// ranked by dynamic count with batched wall time attributed per static
/// site. `-o` additionally writes the folded-stack (flamegraph) text.
fn print_hotspots(hot: &vexec::HotProfile, flags: &Flags) -> Result<(), String> {
    let total = hot.total().max(1);
    let wall = hot.wall_ns().max(1);
    println!("hotspots (dynamic count × attributed wall time):");
    println!(
        "  {:16} {:>12} {:>7} {:>10} {:>7} {:>6}",
        "opcode", "count", "%count", "time(ms)", "%time", "sites"
    );
    for h in hot.hotspots().into_iter().take(flags.top) {
        println!(
            "  {:16} {:>12} {:>6.1}% {:>10.3} {:>6.1}% {:>6}",
            h.opcode,
            h.count,
            100.0 * h.count as f64 / total as f64,
            h.wall_ns as f64 / 1e6,
            100.0 * h.wall_ns as f64 / wall as f64,
            h.sites
        );
    }
    println!("hottest sites:");
    for s in hot.sites().into_iter().take(flags.top) {
        println!(
            "  {:>24} {:12} {:>12} {:>9.3}ms",
            format!("{}/{}", s.func, s.loc),
            s.opcode,
            s.count,
            s.wall_ns as f64 / 1e6
        );
    }
    if let Some(out) = &flags.out {
        fs::write(out, hot.folded()).map_err(|e| format!("{out}: {e}"))?;
        eprintln!("wrote folded stacks to {out}");
    }
    Ok(())
}

/// `vulfi events tail`: the most recent operational events (`--top N`,
/// default 10), one line each, oldest of them first.
fn events_tail(flags: &Flags) -> Result<(), String> {
    let ops = vulfi_orch::OpsLog::open(&flags.store).map_err(|e| e.to_string())?;
    let events = ops.tail(flags.top).map_err(|e| e.to_string())?;
    if flags.json {
        let docs: Vec<serde_json::Value> = events
            .iter()
            .map(|ev| serde_json::to_value(ev).unwrap_or(serde_json::Value::Null))
            .collect();
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::Value::Array(docs)).unwrap()
        );
        return Ok(());
    }
    if events.is_empty() {
        println!("no operational events under {}", flags.store);
        return Ok(());
    }
    for ev in &events {
        println!("{}", ev.render_line());
    }
    Ok(())
}

/// `vulfi events summarize`: fold the ops log into per-job lifecycles
/// (submit → lease → shards → merge), reconstructed from the log alone.
fn events_summarize(flags: &Flags) -> Result<(), String> {
    let ops = vulfi_orch::OpsLog::open(&flags.store).map_err(|e| e.to_string())?;
    let s = ops.summarize().map_err(|e| e.to_string())?;
    if flags.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::to_value(&s).map_err(|e| e.to_string())?)
                .unwrap()
        );
        return Ok(());
    }
    if s.events == 0 {
        println!("no operational events under {}", flags.store);
        return Ok(());
    }
    println!(
        "{} event(s), {} job(s), {} fsck action(s), worker(s): {}",
        s.events,
        s.jobs.len(),
        s.fsck_actions,
        if s.workers().is_empty() {
            "none".to_string()
        } else {
            s.workers().join(", ")
        }
    );
    for j in &s.jobs {
        println!("{}", j.render());
    }
    Ok(())
}

/// `vulfi events fsck`: integrity-check the ops log; with `--repair`,
/// quarantine a corrupt log and salvage the intact events.
fn events_fsck(flags: &Flags) -> Result<(), String> {
    let ops = vulfi_orch::OpsLog::open(&flags.store).map_err(|e| e.to_string())?;
    let study = ops.fsck(flags.repair).map_err(|e| e.to_string())?;
    let report = vulfi_orch::FsckReport {
        studies: vec![study],
    };
    print_fsck_report(&report, flags, &flags.store)?;
    if report.needs_repair() && !flags.repair {
        return Err(format!(
            "corrupt ops log under {}; re-run with --repair to quarantine it \
             and salvage intact events",
            flags.store
        ));
    }
    Ok(())
}

/// Load and parse the `--rules` file shared by the alerts subcommands
/// and `vulfi serve`.
fn load_alert_rules(flags: &Flags) -> Result<Vec<vulfi_orch::AlertRule>, String> {
    let path = flags
        .rules
        .as_deref()
        .ok_or("alerts requires --rules FILE (TOML or JSON)")?;
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    vulfi_orch::parse_alert_rules(&text).map_err(|e| format!("{path}: {e}"))
}

/// `vulfi alerts check`: evaluate the rules once against the persisted
/// telemetry series and exit non-zero when any rule fires, so the
/// command slots straight into CI and cron.
fn alerts_check(flags: &Flags) -> Result<(), String> {
    let rules = load_alert_rules(flags)?;
    let log = vulfi_orch::TelemetryLog::open(&flags.store).map_err(|e| e.to_string())?;
    let window = log
        .tail(vulfi_orch::DEFAULT_RING_CAPACITY)
        .map_err(|e| e.to_string())?;
    let states: Vec<vulfi_orch::AlertState> = rules
        .iter()
        .map(|r| vulfi_orch::evaluate_rule(r, &window))
        .collect();
    if flags.json {
        println!(
            "{}",
            vulfi_orch::render_alerts_json(&states).map_err(|e| e.to_string())?
        );
    } else {
        if window.is_empty() {
            eprintln!(
                "note: no telemetry samples under {}/telemetry (run `vulfi serve` \
                 with sampling on to collect them)",
                flags.store
            );
        }
        print!("{}", vulfi_orch::render_alerts_text(&states));
    }
    let firing = states.iter().filter(|s| s.firing).count();
    if firing > 0 {
        return Err(format!(
            "{firing} alert(s) firing over {} sample(s) under {}/telemetry",
            window.len(),
            flags.store
        ));
    }
    Ok(())
}

/// `vulfi alerts watch`: poll the telemetry log and print every
/// firing/resolved transition until interrupted. This is the offline
/// twin of the daemon's sampler thread: same rules, same sustain
/// semantics, but driven from the persisted series.
fn alerts_watch(flags: &Flags) -> Result<(), String> {
    let mut engine = vulfi_orch::AlertEngine::new(load_alert_rules(flags)?);
    let log = vulfi_orch::TelemetryLog::open(&flags.store).map_err(|e| e.to_string())?;
    let interval = std::time::Duration::from_millis(flags.telemetry_interval_ms.max(100));
    eprintln!(
        "watching {} rule(s) over {}/telemetry every {}ms (ctrl-c to stop)",
        engine.rules().len(),
        flags.store,
        interval.as_millis()
    );
    loop {
        let window = log
            .tail(vulfi_orch::DEFAULT_RING_CAPACITY)
            .map_err(|e| e.to_string())?;
        let (_, transitions) = engine.evaluate(&window);
        for tr in &transitions {
            println!(
                "{} alert '{}' value {:.4}",
                if tr.firing { "FIRING  " } else { "resolved" },
                tr.rule,
                tr.value
            );
        }
        std::thread::sleep(interval);
    }
}

/// `vulfi alerts fsck`: integrity-check the telemetry log; with
/// `--repair`, quarantine a corrupt log and salvage the intact samples.
fn alerts_fsck(flags: &Flags) -> Result<(), String> {
    let log = vulfi_orch::TelemetryLog::open(&flags.store).map_err(|e| e.to_string())?;
    let study = log.fsck(flags.repair).map_err(|e| e.to_string())?;
    let report = vulfi_orch::FsckReport {
        studies: vec![study],
    };
    print_fsck_report(&report, flags, &flags.store)?;
    if report.needs_repair() && !flags.repair {
        return Err(format!(
            "corrupt telemetry log under {}; re-run with --repair to quarantine \
             it and salvage intact samples",
            flags.store
        ));
    }
    Ok(())
}

/// Shared fsck report renderer for the result store and the trace store.
fn print_fsck_report(
    report: &vulfi_orch::FsckReport,
    flags: &Flags,
    root: &str,
) -> Result<(), String> {
    if flags.json {
        let docs: Vec<serde_json::Value> = report
            .studies
            .iter()
            .map(|s| {
                serde_json::json!({
                    "key": s.key.0.clone(),
                    "lines": s.lines as u64,
                    "valid": s.valid as u64,
                    "torn_tail": s.torn_tail,
                    "corrupt": s.corrupt
                        .iter()
                        .map(|(line, reason)| serde_json::json!({
                            "line": *line as u64,
                            "reason": reason.clone(),
                        }))
                        .collect::<Vec<_>>(),
                    "quarantined": s.quarantined
                        .as_ref()
                        .map(|p| p.display().to_string())
                        .unwrap_or_default(),
                })
            })
            .collect();
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::Value::Array(docs)).unwrap()
        );
    } else {
        for s in &report.studies {
            let status = if s.needs_repair() {
                "CORRUPT"
            } else if s.torn_tail {
                "torn tail"
            } else {
                "ok"
            };
            println!(
                "{}  {:10}  {} record(s) valid of {} line(s)",
                &s.key.0[..12.min(s.key.0.len())],
                status,
                s.valid,
                s.lines
            );
            for (line, reason) in &s.corrupt {
                println!("    line {line}: {reason}");
            }
            if let Some(q) = &s.quarantined {
                println!("    quarantined to {}", q.display());
            }
        }
        if report.studies.is_empty() {
            println!("no studies under {root}");
        }
    }
    Ok(())
}

/// `vulfi store fsck`: check every study's shard log; with `--repair`,
/// quarantine corrupt logs and salvage the intact records.
fn store_fsck(flags: &Flags) -> Result<(), String> {
    let store = vulfi_orch::Store::open(&flags.store).map_err(|e| e.to_string())?;
    let report = store.fsck(flags.repair).map_err(|e| e.to_string())?;
    print_fsck_report(&report, flags, &flags.store)?;
    // Repairs are operational actions: record them in the ops event
    // stream so `vulfi events summarize` accounts for them.
    if flags.repair {
        let quarantined: Vec<String> = report
            .studies
            .iter()
            .filter(|s| s.quarantined.is_some())
            .map(|s| s.key.0.clone())
            .collect();
        if !quarantined.is_empty() {
            if let Ok(ops) = vulfi_orch::OpsLog::open(&flags.store) {
                let _ = ops.append(vulfi_orch::OpsEvent::new(vulfi_orch::OpsKind::Fsck).detail(
                    format!(
                        "store fsck quarantined {} shard log(s): {}",
                        quarantined.len(),
                        quarantined.join(", ")
                    ),
                ));
            }
        }
    }
    if report.needs_repair() && !flags.repair {
        return Err(format!(
            "corrupt shard log(s) found under {}; re-run with --repair to \
             quarantine them and salvage intact records, then resume the \
             affected studies",
            flags.store
        ));
    }
    Ok(())
}

/// `vulfi report diff <A> <B>`: compare two stores cell by cell with
/// Wilson intervals and a two-proportion z-test.
fn report_diff(flags: &Flags) -> Result<(), String> {
    let (Some(a), Some(b)) = (flags.positional.get(1), flags.positional.get(2)) else {
        return Err(format!("report diff needs two store dirs\n{}", usage()));
    };
    let store_a = vulfi_orch::Store::open(a).map_err(|e| e.to_string())?;
    let store_b = vulfi_orch::Store::open(b).map_err(|e| e.to_string())?;
    let d = vulfi_orch::diff_stores(&store_a, &store_b).map_err(|e| e.to_string())?;
    if flags.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&d).map_err(|e| e.to_string())?
        );
    } else if d.cells.is_empty() && d.only_a.is_empty() && d.only_b.is_empty() {
        println!("no comparable studies between {a} and {b}");
    } else {
        print!("{}", vulfi_orch::render_diff_text(&d));
    }
    Ok(())
}

/// `vulfi report heatmap`: site × lane × bit SDC density from the trace
/// store.
fn report_heatmap(flags: &Flags) -> Result<(), String> {
    let root = trace_root(flags);
    let store = vulfi_orch::TraceStore::open(&root).map_err(|e| e.to_string())?;
    let maps = vulfi_orch::heatmaps_filtered(&store, flags.top, flags.model.as_deref())
        .map_err(|e| e.to_string())?;
    if flags.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&maps).map_err(|e| e.to_string())?
        );
    } else {
        print!("{}", vulfi_orch::render_heatmap_text(&maps));
    }
    Ok(())
}

fn parse_isa_name(s: &str) -> Option<VectorIsa> {
    match s {
        "avx" => Some(VectorIsa::Avx),
        "sse" => Some(VectorIsa::Sse4),
        _ => None,
    }
}

/// Profile the golden run of every (workload, ISA) the store has studied.
/// Unknown workload names (e.g. detector-wrapped variants) are skipped.
fn occupancy_profiles(
    store: &vulfi_orch::Store,
) -> Result<Vec<vulfi_orch::OccupancyProfile>, String> {
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::new();
    for key in store.studies().map_err(|e| e.to_string())? {
        let m = store
            .study(&key)
            .read_manifest()
            .map_err(|e| e.to_string())?;
        if !seen.insert((m.workload.clone(), m.isa.clone())) {
            continue;
        }
        let Some(isa) = parse_isa_name(&m.isa) else {
            continue;
        };
        let Ok(w) = load_bench(&m.workload, isa) else {
            continue;
        };
        let mut interp = vexec::Interp::new(w.module());
        interp.enable_profiling();
        let Ok(setup) = w.setup(&mut interp.mem, 0) else {
            continue;
        };
        if interp
            .run(w.entry(), &setup.args, &mut vexec::NoHost)
            .is_err()
        {
            continue;
        }
        let mix = interp.take_mix().expect("profiling enabled");
        out.push(vulfi_orch::OccupancyProfile::from_mix(
            &m.workload,
            &m.isa,
            &mix,
        ));
    }
    Ok(out)
}

/// `vulfi report html`: one self-contained HTML file over the store, the
/// trace sidecars, an optional comparison store, and an optional metrics
/// snapshot.
fn report_html(flags: &Flags) -> Result<(), String> {
    let store = vulfi_orch::Store::open(&flags.store).map_err(|e| e.to_string())?;
    let trace = match &flags.trace {
        Some(root) => Some(vulfi_orch::TraceStore::open(root).map_err(|e| e.to_string())?),
        None => None,
    };
    let diff_store = match &flags.diff_store {
        Some(dir) => Some(vulfi_orch::Store::open(dir).map_err(|e| e.to_string())?),
        None => None,
    };
    let metrics: Vec<vulfi_orch::MetricRow> = match &flags.metrics_in {
        Some(path) => {
            let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            vulfi_orch::parse_prometheus(&text)?
                .into_iter()
                .map(|s| {
                    let labels: Vec<String> =
                        s.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
                    vulfi_orch::MetricRow {
                        name: if labels.is_empty() {
                            s.name
                        } else {
                            format!("{}{{{}}}", s.name, labels.join(","))
                        },
                        value: s.value,
                    }
                })
                .collect()
        }
        None => Vec::new(),
    };
    let occupancy = occupancy_profiles(&store)?;
    // Static-analysis join: the analyzer's predicted-benign fraction per
    // site, next to the SDC rate the trace heatmaps actually observed.
    // Workloads we can't rebuild (or that fail verification) are skipped
    // rather than failing the whole report.
    let analysis = match trace.as_ref() {
        Some(t) => {
            let maps = vulfi_orch::heatmaps(t, flags.top).map_err(|e| e.to_string())?;
            let mut reports = Vec::new();
            for m in &maps {
                let Ok(w) = load_bench(&m.workload, VectorIsa::Avx) else {
                    continue;
                };
                let Ok(rep) = vulfi::analyze_module(w.module(), w.entry()) else {
                    continue;
                };
                reports.push((m.workload.clone(), rep));
            }
            vulfi_orch::analysis_cells(&reports, &maps)
        }
        None => Vec::new(),
    };
    let html = vulfi_orch::html_from_stores(
        "vulfi resiliency report",
        Some(&store),
        trace.as_ref(),
        diff_store.as_ref(),
        &occupancy,
        &metrics,
        &analysis,
        None,
        flags.top,
    )
    .map_err(|e| e.to_string())?;
    let out = flags
        .out
        .clone()
        .unwrap_or_else(|| "results/report.html".to_string());
    if let Some(parent) = std::path::Path::new(&out).parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent).map_err(|e| format!("{}: {e}", parent.display()))?;
        }
    }
    fs::write(&out, &html).map_err(|e| format!("{out}: {e}"))?;
    eprintln!("wrote {out} ({} bytes)", html.len());
    Ok(())
}

/// Build one gauntlet cell's workload (detector-wrapped when the
/// scenario asks) and hand it to `f` — the same construction the study
/// and submit paths use, so a gauntlet cell's key matches an equivalent
/// `vulfi study` exactly.
fn with_cell_workload<T>(
    spec: &vulfi::StudySpec,
    f: impl FnOnce(&dyn Workload) -> Result<T, String>,
) -> Result<T, String> {
    let isa = parse_isa_name(&spec.isa).ok_or_else(|| format!("unknown isa '{}'", spec.isa))?;
    let scale = if spec.scale == "paper" {
        vbench::Scale::Paper
    } else {
        vbench::Scale::Test
    };
    let w = vbench::study_benchmark(&spec.bench, isa, scale)
        .or_else(|| vbench::micro_benchmark(&spec.bench, isa, scale))
        .ok_or_else(|| format!("unknown benchmark '{}' (see `vulfi list`)", spec.bench))?;
    if spec.detectors {
        let wd = detectors::WithDetectors::new(&w, detectors::DetectorConfig::default())
            .map_err(|e| e.to_string())?;
        f(&wd)
    } else {
        f(&w)
    }
}

/// Read the scenario file named by the subcommand's positional argument.
fn load_scenario(flags: &Flags) -> Result<vulfi_orch::Scenario, String> {
    let path = flags
        .positional
        .get(1)
        .ok_or("gauntlet needs a scenario file (TOML or JSON)")?;
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    vulfi_orch::parse_scenario(&text).map_err(|e| format!("{path}: {e}"))
}

/// `vulfi gauntlet run`: expand the scenario matrix, execute every cell
/// as a persistent study (reruns are cache hits; a killed gauntlet
/// resumes with `--resume`), and judge the invariants. Exits non-zero
/// on any breach.
fn gauntlet_run(flags: &Flags) -> Result<(), String> {
    let scenario = load_scenario(flags)?;
    if let Some(j) = flags.jobs {
        vulfi_orch::set_jobs(j);
    }
    let store = vulfi_orch::Store::open(&flags.store).map_err(|e| e.to_string())?;
    vulfi::set_strict(flags.strict);
    let cells = scenario.expand();
    let mut verdicts = Vec::new();
    for (i, spec) in cells.iter().enumerate() {
        if !flags.json {
            eprintln!(
                "[{}/{}] {} [{}] {} {}",
                i + 1,
                cells.len(),
                spec.bench,
                spec.isa,
                spec.category,
                spec.model
            );
        }
        let cell = with_cell_workload(spec, |w| {
            let category = spec.site_category()?;
            let cfg = spec.study_config();
            let mut prog = vulfi::prepare(w, category).map_err(|e| e.to_string())?;
            prog.model = cfg.model;
            apply_limits(&mut prog, flags);
            let key = vulfi_orch::study_key(&prog, w.name(), &spec.isa, &cfg);
            let study = store.study(&key);
            if study.exists() && !flags.resume {
                let done = study.shards().map_err(|e| e.to_string())?;
                let plan = vulfi_orch::plan_shards(&cfg, spec.shard_size);
                let pending = vulfi_orch::missing_jobs(&plan, &done, &cfg).len();
                if pending > 0 && pending < plan.len() {
                    return Err(format!(
                        "cell {key} has partial results ({}/{} shards stored); \
                         pass --resume to execute only the missing shards, or remove {}",
                        plan.len() - pending,
                        plan.len(),
                        study.dir().display()
                    ));
                }
            }
            let out = vulfi_orch::run_study_persistent(
                &prog,
                w,
                w.name(),
                &spec.isa,
                &cfg,
                &store,
                vulfi_orch::RunOptions {
                    shard_size: spec.shard_size,
                    max_shards: None,
                    progress: None,
                    trace: flags.trace.as_ref().map(std::path::PathBuf::from),
                },
            )
            .map_err(|e| e.to_string())?;
            let r = out
                .result
                .ok_or_else(|| "cell incomplete after run (store corrupted?)".to_string())?;
            // `prune = "verify"` cells run unpruned; cross-validate the
            // analyzer's predictions against the stored records so the
            // prediction_soundness invariant has data to judge.
            let soundness = if scenario.prune == "verify" {
                let done = store.study(&out.key).shards().map_err(|e| e.to_string())?;
                Some(vulfi_orch::verify_soundness(w, &done).map_err(|e| e.to_string())?)
            } else {
                None
            };
            Ok((out.key, r, soundness))
        })?;
        let (key, result, soundness) = cell;
        verdicts.push(vulfi_orch::cell_verdict(
            spec,
            &key.0,
            &result,
            &scenario.invariants,
            soundness.as_ref(),
        ));
    }
    let report = vulfi_orch::GauntletReport {
        scenario: scenario.name.clone(),
        cells: verdicts,
    };
    if flags.json {
        println!(
            "{}",
            vulfi_orch::render_verdicts_json(&report).map_err(|e| e.to_string())?
        );
    } else {
        print!("{}", vulfi_orch::render_verdicts(&report));
    }
    report_engine_faults();
    if let Some(path) = &flags.metrics_out {
        write_metrics(path)?;
        eprintln!("wrote metrics snapshot to {path}");
    }
    if !report.passed() {
        return Err(format!(
            "gauntlet '{}': {} invariant breach(es)",
            scenario.name,
            report.breaches()
        ));
    }
    Ok(())
}

/// `vulfi gauntlet report`: judge an already-executed gauntlet from the
/// store (no execution) and render the verdicts into the HTML report.
fn gauntlet_report(flags: &Flags) -> Result<(), String> {
    let scenario = load_scenario(flags)?;
    let store = vulfi_orch::Store::open(&flags.store).map_err(|e| e.to_string())?;
    let mut verdicts = Vec::new();
    for spec in scenario.expand() {
        let cell = with_cell_workload(&spec, |w| {
            let category = spec.site_category()?;
            let cfg = spec.study_config();
            let mut prog = vulfi::prepare(w, category).map_err(|e| e.to_string())?;
            prog.model = cfg.model;
            let key = vulfi_orch::study_key(&prog, w.name(), &spec.isa, &cfg);
            let study = store.study(&key);
            let cell_name = format!(
                "{}/{}/{}/{}",
                spec.bench, spec.isa, spec.category, spec.model
            );
            if !study.exists() {
                return Err(format!(
                    "cell {cell_name} ({key}) not in store; run `vulfi gauntlet run` first"
                ));
            }
            let done = study.shards().map_err(|e| e.to_string())?;
            let r = vulfi_orch::merge(&cfg, category, &done).ok_or_else(|| {
                format!("cell {cell_name} ({key}) is partial; finish it with `vulfi gauntlet run --resume`")
            })?;
            let soundness = if scenario.prune == "verify" {
                Some(vulfi_orch::verify_soundness(w, &done).map_err(|e| e.to_string())?)
            } else {
                None
            };
            Ok((key, r, soundness))
        })?;
        let (key, result, soundness) = cell;
        verdicts.push(vulfi_orch::cell_verdict(
            &spec,
            &key.0,
            &result,
            &scenario.invariants,
            soundness.as_ref(),
        ));
    }
    let report = vulfi_orch::GauntletReport {
        scenario: scenario.name.clone(),
        cells: verdicts,
    };
    let html = vulfi_orch::html_from_stores(
        &format!("vulfi gauntlet: {}", scenario.name),
        Some(&store),
        None,
        None,
        &[],
        &[],
        &[],
        Some(&report),
        flags.top,
    )
    .map_err(|e| e.to_string())?;
    let out = flags
        .out
        .clone()
        .unwrap_or_else(|| "results/gauntlet.html".to_string());
    if let Some(parent) = std::path::Path::new(&out).parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent).map_err(|e| format!("{}: {e}", parent.display()))?;
        }
    }
    fs::write(&out, &html).map_err(|e| format!("{out}: {e}"))?;
    eprintln!("wrote {out} ({} bytes)", html.len());
    print!("{}", vulfi_orch::render_verdicts(&report));
    Ok(())
}

/// `vulfi bench`: bounded campaigns over the micro-benchmarks, reporting
/// throughput; `--record` writes the machine-readable `BENCH_report.json`.
fn bench_cmd(flags: &Flags) -> Result<(), String> {
    let names: Vec<String> = match &flags.bench {
        Some(n) => vec![n.clone()],
        None => vbench::MICRO_NAMES.iter().map(|n| n.to_string()).collect(),
    };
    let experiments = flags.experiments.unwrap_or(40);
    let mut docs = Vec::new();
    for name in &names {
        let w = load_bench(name, flags.isa)?;
        let prog = vulfi::prepare(&w, flags.category.unwrap_or(SiteCategory::PureData))
            .map_err(|e| e.to_string())?;
        let started = std::time::Instant::now();
        let c =
            vulfi::run_campaign(&prog, &w, experiments, flags.seed).map_err(|e| e.to_string())?;
        let wall_ns = started.elapsed().as_nanos() as u64;
        let wall_s = (wall_ns as f64 / 1e9).max(1e-9);
        let dyn_insts: u64 = c.experiments.iter().map(|e| e.golden_dyn_insts).sum();
        let exp_per_sec = experiments as f64 / wall_s;
        println!(
            "{:14} [{}]: {} experiments in {:.2}s — {:.0} exp/s, {:.1}M dyn-inst/s, SDC {:.1}%",
            name,
            isa_name(flags.isa),
            experiments,
            wall_s,
            exp_per_sec,
            dyn_insts as f64 / wall_s / 1e6,
            c.counts.sdc_rate()
        );
        // One profiled golden run per bench: the opcode-mix summary in
        // the recording is what lets the history tell *why* throughput
        // moved (instruction mix shift vs engine speed).
        let mix_doc = {
            let mut interp = vexec::Interp::new(w.module());
            interp.enable_profiling();
            let setup = w
                .setup(&mut interp.mem, 0)
                .map_err(|t| format!("setup failed: {t}"))?;
            interp
                .run(w.entry(), &setup.args, &mut vexec::NoHost)
                .map_err(|t| format!("golden run trapped: {t}"))?;
            let mix = interp.take_mix().expect("profiling enabled");
            let ops: Vec<serde_json::Value> = mix
                .hottest()
                .into_iter()
                .take(5)
                .map(|(op, n)| serde_json::json!({ "opcode": op, "count": n }))
                .collect();
            serde_json::json!({
                "golden_dyn_insts": mix.total,
                "vector_pct": mix.vector_pct(),
                "top_opcodes": serde_json::Value::Array(ops),
            })
        };
        docs.push(serde_json::json!({
            "name": name.clone(),
            "isa": isa_name(flags.isa),
            "experiments": experiments as u64,
            "wall_ns": wall_ns,
            "exp_per_sec": exp_per_sec,
            "dyn_insts": dyn_insts,
            "dyn_insts_per_sec": dyn_insts as f64 / wall_s,
            "sdc_rate": c.counts.sdc_rate(),
            "opcode_mix": mix_doc,
        }));
        // `--prune`: time the same experiment range with statically
        // discharged injections skipped, recorded as a separate bench
        // entry so the trajectory carries the pruned-vs-full pair. The
        // one-time analyzer/census setup is recorded but not counted in
        // exp/s — a real study amortizes it over every campaign.
        if flags.prune.is_some() {
            if flags.prune.as_deref() != Some("on") {
                return Err("bench supports only --prune / --prune=on".to_string());
            }
            let setup = std::time::Instant::now();
            let ctx = vulfi::build_prune_context(&prog, &w).map_err(|e| e.to_string())?;
            let setup_ns = setup.elapsed().as_nanos() as u64;
            let started = std::time::Instant::now();
            let exps =
                vulfi::run_experiment_range_pruned(&prog, &w, &ctx, flags.seed, 0..experiments)
                    .map_err(|e| e.to_string())?;
            let pruned_wall_ns = started.elapsed().as_nanos() as u64;
            let pruned_wall_s = (pruned_wall_ns as f64 / 1e9).max(1e-9);
            let mut counts = vulfi::OutcomeCounts::default();
            for e in &exps {
                counts.add(e);
            }
            let discharged = exps
                .iter()
                .filter(|e| e.injection.is_none() && e.dynamic_sites > 0)
                .count();
            let discharged_pct = 100.0 * discharged as f64 / experiments.max(1) as f64;
            let pruned_exp_per_sec = experiments as f64 / pruned_wall_s;
            println!(
                "{:14} [{}]: pruned {} experiments in {:.2}s — {:.0} exp/s ({:.1}% discharged, {:.1}x vs full)",
                format!("{name} [pruned]"),
                isa_name(flags.isa),
                experiments,
                pruned_wall_s,
                pruned_exp_per_sec,
                discharged_pct,
                pruned_exp_per_sec / exp_per_sec.max(1e-9),
            );
            docs.push(serde_json::json!({
                "name": format!("{name} [pruned]"),
                "isa": isa_name(flags.isa),
                "experiments": experiments as u64,
                "wall_ns": pruned_wall_ns,
                "exp_per_sec": pruned_exp_per_sec,
                "dyn_insts": exps.iter().map(|e| e.golden_dyn_insts).sum::<u64>(),
                "dyn_insts_per_sec": exps.iter().map(|e| e.golden_dyn_insts).sum::<u64>() as f64
                    / pruned_wall_s,
                "sdc_rate": counts.sdc_rate(),
                "prune": true,
                "static_discharged": discharged as u64,
                "static_discharged_pct": discharged_pct,
                "prune_setup_ns": setup_ns,
            }));
        }
    }
    report_engine_faults();
    if flags.record {
        let out = flags
            .out
            .clone()
            .unwrap_or_else(|| "BENCH_report.json".to_string());
        let doc = serde_json::json!({ "benches": serde_json::Value::Array(docs.clone()) });
        fs::write(&out, serde_json::to_string_pretty(&doc).unwrap())
            .map_err(|e| format!("{out}: {e}"))?;
        eprintln!("wrote {out}");
        // The snapshot report is overwritten every recording; the
        // history is cumulative — one JSONL line per recording, so the
        // perf trajectory is a trajectory.
        let hist = std::path::Path::new(&out).with_file_name("BENCH_history.jsonl");
        let unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let line = serde_json::json!({
            "unix_ms": unix_ms,
            "isa": isa_name(flags.isa),
            "experiments": experiments as u64,
            "seed": flags.seed,
            "benches": serde_json::Value::Array(docs.clone()),
        });
        use std::io::Write;
        let mut fh = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&hist)
            .map_err(|e| format!("{}: {e}", hist.display()))?;
        writeln!(fh, "{}", serde_json::to_string(&line).unwrap())
            .map_err(|e| format!("{}: {e}", hist.display()))?;
        eprintln!("appended recording to {}", hist.display());
    }
    if let Some(baseline) = &flags.check {
        check_bench_regression(baseline, &docs)?;
    }
    Ok(())
}

/// Throughput the CI gate compares: how many regressions matter more
/// than absolute speed, so a >30% drop in exp/s against the committed
/// baseline fails the run.
const BENCH_REGRESSION_TOLERANCE: f64 = 0.30;

/// `vulfi bench --check BASELINE`: compare this run's throughput against
/// a recorded `BENCH_report.json`, failing on any >30% regression.
/// Benches absent from the baseline are reported but never fail — adding
/// a benchmark must not break CI until the baseline is re-recorded.
fn check_bench_regression(path: &str, docs: &[serde_json::Value]) -> Result<(), String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let base: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;
    let base = base
        .get("benches")
        .and_then(|v| v.as_array())
        .ok_or_else(|| format!("{path}: no 'benches' array (not a bench report?)"))?;
    let field =
        |v: &serde_json::Value, k: &str| v.get(k).and_then(|x| x.as_str()).map(str::to_string);
    let mut regressions = Vec::new();
    for doc in docs {
        let (Some(name), Some(isa)) = (field(doc, "name"), field(doc, "isa")) else {
            continue;
        };
        let now = doc
            .get("exp_per_sec")
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0);
        let Some(was) = base
            .iter()
            .find(|b| {
                field(b, "name").as_deref() == Some(&name)
                    && field(b, "isa").as_deref() == Some(&isa)
            })
            .and_then(|b| b.get("exp_per_sec"))
            .and_then(|v| v.as_f64())
        else {
            println!("  check {name} [{isa}]: no baseline entry, skipped");
            continue;
        };
        let floor = was * (1.0 - BENCH_REGRESSION_TOLERANCE);
        let verdict = if now < floor { "REGRESSED" } else { "ok" };
        println!(
            "  check {name} [{isa}]: {now:.0} exp/s vs baseline {was:.0} (floor {floor:.0}) {verdict}"
        );
        if now < floor {
            regressions.push(format!(
                "{name} [{isa}]: {now:.0} exp/s < {floor:.0} (baseline {was:.0})"
            ));
        }
    }
    if regressions.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "bench throughput regressed >{:.0}% vs {path}:\n  {}",
            100.0 * BENCH_REGRESSION_TOLERANCE,
            regressions.join("\n  ")
        ))
    }
}

/// `vulfi bench trend`: read the cumulative `BENCH_history.jsonl` next
/// to the report path (`-o`, default `BENCH_report.json`) and print each
/// bench's exp/s trajectory — first → latest with deltas — flagging any
/// bench whose throughput declined monotonically over the last three
/// recordings. Unlike `bench --check` this runs nothing; it only reads
/// history, so it is cheap enough for every CI run.
/// True when exp/s fell across each of the last three recordings — a
/// sustained decline, not one noisy run.
fn monotone_regression(points: &[f64]) -> bool {
    points.len() >= 3 && points[points.len() - 3..].windows(2).all(|w| w[1] < w[0])
}

fn bench_trend(flags: &Flags) -> Result<(), String> {
    let out = flags
        .out
        .clone()
        .unwrap_or_else(|| "BENCH_report.json".to_string());
    let hist = std::path::Path::new(&out).with_file_name("BENCH_history.jsonl");
    let text = fs::read_to_string(&hist).map_err(|e| {
        format!(
            "{}: {e} (run `vulfi bench --record` to start a history)",
            hist.display()
        )
    })?;
    // (name, isa) → oldest-first exp/s trajectory, in file order — the
    // history is append-only so file order is recording order.
    let mut series: Vec<((String, String), Vec<f64>)> = Vec::new();
    let mut recordings = 0u64;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc: serde_json::Value = serde_json::from_str(line)
            .map_err(|e| format!("{} line {}: {e}", hist.display(), lineno + 1))?;
        recordings += 1;
        let benches = doc
            .get("benches")
            .and_then(|v| v.as_array())
            .unwrap_or_default();
        for b in benches {
            let (Some(name), Some(isa)) = (
                b.get("name").and_then(|v| v.as_str()),
                b.get("isa").and_then(|v| v.as_str()),
            ) else {
                continue;
            };
            if flags.bench.as_deref().is_some_and(|want| want != name) {
                continue;
            }
            let Some(eps) = b.get("exp_per_sec").and_then(|v| v.as_f64()) else {
                continue;
            };
            let key = (name.to_string(), isa.to_string());
            match series.iter_mut().find(|(k, _)| *k == key) {
                Some((_, v)) => v.push(eps),
                None => series.push((key, vec![eps])),
            }
        }
    }
    if series.is_empty() {
        return Err(format!(
            "{}: no bench entries{} in {recordings} recording(s)",
            hist.display(),
            flags
                .bench
                .as_deref()
                .map(|b| format!(" matching --bench {b}"))
                .unwrap_or_default()
        ));
    }
    let pct = |now: f64, was: f64| 100.0 * (now - was) / was.max(1e-9);
    let mut regressing: Vec<String> = Vec::new();
    let mut docs: Vec<serde_json::Value> = Vec::new();
    for ((name, isa), points) in &series {
        let n = points.len();
        let (first, latest) = (points[0], points[n - 1]);
        let prev = if n >= 2 { Some(points[n - 2]) } else { None };
        let monotone_down = monotone_regression(points);
        if monotone_down {
            regressing.push(format!("{name} [{isa}]"));
        }
        if flags.json {
            let opt = |v: Option<f64>| {
                v.map(serde_json::Value::from)
                    .unwrap_or(serde_json::Value::Null)
            };
            docs.push(serde_json::json!({
                "name": name.clone(),
                "isa": isa.clone(),
                "recordings": n as u64,
                "first_exp_per_sec": first,
                "prev_exp_per_sec": opt(prev),
                "latest_exp_per_sec": latest,
                "delta_pct_vs_prev": opt(prev.map(|p| pct(latest, p))),
                "delta_pct_overall": pct(latest, first),
                "monotone_regression": monotone_down,
            }));
        } else {
            let vs_prev = match prev {
                Some(p) => format!("{:+.1}% vs prev", pct(latest, p)),
                None => "only one recording".to_string(),
            };
            println!(
                "  {:22} [{}] {:>2} rec  {:>7.0} → {:>7.0} exp/s ({}, {:+.1}% overall){}",
                name,
                isa,
                n,
                first,
                latest,
                vs_prev,
                pct(latest, first),
                if monotone_down { "  REGRESSING" } else { "" }
            );
        }
    }
    if flags.json {
        let doc = serde_json::json!({
            "history": hist.display().to_string(),
            "recordings": recordings,
            "benches": serde_json::Value::Array(docs),
        });
        println!("{}", serde_json::to_string_pretty(&doc).unwrap());
    } else if regressing.is_empty() {
        println!("no monotone regressions over the last 3 recordings");
    } else {
        println!(
            "REGRESSING (exp/s fell across each of the last 3 recordings): {}",
            regressing.join(", ")
        );
    }
    Ok(())
}

/// `vulfi serve`: run the injection daemon until a signal or
/// `POST /shutdown` drains it.
fn serve_cmd(flags: &Flags) -> Result<(), String> {
    let cfg = vulfi_serve::ServeConfig {
        addr: flags.addr.clone(),
        store: std::path::PathBuf::from(&flags.store),
        workers: flags.workers,
        lease_ttl: std::time::Duration::from_millis(flags.lease_ttl_ms.max(1)),
        telemetry_interval: std::time::Duration::from_millis(flags.telemetry_interval_ms),
        alert_rules: flags.rules.clone().map(std::path::PathBuf::from),
    };
    vulfi_serve::install_shutdown_signals();
    let daemon = vulfi_serve::Daemon::bind(&cfg)?;
    let addr = daemon.local_addr()?;
    println!(
        "vulfi serve listening on {addr} ({} worker(s), store {}, lease TTL {}ms)",
        flags.workers, flags.store, flags.lease_ttl_ms
    );
    // Shell scripts discover ephemeral ports from the store, not stdout.
    eprintln!("address also written to {}/serve.addr", flags.store);
    daemon.run()
}

/// Build the wire spec from the same flags `vulfi study` takes.
fn spec_from_flags(flags: &Flags) -> Result<vulfi::StudySpec, String> {
    let spec = vulfi::StudySpec {
        bench: flags.bench.clone().ok_or("submit requires --bench")?,
        isa: isa_name(flags.isa).to_string(),
        category: flags
            .category
            .unwrap_or(SiteCategory::PureData)
            .name()
            .to_string(),
        scale: flags.scale.clone(),
        experiments: flags.experiments.unwrap_or(25),
        campaigns: flags.campaigns,
        seed: flags.seed,
        shard_size: flags.shard_size,
        detectors: flags.detectors,
        model: flags
            .model
            .clone()
            .unwrap_or_else(|| vulfi::FaultModel::default().name()),
        prune: match flags.prune.as_deref() {
            None => false,
            Some("on") => true,
            Some(other) => {
                return Err(format!(
                    "submit supports only --prune / --prune=on, not --prune={other} \
                     (run --prune=verify locally with `vulfi study`)"
                ))
            }
        },
    };
    spec.validate()?;
    Ok(spec)
}

/// `vulfi submit`: enqueue a study on a running daemon; with `--wait`,
/// poll it to completion and print the result.
fn submit_cmd(flags: &Flags) -> Result<(), String> {
    let spec = spec_from_flags(flags)?;
    let client = vulfi_serve::Client::new(flags.addr.clone());
    let body = serde_json::to_value(&spec).map_err(|e| e.to_string())?;
    let mut headers: Vec<(&str, &str)> = Vec::new();
    if let Some(t) = &flags.tenant {
        headers.push(("X-Vulfi-Tenant", t));
    }
    let (status, doc) = client.post("/studies", &body, &headers)?;
    if status != 202 {
        return Err(format!(
            "submit rejected ({status}): {}",
            vulfi_serve::Client::error_of(&doc)
        ));
    }
    let key = doc
        .get("key")
        .and_then(|v| v.as_str())
        .ok_or("daemon response has no key")?
        .to_string();
    let job = doc.get("job").and_then(|v| v.as_u64()).unwrap_or(0);
    if flags.json && !flags.wait {
        println!("{}", serde_json::to_string_pretty(&doc).unwrap());
        return Ok(());
    }
    println!("job {job} queued as study {key}");
    if flags.wait {
        let doc = poll_study(&client, &key)?;
        print_status_doc(&doc, flags.json);
    }
    Ok(())
}

/// Poll `GET /studies/:key` until the merged result appears or the job
/// fails, echoing progress to stderr.
fn poll_study(client: &vulfi_serve::Client, key: &str) -> Result<serde_json::Value, String> {
    let mut last_done = u64::MAX;
    loop {
        let (status, doc) = client.get(&format!("/studies/{key}"))?;
        if status != 200 {
            return Err(format!(
                "status poll failed ({status}): {}",
                vulfi_serve::Client::error_of(&doc)
            ));
        }
        if doc.get("state").and_then(|v| v.as_str()) == Some("failed") {
            let reason = doc
                .get("job")
                .and_then(|j| j.get("error"))
                .and_then(|v| v.as_str())
                .unwrap_or("unknown reason");
            return Err(format!("study {key} failed: {reason}"));
        }
        if doc.get("result").is_some() {
            return Ok(doc);
        }
        if let Some(p) = doc.get("progress") {
            let done = p.get("done").and_then(|v| v.as_u64()).unwrap_or(0);
            if done != last_done {
                last_done = done;
                let total = p.get("total").and_then(|v| v.as_u64()).unwrap_or(0);
                let eta = p
                    .get("eta_secs")
                    .and_then(|v| v.as_f64())
                    .unwrap_or(f64::INFINITY);
                eprintln!(
                    "[{done:>6}/{total}] ETA {}",
                    if eta.is_finite() {
                        format!("{eta:.1}s")
                    } else {
                        "?".to_string()
                    }
                );
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(150));
    }
}

/// Render a status document for humans (or verbatim with `--json`).
fn print_status_doc(doc: &serde_json::Value, json: bool) {
    if json {
        println!("{}", serde_json::to_string_pretty(doc).unwrap());
        return;
    }
    let sget = |k: &str| {
        doc.get(k)
            .and_then(|v| v.as_str())
            .unwrap_or("?")
            .to_string()
    };
    let uget = |k: &str| doc.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
    println!(
        "study {} — {} [{}] {} — {} ({}/{} experiments)",
        sget("key"),
        sget("workload"),
        sget("isa"),
        sget("category"),
        sget("state"),
        uget("covered"),
        uget("total")
    );
    if let Some(c) = doc.get("counts") {
        let g = |k: &str| c.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
        println!(
            "counts: SDC {} Benign {} Crash {}",
            g("sdc"),
            g("benign"),
            g("crash")
        );
    }
    if let Some(r) = doc.get("result") {
        println!(
            "SDC {:.1}% ± {:.1} over {} campaigns ({})",
            r.get("mean_sdc").and_then(|v| v.as_f64()).unwrap_or(0.0),
            r.get("margin_95").and_then(|v| v.as_f64()).unwrap_or(0.0),
            r.get("campaigns").and_then(|v| v.as_u64()).unwrap_or(0),
            if r.get("converged")
                .and_then(|v| v.as_bool())
                .unwrap_or(false)
            {
                "converged"
            } else {
                "not converged"
            }
        );
    }
}

/// `vulfi status [KEY]`: one study's status (or its analytics report
/// with `--report`), or the whole job table without a key.
fn status_cmd(flags: &Flags) -> Result<(), String> {
    let client = vulfi_serve::Client::new(flags.addr.clone());
    match flags.positional.first() {
        Some(key) if flags.report => {
            let (status, doc) = client.get(&format!("/studies/{key}/report"))?;
            if status != 200 {
                return Err(format!(
                    "report unavailable ({status}): {}",
                    vulfi_serve::Client::error_of(&doc)
                ));
            }
            println!("{}", serde_json::to_string_pretty(&doc).unwrap());
            Ok(())
        }
        Some(key) => {
            let (status, doc) = client.get(&format!("/studies/{key}"))?;
            if status != 200 {
                return Err(format!(
                    "status unavailable ({status}): {}",
                    vulfi_serve::Client::error_of(&doc)
                ));
            }
            print_status_doc(&doc, flags.json);
            Ok(())
        }
        None => {
            let (status, doc) = client.get("/jobs")?;
            if status != 200 {
                return Err(format!("jobs unavailable ({status})"));
            }
            if flags.json {
                println!("{}", serde_json::to_string_pretty(&doc).unwrap());
                return Ok(());
            }
            let jobs = doc.get("jobs").and_then(|v| v.as_array()).unwrap_or(&[]);
            if jobs.is_empty() {
                println!("no jobs on {}", flags.addr);
            }
            for j in jobs {
                let s = |k: &str| j.get(k).and_then(|v| v.as_str()).unwrap_or("-").to_string();
                println!(
                    "job {:>3}  {:9}  {}  {} [{}] {}  tenant {}",
                    j.get("id").and_then(|v| v.as_u64()).unwrap_or(0),
                    s("state"),
                    s("key"),
                    s("bench"),
                    s("isa"),
                    s("category"),
                    s("tenant"),
                );
            }
            Ok(())
        }
    }
}

/// `vulfi shutdown`: ask a running daemon to drain gracefully.
fn shutdown_cmd(flags: &Flags) -> Result<(), String> {
    let client = vulfi_serve::Client::new(flags.addr.clone());
    let (status, doc) = client.post("/shutdown", &serde_json::json!({}), &[])?;
    if status != 200 {
        return Err(format!(
            "shutdown failed ({status}): {}",
            vulfi_serve::Client::error_of(&doc)
        ));
    }
    println!("shutdown requested on {}", flags.addr);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    fn write_temp(name: &str, content: &str) -> String {
        let path = std::env::temp_dir().join(format!("vulfi_cli_test_{name}"));
        fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    const KERNEL: &str = r#"
export void scale(uniform float a[], uniform int n, uniform float s) {
    foreach (i = 0 ... n) {
        a[i] = a[i] * s;
    }
}
"#;

    #[test]
    fn flags_parse() {
        let f = parse_flags(&s(&[
            "input.spmd",
            "--isa",
            "sse",
            "--category",
            "addr",
            "--seed",
            "9",
        ]))
        .unwrap();
        assert_eq!(f.isa, VectorIsa::Sse4);
        assert_eq!(f.category, Some(SiteCategory::Address));
        assert_eq!(f.seed, 9);
        assert_eq!(f.positional, vec!["input.spmd".to_string()]);
        assert!(parse_flags(&s(&["--isa", "mips"])).is_err());
        assert!(parse_flags(&s(&["--category", "weird"])).is_err());
        assert!(parse_flags(&s(&["--nope"])).is_err());
    }

    #[test]
    fn compile_and_sites_commands() {
        let path = write_temp("scale.spmd", KERNEL);
        run(&s(&["compile", &path])).unwrap();
        run(&s(&["sites", &path, "--isa", "avx"])).unwrap();
        // Output-to-file path.
        let out = std::env::temp_dir().join("vulfi_cli_test_out.vir");
        run(&s(&["compile", &path, "-o", out.to_str().unwrap()])).unwrap();
        let text = fs::read_to_string(&out).unwrap();
        assert!(text.contains("define void @scale"));
        // The emitted .vir file loads back.
        run(&s(&["sites", out.to_str().unwrap()])).unwrap();
    }

    #[test]
    fn instrument_and_detect_commands() {
        let path = write_temp("scale2.spmd", KERNEL);
        let out = std::env::temp_dir().join("vulfi_cli_test_instr.vir");
        run(&s(&[
            "instrument",
            &path,
            "--category",
            "control",
            "-o",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(fs::read_to_string(&out).unwrap().contains("@vulfi.inject"));
        let out2 = std::env::temp_dir().join("vulfi_cli_test_det.vir");
        run(&s(&[
            "detect",
            &path,
            "--uniform",
            "-o",
            out2.to_str().unwrap(),
        ]))
        .unwrap();
        let text = fs::read_to_string(&out2).unwrap();
        assert!(text.contains("@vulfi.check.foreach"));
        assert!(text.contains("@vulfi.check.uniform"));
    }

    #[test]
    fn campaign_profile_and_list_commands() {
        run(&s(&["list"])).unwrap();
        run(&s(&[
            "campaign",
            "--bench",
            "vector sum",
            "--category",
            "control",
            "--experiments",
            "20",
            "--detectors",
        ]))
        .unwrap();
        run(&s(&["profile", "--bench", "Blackscholes", "--isa", "sse"])).unwrap();
        assert!(run(&s(&["campaign", "--bench", "NoSuch"])).is_err());
        assert!(run(&s(&["bogus-subcommand"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn unknown_flag_error_includes_usage() {
        let e = parse_flags(&s(&["--definitely-not-a-flag"])).unwrap_err();
        assert!(e.contains("usage:"), "{e}");
        assert!(e.contains("vulfi study"), "{e}");
    }

    #[test]
    fn unknown_command_suggests_the_closest_one() {
        // The canonical typo this guards against: `vulfi serv`.
        let e = run(&s(&["serv"])).unwrap_err();
        assert!(e.contains("unknown command 'serv'"), "{e}");
        assert!(e.contains("did you mean 'serve'?"), "{e}");
        assert!(e.contains("usage:"), "{e}");

        let e = run(&s(&["stduy"])).unwrap_err();
        assert!(e.contains("did you mean 'study'?"), "{e}");

        // Nothing close: no bogus suggestion, still an error with usage.
        let e = run(&s(&["frobnicate"])).unwrap_err();
        assert!(!e.contains("did you mean"), "{e}");
        assert!(e.contains("usage:"), "{e}");
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("serve", "serve"), 0);
        assert_eq!(edit_distance("serv", "serve"), 1);
        assert_eq!(edit_distance("sreve", "serve"), 2);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(suggest_command("xyzzy"), None);
        assert_eq!(suggest_command("submti"), Some("submit"));
    }

    #[test]
    fn events_command_is_suggested_and_usage_documents_it() {
        assert_eq!(suggest_command("event"), Some("events"));
        let e = run(&s(&["evnets"])).unwrap_err();
        assert!(e.contains("did you mean 'events'?"), "{e}");
        // A bare `events` needs a subcommand and must say which exist.
        let e = run(&s(&["events"])).unwrap_err();
        assert!(e.contains("tail"), "{e}");
        assert!(e.contains("summarize"), "{e}");
        assert!(e.contains("fsck"), "{e}");
        // Usage drift guard: every events subcommand is documented.
        let u = usage();
        assert!(u.contains("vulfi events tail"), "{u}");
        assert!(u.contains("vulfi events summarize"), "{u}");
        assert!(u.contains("vulfi events fsck"), "{u}");
        assert!(u.contains("--hotspots"), "{u}");
    }

    #[test]
    fn alerts_command_is_suggested_and_usage_documents_it() {
        assert_eq!(suggest_command("alert"), Some("alerts"));
        let e = run(&s(&["alrets"])).unwrap_err();
        assert!(e.contains("did you mean 'alerts'?"), "{e}");
        // A bare `alerts` needs a subcommand and must say which exist.
        let e = run(&s(&["alerts"])).unwrap_err();
        assert!(e.contains("check"), "{e}");
        assert!(e.contains("watch"), "{e}");
        assert!(e.contains("fsck"), "{e}");
        // `check` without --rules points at the missing flag.
        let e = run(&s(&["alerts", "check"])).unwrap_err();
        assert!(e.contains("--rules"), "{e}");
        // `trace` without a subcommand now advertises export too.
        let e = run(&s(&["trace"])).unwrap_err();
        assert!(e.contains("export"), "{e}");
        // `trace export` without --chrome explains the only format.
        let e = run(&s(&["trace", "export"])).unwrap_err();
        assert!(e.contains("--chrome"), "{e}");
        // Usage drift guard: the new subcommands and flags are documented.
        let u = usage();
        assert!(u.contains("vulfi alerts check"), "{u}");
        assert!(u.contains("vulfi alerts watch"), "{u}");
        assert!(u.contains("vulfi alerts fsck"), "{u}");
        assert!(u.contains("vulfi trace export --chrome"), "{u}");
        assert!(u.contains("vulfi bench trend"), "{u}");
        assert!(u.contains("--rules FILE"), "{u}");
        assert!(u.contains("--telemetry-interval-ms"), "{u}");
    }

    #[test]
    fn telemetry_flags_parse() {
        let f = parse_flags(&s(&[
            "--rules",
            "alerts.toml",
            "--telemetry-interval-ms",
            "250",
            "--chrome",
        ]))
        .unwrap();
        assert_eq!(f.rules.as_deref(), Some("alerts.toml"));
        assert_eq!(f.telemetry_interval_ms, 250);
        assert!(f.chrome);
        let d = parse_flags(&[]).unwrap();
        assert_eq!(d.telemetry_interval_ms, 1_000);
        assert!(d.rules.is_none() && !d.chrome);
        assert!(parse_flags(&s(&["--telemetry-interval-ms", "fast"])).is_err());
    }

    #[test]
    fn monotone_regression_needs_three_strict_declines() {
        assert!(monotone_regression(&[300.0, 200.0, 100.0]));
        assert!(monotone_regression(&[999.0, 300.0, 200.0, 100.0]));
        // Recovery on the latest recording clears the flag.
        assert!(!monotone_regression(&[300.0, 200.0, 250.0]));
        // A flat pair is not a decline.
        assert!(!monotone_regression(&[300.0, 200.0, 200.0]));
        // Too little history to call it a trend.
        assert!(!monotone_regression(&[200.0, 100.0]));
        assert!(!monotone_regression(&[]));
    }

    #[test]
    fn bench_trend_reads_history_and_flags_monotone_regressions() {
        let dir = std::env::temp_dir().join(format!("vulfi_cli_trend_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let report = dir.join("BENCH_report.json");
        let hist = dir.join("BENCH_history.jsonl");
        let line = |eps: f64, other: f64| {
            format!(
                "{{\"unix_ms\":1,\"benches\":[\
                 {{\"name\":\"dot product\",\"isa\":\"avx\",\"exp_per_sec\":{eps}}},\
                 {{\"name\":\"vector sum\",\"isa\":\"avx\",\"exp_per_sec\":{other}}}]}}\n"
            )
        };
        // dot product decays monotonically; vector sum recovers.
        fs::write(
            &hist,
            format!(
                "{}{}{}",
                line(300.0, 100.0),
                line(200.0, 90.0),
                line(100.0, 120.0)
            ),
        )
        .unwrap();
        let f = parse_flags(&s(&["trend", "-o", report.to_str().unwrap()])).unwrap();
        bench_trend(&f).unwrap();
        let f = parse_flags(&s(&[
            "trend",
            "-o",
            report.to_str().unwrap(),
            "--bench",
            "no such bench",
        ]))
        .unwrap();
        assert!(bench_trend(&f).unwrap_err().contains("no bench entries"));
        // Missing history names the file and the bootstrap command.
        let empty = dir.join("empty");
        fs::create_dir_all(&empty).unwrap();
        let f = parse_flags(&s(&[
            "trend",
            "-o",
            empty.join("nope.json").to_str().unwrap(),
        ]))
        .unwrap();
        let e = bench_trend(&f).unwrap_err();
        assert!(e.contains("BENCH_history.jsonl"), "{e}");
        assert!(e.contains("bench --record"), "{e}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn hotspots_flag_parses() {
        let f = parse_flags(&s(&["--bench", "Blackscholes", "--hotspots", "--top", "3"])).unwrap();
        assert!(f.hotspots);
        assert_eq!(f.top, 3);
        assert!(!parse_flags(&s(&["--bench", "x"])).unwrap().hotspots);
    }

    #[test]
    fn serve_flags_parse() {
        let f = parse_flags(&s(&[
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "4",
            "--lease-ttl-ms",
            "500",
            "--tenant",
            "alice",
            "--scale",
            "paper",
            "--wait",
            "--report",
            "--check",
            "BENCH_report.json",
        ]))
        .unwrap();
        assert_eq!(f.addr, "127.0.0.1:0");
        assert_eq!(f.workers, 4);
        assert_eq!(f.lease_ttl_ms, 500);
        assert_eq!(f.tenant.as_deref(), Some("alice"));
        assert_eq!(f.scale, "paper");
        assert!(f.wait && f.report);
        assert_eq!(f.check.as_deref(), Some("BENCH_report.json"));
        assert!(parse_flags(&s(&["--workers", "zero"])).is_err());
    }

    #[test]
    fn submit_spec_mirrors_study_flags() {
        let f = parse_flags(&s(&[
            "--bench",
            "vector sum",
            "--isa",
            "sse",
            "--category",
            "control",
            "--experiments",
            "10",
            "--campaigns",
            "3",
            "--seed",
            "7",
            "--shard-size",
            "5",
            "--detectors",
        ]))
        .unwrap();
        let spec = spec_from_flags(&f).unwrap();
        assert_eq!(spec.bench, "vector sum");
        assert_eq!(spec.isa, "sse");
        assert_eq!(spec.category, "control");
        assert_eq!((spec.experiments, spec.campaigns, spec.seed), (10, 3, 7));
        assert_eq!(spec.shard_size, 5);
        assert!(spec.detectors);

        // Bad scale is caught client-side, before any network traffic.
        let mut f = f;
        f.scale = "huge".to_string();
        assert!(spec_from_flags(&f).is_err());
        f.scale = "test".to_string();
        f.bench = None;
        assert!(spec_from_flags(&f).unwrap_err().contains("--bench"));
    }

    #[test]
    fn bench_check_gates_on_regression() {
        let baseline = write_temp(
            "bench_baseline.json",
            r#"{"benches": [
                {"name": "vector sum", "isa": "avx", "exp_per_sec": 1000.0},
                {"name": "dot product", "isa": "avx", "exp_per_sec": 500.0}
            ]}"#,
        );
        let docs = |sum: f64, dot: f64| {
            vec![
                serde_json::json!({"name": "vector sum", "isa": "avx", "exp_per_sec": sum}),
                serde_json::json!({"name": "dot product", "isa": "avx", "exp_per_sec": dot}),
            ]
        };
        // At or above the 70% floor: passes (faster is always fine).
        check_bench_regression(&baseline, &docs(701.0, 2000.0)).unwrap();
        // One bench below the floor: fails and names it.
        let e = check_bench_regression(&baseline, &docs(699.0, 500.0)).unwrap_err();
        assert!(e.contains("vector sum"), "{e}");
        assert!(e.contains("699"), "{e}");
        assert!(!e.contains("dot product ["), "{e}");
        // A bench with no baseline entry is skipped, not failed.
        check_bench_regression(
            &baseline,
            &[serde_json::json!({"name": "brand new", "isa": "avx", "exp_per_sec": 1.0})],
        )
        .unwrap();
        // Malformed baseline is a clear error.
        let bad = write_temp("bench_bad.json", r#"{"nope": true}"#);
        assert!(check_bench_regression(&bad, &docs(1.0, 1.0))
            .unwrap_err()
            .contains("benches"));
    }

    #[test]
    fn study_flags_parse() {
        let f = parse_flags(&s(&[
            "--bench",
            "vector sum",
            "--jobs",
            "2",
            "--shard-size",
            "5",
            "--store",
            "/tmp/x",
            "--resume",
            "--json",
            "--campaigns",
            "6",
        ]))
        .unwrap();
        assert_eq!(f.jobs, Some(2));
        assert_eq!(f.shard_size, 5);
        assert_eq!(f.store, "/tmp/x");
        assert!(f.resume && f.json);
        assert_eq!(f.campaigns, 6);
        assert!(parse_flags(&s(&["--jobs", "two"])).is_err());
    }

    #[test]
    fn containment_flags_parse() {
        let f = parse_flags(&s(&[
            "--strict",
            "--repair",
            "--wall-limit-ms",
            "250",
            "--mem-limit-mb",
            "64",
        ]))
        .unwrap();
        assert!(f.strict && f.repair);
        assert_eq!(f.wall_limit_ms, Some(250));
        assert_eq!(f.mem_limit_mb, Some(64));
        assert!(parse_flags(&s(&["--wall-limit-ms", "soon"])).is_err());
        assert!(parse_flags(&s(&["--mem-limit-mb"])).is_err());

        let mut prog_flags = parse_flags(&s(&["--mem-limit-mb", "2"])).unwrap();
        prog_flags.wall_limit_ms = Some(9);
        let w = vbench::micro_benchmark("vector sum", VectorIsa::Avx, vbench::Scale::Test).unwrap();
        let mut prog = vulfi::prepare(&w, SiteCategory::PureData).unwrap();
        apply_limits(&mut prog, &prog_flags);
        assert_eq!(prog.limits.wall_ms, 9);
        assert_eq!(prog.limits.mem_bytes, 2 << 20);
    }

    fn temp_store(tag: &str) -> String {
        let dir =
            std::env::temp_dir().join(format!("vulfi_cli_store_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.to_string_lossy().into_owned()
    }

    #[test]
    fn study_results_and_merge_commands() {
        let store = temp_store("study");
        let base = [
            "study",
            "--bench",
            "vector sum",
            "--experiments",
            "12",
            "--campaigns",
            "5",
            "--seed",
            "7",
            "--shard-size",
            "5",
            "--store",
            &store,
        ];
        run(&s(&base)).unwrap();
        // Re-run: fully cached, also fine with --json output.
        let mut cached: Vec<&str> = base.to_vec();
        cached.push("--json");
        run(&s(&cached)).unwrap();
        run(&s(&["results", "summary", "--store", &store])).unwrap();
        run(&s(&["results", "summary", "--store", &store, "--json"])).unwrap();
        // Merge into a fresh destination store carries the study over.
        let dst = temp_store("merged");
        run(&s(&["results", "merge", &store, "--store", &dst])).unwrap();
        run(&s(&["results", "summary", "--store", &dst])).unwrap();
        let merged_keys = vulfi_orch::Store::open(&dst).unwrap().studies().unwrap();
        assert_eq!(merged_keys.len(), 1);
        assert!(
            run(&s(&["results", "merge", "--store", &dst])).is_err(),
            "no sources"
        );
        assert!(run(&s(&["results", "bogus"])).is_err());
    }

    #[test]
    fn partial_study_requires_resume_flag() {
        let store_dir = temp_store("partial");
        // Simulate a killed run: execute only 1 shard through the orch API
        // with the exact configuration the CLI will derive.
        let w = vbench::micro_benchmark("vector sum", VectorIsa::Avx, vbench::Scale::Test).unwrap();
        let prog = vulfi::prepare(&w, SiteCategory::PureData).unwrap();
        let cfg = vulfi::StudyConfig {
            experiments_per_campaign: 12,
            max_campaigns: 5,
            seed: 7,
            ..vulfi::StudyConfig::default()
        };
        let store = vulfi_orch::Store::open(&store_dir).unwrap();
        vulfi_orch::run_study_persistent(
            &prog,
            &w,
            w.name(),
            "avx",
            &cfg,
            &store,
            vulfi_orch::RunOptions {
                shard_size: 5,
                max_shards: Some(1),
                progress: None,
                trace: None,
            },
        )
        .unwrap();

        let base = |extra: &[&str]| {
            let mut v = s(&[
                "study",
                "--bench",
                "vector sum",
                "--experiments",
                "12",
                "--campaigns",
                "5",
                "--seed",
                "7",
                "--shard-size",
                "5",
                "--store",
                &store_dir,
            ]);
            v.extend(extra.iter().map(|x| x.to_string()));
            v
        };
        let err = run(&base(&[])).unwrap_err();
        assert!(err.contains("--resume"), "{err}");
        run(&base(&["--resume"])).unwrap();
        // Now complete: running again without --resume is a cache hit.
        run(&base(&[])).unwrap();
    }

    #[test]
    fn store_fsck_detects_repairs_and_resumes() {
        let store_dir = temp_store("fsck");
        let base = [
            "study",
            "--bench",
            "vector sum",
            "--experiments",
            "12",
            "--campaigns",
            "5",
            "--seed",
            "11",
            "--shard-size",
            "5",
            "--store",
            &store_dir,
        ];
        run(&s(&base)).unwrap();

        // Empty-positional and unknown-subcommand paths.
        assert!(run(&s(&["store", "--store", &store_dir])).is_err());
        assert!(run(&s(&["store", "scrub", "--store", &store_dir])).is_err());

        // Clean store: fsck passes in both output modes.
        run(&s(&["store", "fsck", "--store", &store_dir])).unwrap();
        run(&s(&["store", "fsck", "--store", &store_dir, "--json"])).unwrap();

        // Flip one byte mid-file: summary fails loudly, fsck reports,
        // --repair quarantines, and the study resumes to completion.
        let keys = vulfi_orch::Store::open(&store_dir)
            .unwrap()
            .studies()
            .unwrap();
        let log = std::path::Path::new(&store_dir)
            .join(&keys[0].0)
            .join("shards.jsonl");
        let mut bytes = fs::read(&log).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        fs::write(&log, &bytes).unwrap();

        let err = run(&s(&["results", "summary", "--store", &store_dir])).unwrap_err();
        assert!(err.contains("fsck"), "{err}");
        let err = run(&s(&["store", "fsck", "--store", &store_dir])).unwrap_err();
        assert!(err.contains("--repair"), "{err}");
        run(&s(&["store", "fsck", "--store", &store_dir, "--repair"])).unwrap();
        assert!(std::path::Path::new(&store_dir)
            .join(&keys[0].0)
            .join("shards.quarantine")
            .join("shards.0.jsonl")
            .is_file());

        // The lost shards re-run under --resume and the study completes.
        let mut resume: Vec<&str> = base.to_vec();
        resume.push("--resume");
        run(&s(&resume)).unwrap();
        run(&s(&["store", "fsck", "--store", &store_dir])).unwrap();
        run(&s(&["results", "summary", "--store", &store_dir])).unwrap();
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert!(run(&s(&["compile", "/nonexistent/xyz.spmd"])).is_err());
        let bad = write_temp("bad.spmd", "export void f( {");
        assert!(run(&s(&["compile", &bad])).is_err());
        let badvir = write_temp("bad.vir", "define nonsense");
        assert!(run(&s(&["compile", &badvir])).is_err());
        let path = write_temp("scale3.spmd", KERNEL);
        assert!(
            run(&s(&["instrument", &path])).is_err(),
            "missing --category"
        );
        let e = run(&s(&["sites", &path, "--func", "missing"])).unwrap_err();
        assert!(
            e.contains("no function @missing") && e.contains("@scale"),
            "unknown --func must list what the module defines: {e}"
        );
    }

    #[test]
    fn report_and_bench_flags_parse() {
        let f = parse_flags(&s(&[
            "html",
            "--diff-store",
            "/tmp/b",
            "--metrics-in",
            "m.prom",
            "--record",
        ]))
        .unwrap();
        assert_eq!(f.diff_store.as_deref(), Some("/tmp/b"));
        assert_eq!(f.metrics_in.as_deref(), Some("m.prom"));
        assert!(f.record);
        assert!(parse_flags(&s(&["--diff-store"])).is_err());
        // Subcommand dispatch errors.
        assert!(run(&s(&["report"])).is_err());
        assert!(run(&s(&["report", "bogus"])).is_err());
        assert!(run(&s(&["report", "diff", "/tmp/only-one-store"])).is_err());
        assert!(run(&s(&["bench", "--bench", "NoSuchBench"])).is_err());
    }

    #[test]
    fn prune_flags_parse_all_forms() {
        // Bare `--prune` means on; other flags after it still parse.
        let f = parse_flags(&s(&["--prune", "--bench", "vector sum"])).unwrap();
        assert_eq!(f.prune.as_deref(), Some("on"));
        assert_eq!(f.bench.as_deref(), Some("vector sum"));
        // Mode as the next word, or glued on with `=`.
        let f = parse_flags(&s(&["--prune", "verify"])).unwrap();
        assert_eq!(f.prune.as_deref(), Some("verify"));
        let f = parse_flags(&s(&["--prune=on"])).unwrap();
        assert_eq!(f.prune.as_deref(), Some("on"));
        // "off" in either form is the same as not passing the flag.
        assert_eq!(parse_flags(&s(&["--prune", "off"])).unwrap().prune, None);
        assert_eq!(parse_flags(&s(&["--prune=off"])).unwrap().prune, None);
        let e = parse_flags(&s(&["--prune=sometimes"])).unwrap_err();
        assert!(e.contains("sometimes"), "{e}");

        // submit mirrors --prune into the spec but refuses verify: the
        // post-hoc soundness scan is a local-CLI affordance.
        let mut f = parse_flags(&s(&["--bench", "vector sum", "--prune"])).unwrap();
        assert!(spec_from_flags(&f).unwrap().prune);
        f.prune = Some("verify".to_string());
        let e = spec_from_flags(&f).unwrap_err();
        assert!(e.contains("verify"), "{e}");
    }

    #[test]
    fn sites_json_is_machine_readable() {
        let path = write_temp("sites_json.spmd", KERNEL);
        let out = std::env::temp_dir().join("vulfi_cli_test_sites.json");
        run(&s(&["sites", &path, "--json", "-o", out.to_str().unwrap()])).unwrap();
        let doc: serde_json::Value =
            serde_json::from_str(&fs::read_to_string(&out).unwrap()).unwrap();
        assert_eq!(
            doc.get("function").and_then(|v| v.as_str()),
            Some("scale"),
            "{doc:?}"
        );
        let sites = doc.get("sites").and_then(|v| v.as_array()).unwrap();
        assert!(!sites.is_empty());
        for site in sites {
            for field in [
                "id",
                "value",
                "opcode",
                "kind",
                "category",
                "address",
                "control",
                "masked",
                "mask_source",
                "vector",
                "lanes",
                "elem",
            ] {
                assert!(
                    site.get(field).is_some(),
                    "site missing '{field}': {site:?}"
                );
            }
        }
        // The kernel multiplies in vector lanes: at least one site must
        // say so, with a plausible lane count.
        assert!(sites.iter().any(|s| {
            s.get("vector").and_then(|v| v.as_bool()) == Some(true)
                && s.get("lanes").and_then(|v| v.as_u64()).unwrap_or(0) > 1
        }));
    }

    #[test]
    fn analyze_command_reports_and_verifies_first() {
        let path = write_temp("analyze.spmd", KERNEL);
        let out = std::env::temp_dir().join("vulfi_cli_test_analyze.txt");
        run(&s(&["analyze", &path, "-o", out.to_str().unwrap()])).unwrap();
        let text = fs::read_to_string(&out).unwrap();
        assert!(text.contains("@scale:"), "{text}");
        assert!(text.contains("provably benign"), "{text}");

        // JSON round-trips through the report type.
        let out = std::env::temp_dir().join("vulfi_cli_test_analyze.json");
        run(&s(&[
            "analyze",
            &path,
            "--json",
            "-o",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let rep: vulfi::VulnReport =
            serde_json::from_str(&fs::read_to_string(&out).unwrap()).unwrap();
        assert_eq!(rep.function, "scale");
        assert!(!rep.sites.is_empty());

        // Benchmarks work by name too.
        run(&s(&["analyze", "--bench", "vector sum"])).unwrap();
        assert!(run(&s(&["analyze"])).is_err(), "needs a file or --bench");

        // Ill-formed IR is rejected by the verifier before any analysis:
        // %y is used before its definition dominates the use.
        let bad = write_temp(
            "analyze_bad.vir",
            "define i32 @f(i32 %x) {\nentry:\n  %z = add i32 %y, 1\n  br label %later\n\
             later:\n  %y = add i32 %x, 1\n  ret i32 %z\n}\n",
        );
        let e = run(&s(&["analyze", &bad])).unwrap_err();
        assert!(
            e.contains("use of %y not dominated"),
            "verifier must reject the module with a clean error, got: {e}"
        );
    }

    #[test]
    fn lint_command_baseline_and_deny() {
        // The whole built-in suite is lint-clean — that's the committed
        // baseline ci.sh enforces.
        run(&s(&["lint", "--suite", "--deny"])).unwrap();

        // A deliberately dirty module: a stack slot stored but never
        // read (VL002), which --deny turns into a non-zero exit.
        let dirty = write_temp(
            "lint_dirty.vir",
            "define void @ds(i32 %x) {\nentry:\n  %p = alloca i32, i64 1\n\
             store i32 %x, ptr %p\n  ret void\n}\n",
        );
        let out = std::env::temp_dir().join("vulfi_cli_test_lint.json");
        run(&s(&["lint", &dirty, "--json", "-o", out.to_str().unwrap()])).unwrap();
        let docs: serde_json::Value =
            serde_json::from_str(&fs::read_to_string(&out).unwrap()).unwrap();
        let arr = docs.as_array().unwrap();
        assert_eq!(arr.len(), 1, "{docs:?}");
        assert_eq!(arr[0].get("id").and_then(|v| v.as_str()), Some("VL002"));
        let e = run(&s(&["lint", &dirty, "--deny"])).unwrap_err();
        assert!(e.contains("denied"), "{e}");
        assert!(run(&s(&["lint"])).is_err(), "needs a file or --suite");
    }

    #[test]
    fn study_prune_discharges_and_verify_cross_validates() {
        let store = temp_store("prune");
        let base = |mode: &str, store: &str| {
            let mut v = s(&[
                "study",
                "--bench",
                "vector sum",
                "--experiments",
                "20",
                "--campaigns",
                "5",
                "--seed",
                "3",
                "--shard-size",
                "10",
                "--store",
                store,
            ]);
            if !mode.is_empty() {
                v.push(mode.to_string());
            }
            v
        };
        // Pruned run completes; the store holds synthetic records for the
        // discharged experiments (injection None but dynamic sites seen).
        let mut args = base("--prune", &store);
        args.push("--json".to_string());
        run(&args).unwrap();
        let st = vulfi_orch::Store::open(&store).unwrap();
        let keys = st.studies().unwrap();
        assert_eq!(keys.len(), 1);
        let done = st.study(&keys[0]).shards().unwrap();
        let discharged = done
            .iter()
            .flat_map(|sh| &sh.experiments)
            .filter(|e| e.injection.is_none() && e.dynamic_sites > 0)
            .count();
        assert!(
            discharged > 0,
            "vector sum has provably-benign bits, some draws must hit them"
        );

        // Verify mode executes everything under the unpruned key and
        // cross-validates; any soundness violation would fail the run.
        let vstore = temp_store("prune_verify");
        run(&base("--prune=verify", &vstore)).unwrap();
        let st = vulfi_orch::Store::open(&vstore).unwrap();
        let vkeys = st.studies().unwrap();
        assert_eq!(vkeys.len(), 1);
        assert_ne!(
            vkeys[0], keys[0],
            "pruned and full runs must not share a key"
        );
        let vdone = st.study(&vkeys[0]).shards().unwrap();
        assert!(
            vdone
                .iter()
                .flat_map(|sh| &sh.experiments)
                .all(|e| e.injection.is_some() || e.dynamic_sites == 0),
            "verify mode must execute every injection, no synthetic records"
        );
        // The post-hoc scan itself reports zero violations.
        let w = vbench::micro_benchmark("vector sum", VectorIsa::Avx, vbench::Scale::Test).unwrap();
        let sound = vulfi_orch::verify_soundness(&w, &vdone).unwrap();
        assert!(sound.checked > 0 && sound.predicted_benign > 0);
        assert!(sound.is_sound(), "{:?}", sound.violations);

        // --prune with a non-single-bit-flip model is refused up front.
        let mut args = base("--prune", &store);
        args.extend(s(&["--model", "multi-bit-burst:2"]));
        let e = run(&args).unwrap_err();
        assert!(e.contains("single-bit-flip"), "{e}");
        // So is combining --prune with --trace.
        let mut args = base("--prune", &store);
        args.extend(s(&["--trace", "/tmp/nope"]));
        let e = run(&args).unwrap_err();
        assert!(e.contains("mutually exclusive"), "{e}");
    }
}
