//! Regenerates **Figure 11** of the paper: the fault-injection study —
//! SDC / Benign / Crash fractions for every benchmark × fault-site
//! category × ISA, with the paper's campaign statistics (±3 pp @95%
//! stopping rule).
//!
//! ```text
//! cargo run --release -p vulfi-bench --bin fig11 [--paper] [--only NAME] [--json] \
//!     [--store DIR] [--jobs N]
//! ```
//!
//! Every study runs through the persistent orchestration store
//! (`--store`, default `results/store`): a killed run resumes from the
//! shards already on disk, and re-rendering a finished table executes
//! nothing. Results are bit-identical to the in-memory
//! `vulfi::run_study` regardless of sharding, threads, or interruptions.
//!
//! Shape expectations from §IV-D, re-checked by the summary this binary
//! prints:
//! - Stencil and Blackscholes show the highest SDC rates; Swaptions and
//!   ConjugateGradient the lowest.
//! - The address category produces the most crashes.
//! - Sorting / Stencil / Chebyshev also show significant address-category
//!   SDC.

use vbench::study_benchmarks;
use vir::analysis::SiteCategory;
use vulfi::campaign::prepare;
use vulfi::workload::Workload;
use vulfi::{StudyReport, SuiteReport};
use vulfi_bench::{clear_progress, isas, open_store, pct, stderr_progress, HarnessOpts, TextTable};
use vulfi_orch::{run_study_persistent, RunOptions};

fn main() {
    let opts = HarnessOpts::from_env();
    let store = open_store(&opts);
    let (mut reused, mut executed) = (0usize, 0usize);
    let mut table = TextTable::new(&[
        "Benchmark",
        "Category",
        "Target",
        "SDC",
        "Benign",
        "Crash",
        "±95%",
        "Campaigns",
    ]);
    let mut report = SuiteReport::new(format!(
        "experiments_per_campaign={}, max_campaigns={}, seed={}",
        opts.study.experiments_per_campaign, opts.study.max_campaigns, opts.study.seed
    ));

    for isa in isas() {
        for w in study_benchmarks(isa, opts.scale) {
            if !opts.selected(w.name()) {
                continue;
            }
            for cat in SiteCategory::ALL {
                let prog = prepare(&w, cat).expect("instrumentation");
                let out = run_study_persistent(
                    &prog,
                    &w,
                    w.name(),
                    isa.name(),
                    &opts.study,
                    &store,
                    RunOptions {
                        progress: stderr_progress(),
                        ..RunOptions::default()
                    },
                )
                .unwrap_or_else(|e| panic!("{} {cat}: {e}", w.name()));
                clear_progress();
                reused += out.reused_shards;
                executed += out.executed_shards;
                let study = out.result.expect("uncapped run completes its study");
                let c = &study.counts;
                table.row(vec![
                    w.name().to_string(),
                    cat.to_string(),
                    isa.name().to_string(),
                    pct(c.sdc_rate()),
                    pct(c.benign_rate()),
                    pct(c.crash_rate()),
                    format!("{:.2}", study.summary.margin_95),
                    format!(
                        "{}{}",
                        study.summary.campaigns,
                        if study.converged { "" } else { " (cap)" }
                    ),
                ]);
                report.push(StudyReport::new(w.name(), isa.name(), &study));
            }
        }
    }

    println!("Figure 11: fault-injection outcomes per benchmark x category x ISA");
    println!("{}", table.render());

    // Derived narrative checks (§IV-D).
    println!("SDC ranking (paper: Stencil/Blackscholes top, Swaptions/CG bottom):");
    for (n, r) in report.sdc_ranking() {
        println!("  {:18} {}", n, pct(r));
    }
    println!("Average crash rate per category (paper: address highest):");
    for (cat, r) in report.crash_by_category() {
        println!("  {:9} {}", cat.name(), pct(r));
    }
    println!(
        "Store {}: {reused} shard(s) reused, {executed} executed.",
        opts.store
    );
    if opts.json {
        println!("{}", serde_json::to_string_pretty(&report).unwrap());
    }
}
