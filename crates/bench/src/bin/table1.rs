//! Regenerates **Table I** of the paper: the benchmark list with language,
//! test inputs, target ISA, and average dynamic instruction count.
//!
//! ```text
//! cargo run --release -p vulfi-bench --bin table1 [--paper] [--only NAME]
//! ```
//!
//! Absolute counts differ from the paper (scaled inputs, interpreter
//! substrate); the *structure* — two rows per benchmark, AVX vs SSE counts
//! of the same order — is the reproduction target.

use vbench::study_benchmarks;
use vulfi::campaign::measure_dyn_insts;
use vulfi::workload::Workload;
use vulfi_bench::{isas, HarnessOpts, TextTable};

fn main() {
    let opts = HarnessOpts::from_env();
    let mut table = TextTable::new(&[
        "Suite",
        "Benchmark",
        "Language",
        "Test input",
        "Target",
        "Avg dynamic instr count",
    ]);
    let mut json_rows = Vec::new();
    for isa in isas() {
        for w in study_benchmarks(isa, opts.scale) {
            if !opts.selected(w.name()) {
                continue;
            }
            let mut total = 0u64;
            for input in 0..w.num_inputs() {
                total += measure_dyn_insts(w.module(), w.entry(), &w, input)
                    .unwrap_or_else(|e| panic!("{}: {e}", w.name()));
            }
            let avg = total as f64 / w.num_inputs() as f64;
            let display = if avg >= 1e6 {
                format!("{:.1} M", avg / 1e6)
            } else {
                format!("{:.1} k", avg / 1e3)
            };
            table.row(vec![
                w.suite.to_string(),
                w.name().to_string(),
                w.language.to_string(),
                w.input_desc.clone(),
                isa.name().to_string(),
                display,
            ]);
            json_rows.push(serde_json::json!({
                "suite": w.suite,
                "benchmark": w.name(),
                "isa": isa.name(),
                "avg_dyn_insts": avg,
            }));
        }
    }
    println!("Table I: benchmarks and average dynamic instruction counts");
    println!("{}", table.render());
    if opts.json {
        println!("{}", serde_json::to_string_pretty(&json_rows).unwrap());
    }
}
