//! Regenerates **Figure 10** of the paper: the composition of vector vs
//! scalar instructions among the candidate fault sites, per fault-site
//! category (pure-data / control / address), per benchmark, per ISA.
//!
//! ```text
//! cargo run --release -p vulfi-bench --bin fig10 [--only NAME] [--json]
//! ```
//!
//! Paper headline to reproduce: a significant share of pure-data and
//! control sites are vector instructions (paper: 67% and 43% averaged over
//! the nine benchmarks), while the address category skews scalar because
//! IR-level address arithmetic is scalar even in vector code.

use vbench::study_benchmarks;
use vexec::{Interp, NoHost};
use vir::analysis::SiteCategory;
use vulfi::sites::{category_mix, enumerate_sites};
use vulfi::workload::Workload;
use vulfi_bench::{isas, pct, HarnessOpts, TextTable};

fn main() {
    let opts = HarnessOpts::from_env();
    let mut table = TextTable::new(&[
        "Benchmark",
        "Category",
        "Target",
        "Scalar",
        "Vector",
        "Vector %",
    ]);
    let mut json_rows = Vec::new();
    // Running averages over benchmarks (the paper's 67% / 43% numbers).
    let mut avg: [(f64, u32); 3] = [(0.0, 0); 3];
    for isa in isas() {
        for w in study_benchmarks(isa, opts.scale) {
            if !opts.selected(w.name()) {
                continue;
            }
            let f = w.module().function(w.entry()).expect("entry exists");
            let sites = enumerate_sites(f);
            for (i, (cat, mix)) in category_mix(&sites).iter().enumerate() {
                table.row(vec![
                    w.name().to_string(),
                    cat.to_string(),
                    isa.name().to_string(),
                    mix.scalar.to_string(),
                    mix.vector.to_string(),
                    pct(mix.vector_pct()),
                ]);
                json_rows.push(serde_json::json!({
                    "benchmark": w.name(),
                    "isa": isa.name(),
                    "category": cat.name(),
                    "scalar": mix.scalar,
                    "vector": mix.vector,
                    "vector_pct": mix.vector_pct(),
                }));
                avg[i].0 += mix.vector_pct();
                avg[i].1 += 1;
            }
        }
    }
    println!("Figure 10: vector/scalar composition of candidate fault sites");
    println!("{}", table.render());

    // Dynamic complement (a capability beyond the paper's static view):
    // share of *executed* instructions that are vector instructions.
    let mut dyn_table = TextTable::new(&["Benchmark", "Target", "Dyn instrs", "Dyn vector %"]);
    for isa in isas() {
        for w in study_benchmarks(isa, opts.scale) {
            if !opts.selected(w.name()) {
                continue;
            }
            let mut interp = Interp::new(w.module());
            interp.enable_profiling();
            let setup = w.setup(&mut interp.mem, 0).expect("setup");
            interp
                .run(w.entry(), &setup.args, &mut NoHost)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name()));
            let mix = interp.take_mix().expect("profiling enabled");
            dyn_table.row(vec![
                w.name().to_string(),
                isa.name().to_string(),
                mix.total.to_string(),
                pct(mix.vector_pct()),
            ]);
        }
    }
    println!("Dynamic instruction mix (executed instructions, input 0):");
    println!("{}", dyn_table.render());
    println!("Averages across benchmarks (paper: pure-data 67%, control 43%, address low):");
    for (i, cat) in SiteCategory::ALL.iter().enumerate() {
        let (sum, n) = avg[i];
        if n > 0 {
            println!("  {:9} : {}", cat.name(), pct(sum / n as f64));
        }
    }
    if opts.json {
        println!("{}", serde_json::to_string_pretty(&json_rows).unwrap());
    }
}
