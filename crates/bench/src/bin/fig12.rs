//! Regenerates **Figure 12** of the paper: the error-detection study on
//! the three micro-benchmarks (vector copy, dot product, vector sum) with
//! the foreach loop-invariant detectors inserted.
//!
//! Per (micro-benchmark × category) cell it reports, like the paper's bar
//! chart:
//! - **Avg overhead** — detector cost, measured as the dynamic-instruction
//!   ratio of golden runs with vs without the detector block (the paper
//!   measured wall clock on native code; ≈8% there);
//! - **SDC** — the SDC rate over `--experiments` injections (paper: 2000);
//! - **SDC detection rate** — the share of SDC runs the detector flagged.
//!
//! ```text
//! cargo run --release -p vulfi-bench --bin fig12 [--paper] [--json]
//! ```
//!
//! Shape expectations from §IV-E: pure-data → **zero** detections;
//! control → highest SDC (up to ~96% for vector sum) with ~50-57%
//! detection; address → lower SDC because crashes dominate.

use detectors::{DetectorConfig, WithDetectors};
use vbench::micro_benchmarks;
use vir::analysis::SiteCategory;
use vulfi::campaign::{measure_dyn_insts, prepare, run_campaign};
use vulfi::workload::Workload;
use vulfi_bench::{isas, pct, HarnessOpts, TextTable};

fn main() {
    let opts = HarnessOpts::from_env();
    let mut table = TextTable::new(&[
        "Micro-benchmark",
        "Category",
        "Target",
        "Avg overhead",
        "SDC",
        "SDC detection rate",
        "Crash",
    ]);
    let mut json_rows = Vec::new();
    for isa in isas() {
        for w in micro_benchmarks(isa, opts.scale) {
            if !opts.selected(w.name()) {
                continue;
            }
            let wd = WithDetectors::new(&w, DetectorConfig::default()).expect("detector pass");

            // Detector overhead: dynamic instructions with/without the
            // detector block, averaged over the input family.
            let mut with = 0u64;
            let mut without = 0u64;
            for input in 0..w.num_inputs() {
                without += measure_dyn_insts(w.module(), w.entry(), &w, input).unwrap();
                with += measure_dyn_insts(wd.module(), wd.entry(), &wd, input).unwrap();
            }
            let overhead = 100.0 * (with as f64 - without as f64) / without as f64;

            for cat in SiteCategory::ALL {
                let prog = prepare(&wd, cat).expect("instrumentation");
                let c = run_campaign(&prog, &wd, opts.micro_experiments, opts.study.seed)
                    .unwrap_or_else(|e| panic!("{} {cat}: {e}", w.name()));
                table.row(vec![
                    w.name().to_string(),
                    cat.to_string(),
                    isa.name().to_string(),
                    pct(overhead),
                    pct(c.counts.sdc_rate()),
                    pct(c.counts.sdc_detection_rate()),
                    pct(c.counts.crash_rate()),
                ]);
                json_rows.push(serde_json::json!({
                    "micro": w.name(),
                    "isa": isa.name(),
                    "category": cat.name(),
                    "overhead_pct": overhead,
                    "sdc_pct": c.counts.sdc_rate(),
                    "sdc_detection_pct": c.counts.sdc_detection_rate(),
                    "crash_pct": c.counts.crash_rate(),
                    "experiments": c.counts.total(),
                }));
            }
        }
    }
    println!(
        "Figure 12: invariant-detector study on the micro-benchmarks \
         ({} experiments per cell)",
        opts.micro_experiments
    );
    println!("{}", table.render());
    println!("Expected shape (paper §IV-E): pure-data detection = 0;");
    println!("control has the highest SDC and detection rates; address crashes most.");
    if opts.json {
        println!("{}", serde_json::to_string_pretty(&json_rows).unwrap());
    }
}
