//! Regenerates **Figure 12** of the paper: the error-detection study on
//! the three micro-benchmarks (vector copy, dot product, vector sum) with
//! the foreach loop-invariant detectors inserted.
//!
//! Per (micro-benchmark × category) cell it reports, like the paper's bar
//! chart:
//! - **Avg overhead** — detector cost, measured as the dynamic-instruction
//!   ratio of golden runs with vs without the detector block (the paper
//!   measured wall clock on native code; ≈8% there);
//! - **SDC** — the SDC rate over `--experiments` injections (paper: 2000);
//! - **SDC detection rate** — the share of SDC runs the detector flagged.
//!
//! ```text
//! cargo run --release -p vulfi-bench --bin fig12 [--paper] [--json] \
//!     [--store DIR] [--jobs N]
//! ```
//!
//! Each cell's campaign runs through the persistent orchestration store
//! as a one-campaign study (campaign 0's seed is the study seed, so the
//! experiments are bit-identical to the old in-memory `run_campaign`);
//! killed runs resume and finished cells are cache hits.
//!
//! Shape expectations from §IV-E: pure-data → **zero** detections;
//! control → highest SDC (up to ~96% for vector sum) with ~50-57%
//! detection; address → lower SDC because crashes dominate.

use detectors::{DetectorConfig, WithDetectors};
use vbench::micro_benchmarks;
use vir::analysis::SiteCategory;
use vulfi::campaign::{measure_dyn_insts, prepare};
use vulfi::workload::Workload;
use vulfi::StudyConfig;
use vulfi_bench::{clear_progress, isas, open_store, pct, stderr_progress, HarnessOpts, TextTable};
use vulfi_orch::{run_study_persistent, RunOptions};

fn main() {
    let opts = HarnessOpts::from_env();
    let store = open_store(&opts);
    // One campaign per cell: campaign 0's seed equals the study seed, so
    // this reproduces `run_campaign(.., opts.study.seed)` exactly.
    let cell_cfg = StudyConfig {
        experiments_per_campaign: opts.micro_experiments,
        min_campaigns: 1,
        max_campaigns: 1,
        ..opts.study
    };
    let (mut reused, mut executed) = (0usize, 0usize);
    let mut table = TextTable::new(&[
        "Micro-benchmark",
        "Category",
        "Target",
        "Avg overhead",
        "SDC",
        "SDC detection rate",
        "Crash",
    ]);
    let mut json_rows = Vec::new();
    for isa in isas() {
        for w in micro_benchmarks(isa, opts.scale) {
            if !opts.selected(w.name()) {
                continue;
            }
            let wd = WithDetectors::new(&w, DetectorConfig::default()).expect("detector pass");

            // Detector overhead: dynamic instructions with/without the
            // detector block, averaged over the input family.
            let mut with = 0u64;
            let mut without = 0u64;
            for input in 0..w.num_inputs() {
                without += measure_dyn_insts(w.module(), w.entry(), &w, input).unwrap();
                with += measure_dyn_insts(wd.module(), wd.entry(), &wd, input).unwrap();
            }
            let overhead = 100.0 * (with as f64 - without as f64) / without as f64;

            for cat in SiteCategory::ALL {
                let prog = prepare(&wd, cat).expect("instrumentation");
                let out = run_study_persistent(
                    &prog,
                    &wd,
                    w.name(),
                    isa.name(),
                    &cell_cfg,
                    &store,
                    RunOptions {
                        progress: stderr_progress(),
                        ..RunOptions::default()
                    },
                )
                .unwrap_or_else(|e| panic!("{} {cat}: {e}", w.name()));
                clear_progress();
                reused += out.reused_shards;
                executed += out.executed_shards;
                let c = out.result.expect("one-campaign study completes");
                table.row(vec![
                    w.name().to_string(),
                    cat.to_string(),
                    isa.name().to_string(),
                    pct(overhead),
                    pct(c.counts.sdc_rate()),
                    pct(c.counts.sdc_detection_rate()),
                    pct(c.counts.crash_rate()),
                ]);
                json_rows.push(serde_json::json!({
                    "micro": w.name(),
                    "isa": isa.name(),
                    "category": cat.name(),
                    "overhead_pct": overhead,
                    "sdc_pct": c.counts.sdc_rate(),
                    "sdc_detection_pct": c.counts.sdc_detection_rate(),
                    "crash_pct": c.counts.crash_rate(),
                    "experiments": c.counts.total(),
                }));
            }
        }
    }
    println!(
        "Figure 12: invariant-detector study on the micro-benchmarks \
         ({} experiments per cell)",
        opts.micro_experiments
    );
    println!("{}", table.render());
    println!("Expected shape (paper §IV-E): pure-data detection = 0;");
    println!("control has the highest SDC and detection rates; address crashes most.");
    println!(
        "Store {}: {reused} shard(s) reused, {executed} executed.",
        opts.store
    );
    if opts.json {
        println!("{}", serde_json::to_string_pretty(&json_rows).unwrap());
    }
}
