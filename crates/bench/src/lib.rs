//! # vulfi-bench — the evaluation harness
//!
//! One binary per table/figure of the paper's evaluation section:
//!
//! | Binary   | Regenerates |
//! |----------|-------------|
//! | `table1` | Table I — benchmark list + average dynamic instruction counts (AVX & SSE) |
//! | `fig10`  | Fig. 10 — % scalar vs vector instructions per fault-site category |
//! | `fig11`  | Fig. 11 — SDC / Benign / Crash rates per benchmark × category × ISA |
//! | `fig12`  | Fig. 12 — detector overhead, SDC rate, and SDC detection rate on the micro-benchmarks |
//!
//! Run with `--release`; the default configuration is CI-sized, `--paper`
//! switches to paper-scale campaign counts (much slower).

use std::fmt::Write as _;

use spmdc::VectorIsa;
use vbench::Scale;
use vulfi::StudyConfig;

/// Shared command-line options of the harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessOpts {
    pub scale: Scale,
    /// Study configuration (experiments per campaign, stopping rule).
    pub study: StudyConfig,
    /// Experiments per micro-benchmark cell (fig12; paper: 2000).
    pub micro_experiments: usize,
    /// Restrict to one benchmark by name.
    pub only: Option<String>,
    /// Emit a JSON blob after the human-readable table.
    pub json: bool,
    /// Result-store directory for the study binaries (fig11/fig12):
    /// completed studies are cached here and interrupted ones resume.
    pub store: String,
    /// Worker-thread cap (0 = all cores).
    pub jobs: usize,
}

impl Default for HarnessOpts {
    fn default() -> HarnessOpts {
        HarnessOpts {
            scale: Scale::Test,
            study: StudyConfig {
                experiments_per_campaign: 25,
                target_margin: 3.0,
                min_campaigns: 4,
                max_campaigns: 8,
                seed: 0xDEAD_BEEF,
                ..StudyConfig::default()
            },
            micro_experiments: 400,
            only: None,
            json: false,
            store: "results/store".to_string(),
            jobs: 0,
        }
    }
}

impl HarnessOpts {
    /// Parse `args` (without `argv[0]`). Recognized flags:
    /// `--paper`, `--experiments N`, `--campaigns N`, `--seed N`,
    /// `--only NAME`, `--json`, `--store DIR`, `--jobs N`.
    pub fn parse(args: &[String]) -> Result<HarnessOpts, String> {
        let mut o = HarnessOpts::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--paper" => {
                    o.scale = Scale::Paper;
                    o.study.experiments_per_campaign = 100;
                    o.study.max_campaigns = 20;
                    o.micro_experiments = 2000;
                }
                "--experiments" => {
                    o.study.experiments_per_campaign = next_num(&mut it, a)? as usize;
                    o.micro_experiments = o.study.experiments_per_campaign * 16;
                }
                "--campaigns" => o.study.max_campaigns = next_num(&mut it, a)? as usize,
                "--seed" => o.study.seed = next_num(&mut it, a)?,
                "--only" => {
                    o.only = Some(
                        it.next()
                            .ok_or_else(|| format!("{a} needs a value"))?
                            .clone(),
                    )
                }
                "--json" => o.json = true,
                "--store" => {
                    o.store = it
                        .next()
                        .ok_or_else(|| format!("{a} needs a value"))?
                        .clone()
                }
                "--jobs" => o.jobs = next_num(&mut it, a)? as usize,
                "--help" | "-h" => {
                    return Err(
                        "flags: --paper --experiments N --campaigns N --seed N --only NAME \
                         --json --store DIR --jobs N"
                            .to_string(),
                    )
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        Ok(o)
    }

    pub fn from_env() -> HarnessOpts {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match HarnessOpts::parse(&args) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }

    /// Should this benchmark run?
    pub fn selected(&self, name: &str) -> bool {
        self.only.as_deref().is_none_or(|o| o == name)
    }
}

fn next_num<'a>(it: &mut impl Iterator<Item = &'a String>, flag: &str) -> Result<u64, String> {
    it.next()
        .ok_or_else(|| format!("{flag} needs a value"))?
        .parse()
        .map_err(|_| format!("{flag} needs a number"))
}

/// A simple fixed-width text table.
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new(headers: &[&str]) -> TextTable {
        TextTable {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            for w in &widths {
                let _ = write!(out, "+{}", "-".repeat(w + 2));
            }
            out.push_str("+\n");
        };
        sep(&mut out);
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(out, "| {:w$} ", h, w = widths[i]);
        }
        out.push_str("|\n");
        sep(&mut out);
        for r in &self.rows {
            for i in 0..ncols {
                let _ = write!(out, "| {:w$} ", r[i], w = widths[i]);
            }
            out.push_str("|\n");
        }
        sep(&mut out);
        out
    }
}

/// Open (creating if needed) the orchestration store selected by
/// `--store` and apply the `--jobs` cap. The study binaries route every
/// campaign through this store, so a killed run resumes where it
/// stopped and a finished table re-renders from cache.
pub fn open_store(opts: &HarnessOpts) -> vulfi_orch::Store {
    if opts.jobs != 0 {
        vulfi_orch::set_jobs(opts.jobs);
    }
    vulfi_orch::Store::open(&opts.store)
        .unwrap_or_else(|e| panic!("open store {}: {e}", opts.store))
}

/// Per-shard progress callback keeping a live status line on stderr —
/// only when stderr is a terminal, so piped/CI output stays clean.
pub fn stderr_progress() -> Option<vulfi_orch::ProgressFn> {
    use std::io::IsTerminal as _;
    if std::io::stderr().is_terminal() {
        Some(Box::new(|s: &vulfi_orch::ProgressSnapshot| {
            eprint!("\r\x1b[K{}", s.render_line());
        }))
    } else {
        None
    }
}

/// Erase the live status line left by [`stderr_progress`].
pub fn clear_progress() {
    use std::io::IsTerminal as _;
    if std::io::stderr().is_terminal() {
        eprint!("\r\x1b[K");
    }
}

/// Both ISAs, in the paper's presentation order.
pub fn isas() -> [VectorIsa; 2] {
    [VectorIsa::Avx, VectorIsa::Sse4]
}

/// Format a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{v:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_defaults() {
        let o = HarnessOpts::parse(&[]).unwrap();
        assert_eq!(o.scale, Scale::Test);
        assert_eq!(o.study.experiments_per_campaign, 25);
        assert!(o.selected("anything"));
    }

    #[test]
    fn parse_paper_mode() {
        let o = HarnessOpts::parse(&s(&["--paper"])).unwrap();
        assert_eq!(o.scale, Scale::Paper);
        assert_eq!(o.study.experiments_per_campaign, 100);
        assert_eq!(o.study.max_campaigns, 20);
        assert_eq!(o.micro_experiments, 2000);
    }

    #[test]
    fn parse_overrides_and_only() {
        let o = HarnessOpts::parse(&s(&[
            "--experiments",
            "10",
            "--seed",
            "7",
            "--only",
            "Stencil",
        ]))
        .unwrap();
        assert_eq!(o.study.experiments_per_campaign, 10);
        assert_eq!(o.study.seed, 7);
        assert!(o.selected("Stencil"));
        assert!(!o.selected("Jacobi"));
    }

    #[test]
    fn parse_store_and_jobs() {
        let o = HarnessOpts::parse(&s(&["--store", "/tmp/r", "--jobs", "3"])).unwrap();
        assert_eq!(o.store, "/tmp/r");
        assert_eq!(o.jobs, 3);
        assert!(HarnessOpts::parse(&s(&["--jobs", "many"])).is_err());
    }

    #[test]
    fn parse_rejects_unknown() {
        assert!(HarnessOpts::parse(&s(&["--bogus"])).is_err());
        assert!(HarnessOpts::parse(&s(&["--seed"])).is_err());
        assert!(HarnessOpts::parse(&s(&["--seed", "xyz"])).is_err());
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(s(&["a", "1"]));
        t.row(s(&["long-name", "2.5%"]));
        let r = t.render();
        assert!(r.contains("| long-name | 2.5%  |"), "{r}");
        assert!(r.lines().all(|l| l.starts_with('+') || l.starts_with('|')));
    }
}
