//! Wall-clock overhead of the foreach loop-invariant detectors on the three
//! §IV-E micro-benchmarks — the direct analogue of the paper's "~8% average
//! overhead" measurement (Fig. 12's first bar group), complementing the
//! deterministic dynamic-instruction ratio reported by the `fig12` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use detectors::{DetectorConfig, WithDetectors};
use spmdc::VectorIsa;
use vbench::{micro_benchmarks, Scale};
use vexec::Interp;
use vulfi::workload::Workload;
use vulfi::VulfiHost;

fn bench(c: &mut Criterion) {
    for w in micro_benchmarks(VectorIsa::Avx, Scale::Test) {
        let wd = WithDetectors::new(&w, DetectorConfig::default()).unwrap();
        let mut group = c.benchmark_group(format!("detector_overhead/{}", w.name()));
        group.sample_size(30);
        group.bench_function("without", |b| {
            b.iter(|| {
                let mut interp = Interp::new(w.module());
                let setup = w.setup(&mut interp.mem, 0).unwrap();
                let mut host = VulfiHost::profile();
                criterion::black_box(interp.run(w.entry(), &setup.args, &mut host).unwrap())
            })
        });
        group.bench_function("with", |b| {
            b.iter(|| {
                let mut interp = Interp::new(wd.module());
                let setup = wd.setup(&mut interp.mem, 0).unwrap();
                let mut host = VulfiHost::profile();
                criterion::black_box(interp.run(wd.entry(), &setup.args, &mut host).unwrap())
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
