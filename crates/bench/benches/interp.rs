//! Interpreter throughput: golden runs of representative benchmarks.
//! This is the substrate-speed baseline every other measurement sits on.

use criterion::{criterion_group, criterion_main, Criterion};
use spmdc::VectorIsa;
use vbench::{study_benchmark, Scale};
use vexec::{Interp, NoHost};
use vulfi::workload::Workload;

fn golden_run(c: &mut Criterion, name: &str, isa: VectorIsa) {
    let w = study_benchmark(name, isa, Scale::Test).unwrap();
    let mut group = c.benchmark_group("interp");
    group.sample_size(20);
    group.bench_function(format!("{name}/{isa}"), |b| {
        b.iter(|| {
            let mut interp = Interp::new(w.module());
            let setup = w.setup(&mut interp.mem, 0).unwrap();
            let r = interp.run(w.entry(), &setup.args, &mut NoHost).unwrap();
            criterion::black_box(r.dyn_insts)
        })
    });
    group.finish();
}

fn bench(c: &mut Criterion) {
    for isa in VectorIsa::ALL {
        golden_run(c, "Blackscholes", isa);
        golden_run(c, "Stencil", isa);
        golden_run(c, "Sorting", isa);
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
