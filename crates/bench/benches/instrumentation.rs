//! Costs of the VULFI instrumentation itself:
//!
//! - `pass/*` — wall-clock of the instrumentation pass (site enumeration,
//!   classification, per-lane cloning) per category;
//! - `overhead/*` — golden-run slowdown of instrumented vs plain modules,
//!   i.e. what a fault-injection campaign pays per run.

use criterion::{criterion_group, criterion_main, Criterion};
use spmdc::VectorIsa;
use vbench::{study_benchmark, Scale};
use vexec::{Interp, NoHost};
use vir::analysis::SiteCategory;
use vulfi::workload::Workload;
use vulfi::{instrument_module, InstrumentOptions, VulfiHost};

fn bench_pass(c: &mut Criterion) {
    let w = study_benchmark("Blackscholes", VectorIsa::Avx, Scale::Test).unwrap();
    let mut group = c.benchmark_group("pass");
    group.sample_size(20);
    for cat in SiteCategory::ALL {
        group.bench_function(cat.name(), |b| {
            b.iter(|| {
                let mut m = w.module().clone();
                let r = instrument_module(&mut m, w.entry(), InstrumentOptions::new(cat)).unwrap();
                criterion::black_box(r.sites.len())
            })
        });
    }
    group.finish();
}

fn bench_overhead(c: &mut Criterion) {
    let w = study_benchmark("Stencil", VectorIsa::Avx, Scale::Test).unwrap();
    let mut group = c.benchmark_group("overhead");
    group.sample_size(20);

    group.bench_function("plain", |b| {
        b.iter(|| {
            let mut interp = Interp::new(w.module());
            let setup = w.setup(&mut interp.mem, 0).unwrap();
            criterion::black_box(interp.run(w.entry(), &setup.args, &mut NoHost).unwrap())
        })
    });
    for cat in SiteCategory::ALL {
        let prog = vulfi::prepare(&w, cat).unwrap();
        group.bench_function(format!("instrumented/{}", cat.name()), |b| {
            b.iter(|| {
                let mut interp = Interp::new(&prog.module);
                let setup = w.setup(&mut interp.mem, 0).unwrap();
                let mut host = VulfiHost::profile();
                criterion::black_box(interp.run(&prog.entry, &setup.args, &mut host).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pass, bench_overhead);
criterion_main!(benches);
