//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **Mask-aware vs mask-oblivious injection** (§II-D) — runtime cost and
//!    dynamic-site population of honoring execution masks.
//! 2. **Exit-only vs every-iteration invariant checks** (§III-A) — the
//!    overhead side of the detection-latency trade-off.
//! 3. **Campaign throughput** — experiments/second of the end-to-end
//!    driver, the number that bounds full-study wall time.

use criterion::{criterion_group, criterion_main, Criterion};
use detectors::{CheckPlacement, DetectorConfig, WithDetectors};
use spmdc::VectorIsa;
use vbench::{micro_benchmark, Scale};
use vexec::Interp;
use vir::analysis::SiteCategory;
use vulfi::instrument::TargetMode;
use vulfi::workload::Workload;
use vulfi::{prepare_with, run_campaign, InstrumentOptions, VulfiHost};

fn mask_awareness(c: &mut Criterion) {
    let w = micro_benchmark("vector copy", VectorIsa::Avx, Scale::Test).unwrap();
    let mut group = c.benchmark_group("ablation/mask");
    group.sample_size(20);
    for (label, aware) in [("aware", true), ("oblivious", false)] {
        let prog = prepare_with(
            &w,
            InstrumentOptions {
                category: SiteCategory::PureData,
                mask_aware: aware,
                mode: Default::default(),
            },
        )
        .unwrap();
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut interp = Interp::new(&prog.module);
                let setup = w.setup(&mut interp.mem, 0).unwrap();
                let mut host = VulfiHost::profile();
                interp.run(&prog.entry, &setup.args, &mut host).unwrap();
                criterion::black_box(host.dynamic_sites)
            })
        });
    }
    group.finish();
}

fn check_placement(c: &mut Criterion) {
    let w = micro_benchmark("vector sum", VectorIsa::Avx, Scale::Test).unwrap();
    let mut group = c.benchmark_group("ablation/check_placement");
    group.sample_size(20);
    for (label, placement) in [
        ("exit_only", CheckPlacement::OnExit),
        ("every_iteration", CheckPlacement::EveryIteration),
    ] {
        let cfg = DetectorConfig {
            foreach_invariants: true,
            uniform_broadcast: false,
            placement,
        };
        let wd = WithDetectors::new(&w, cfg).unwrap();
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut interp = Interp::new(wd.module());
                let setup = wd.setup(&mut interp.mem, 0).unwrap();
                let mut host = VulfiHost::profile();
                interp.run(wd.entry(), &setup.args, &mut host).unwrap();
                criterion::black_box(host.detectors.checks)
            })
        });
    }
    group.finish();
}

fn campaign_throughput(c: &mut Criterion) {
    let w = micro_benchmark("dot product", VectorIsa::Avx, Scale::Test).unwrap();
    let prog = prepare_with(
        &w,
        InstrumentOptions {
            category: SiteCategory::PureData,
            mask_aware: true,
            mode: Default::default(),
        },
    )
    .unwrap();
    let mut group = c.benchmark_group("ablation/campaign");
    group.sample_size(10);
    group.bench_function("25_experiments", |b| {
        b.iter(|| {
            let r = run_campaign(&prog, &w, 25, 99).unwrap();
            criterion::black_box(r.counts)
        })
    });
    group.finish();
}

fn target_mode(c: &mut Criterion) {
    // Lvalue (paper §II-B) vs source-operand fault models: runtime cost of
    // the denser operand-site instrumentation.
    let w = micro_benchmark("vector copy", VectorIsa::Avx, Scale::Test).unwrap();
    let mut group = c.benchmark_group("ablation/target_mode");
    group.sample_size(20);
    for (label, mode) in [
        ("lvalue", TargetMode::Lvalue),
        ("source_operands", TargetMode::SourceOperands),
    ] {
        let prog = prepare_with(
            &w,
            InstrumentOptions {
                category: SiteCategory::PureData,
                mask_aware: true,
                mode,
            },
        )
        .unwrap();
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut interp = Interp::new(&prog.module);
                let setup = w.setup(&mut interp.mem, 0).unwrap();
                let mut host = VulfiHost::profile();
                interp.run(&prog.entry, &setup.args, &mut host).unwrap();
                criterion::black_box(host.dynamic_sites)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    mask_awareness,
    check_placement,
    campaign_throughput,
    target_mode
);
criterion_main!(benches);
