//! End-to-end tracing contract:
//!
//! 1. Tracing is *purely observational* — a traced study lands in the
//!    same content-addressed key and merges bit-identically to an
//!    untraced one, and the trace summary's outcome counts match the
//!    study's.
//! 2. Trace shards inherit the store's crash-tolerance — kills tear at
//!    most one line (healed on resume), corruption is loud and
//!    quarantined by fsck, and summaries are never silently skewed.

use std::path::PathBuf;

use vir::analysis::SiteCategory;
use vulfi::{prepare, run_study, StudyConfig, StudyResult};
use vulfi_orch::{run_study_persistent, summarize, RunOptions, Store, TraceStore};

fn workload() -> vbench::SpmdWorkload {
    vbench::micro_benchmark("vector sum", spmdc::VectorIsa::Avx, vbench::Scale::Test).unwrap()
}

fn cfg() -> StudyConfig {
    StudyConfig {
        experiments_per_campaign: 12,
        target_margin: 50.0,
        min_campaigns: 4,
        max_campaigns: 5,
        seed: 0x7ACE_5EED,
        ..StudyConfig::default()
    }
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vulfi_trace_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_identical(a: &StudyResult, b: &StudyResult) {
    assert_eq!(a.category, b.category);
    assert_eq!(a.converged, b.converged);
    assert_eq!(a.counts, b.counts);
    assert_eq!(a.summary.mean.to_bits(), b.summary.mean.to_bits());
    assert_eq!(a.summary.margin_95.to_bits(), b.summary.margin_95.to_bits());
}

fn opts(trace: Option<PathBuf>, max_shards: Option<usize>) -> RunOptions {
    RunOptions {
        shard_size: 5,
        max_shards,
        progress: None,
        trace,
    }
}

#[test]
fn traced_study_is_bit_identical_with_matching_summary() {
    let w = workload();
    let cfg = cfg();
    let prog = prepare(&w, SiteCategory::PureData).unwrap();
    let reference = run_study(&prog, &w, &cfg).unwrap();

    // Untraced persistent run.
    let plain_store = Store::open(temp_dir("plain")).unwrap();
    let plain = run_study_persistent(
        &prog,
        &w,
        "vector sum",
        "avx",
        &cfg,
        &plain_store,
        opts(None, None),
    )
    .unwrap();

    // Traced persistent run in a fresh store.
    let traced_store = Store::open(temp_dir("traced")).unwrap();
    let trace_root = temp_dir("traced_sidecar");
    let traced = run_study_persistent(
        &prog,
        &w,
        "vector sum",
        "avx",
        &cfg,
        &traced_store,
        opts(Some(trace_root.clone()), None),
    )
    .unwrap();

    // Same key, same bits, same counts.
    assert_eq!(
        plain.key, traced.key,
        "tracing must not change the study key"
    );
    assert_identical(plain.result.as_ref().unwrap(), &reference);
    assert_identical(traced.result.as_ref().unwrap(), &reference);

    // The sidecar is clean and self-describing.
    let tstore = TraceStore::open(&trace_root).unwrap();
    assert!(
        !tstore.fsck(false).unwrap().dirty(),
        "fresh trace log must fsck clean"
    );
    let summary = summarize(&tstore, 10).unwrap();
    assert_eq!(summary.studies, 1);
    // The runner executes the full plan (the stopping rule may converge
    // on a prefix of it): one span per *persisted* experiment.
    let planned = (cfg.max_campaigns * cfg.experiments_per_campaign) as u64;
    assert_eq!(summary.spans as u64, planned, "one span per experiment");
    assert_eq!(summary.categories.len(), 1);
    let c = &summary.categories[0];
    assert_eq!(c.category, "pure-data");

    // Outcome counts must match the untraced run's persisted
    // experiments exactly.
    let mut want = (0u64, 0u64, 0u64);
    for shard in plain_store.study(&plain.key).shards().unwrap() {
        for e in &shard.experiments {
            match e.outcome {
                vulfi::Outcome::Sdc => want.0 += 1,
                vulfi::Outcome::Benign => want.1 += 1,
                vulfi::Outcome::Crash => want.2 += 1,
            }
        }
    }
    assert_eq!(
        (c.sdc, c.benign, c.crash),
        want,
        "trace summary outcome counts must match the untraced run's"
    );
    // This workload produces SDCs at Scale::Test, so propagation
    // percentiles and SDC-prone sites must both materialize.
    assert!(reference.counts.sdc > 0, "{:?}", reference.counts);
    let p = c
        .propagation
        .as_ref()
        .expect("SDCs imply propagation samples");
    assert!(p.samples > 0 && p.p50 <= p.p90 && p.p90 <= p.p99 && p.p99 <= p.max);
    assert!(!summary.top_sdc_sites.is_empty());
    for site in &summary.top_sdc_sites {
        assert!(site.sdc > 0 && site.sdc <= site.total);
        assert_ne!(site.opcode, "?", "site provenance must resolve");
        assert_eq!(site.workload, "vector sum");
    }
}

#[test]
fn trace_log_survives_kill_and_corruption() {
    let w = workload();
    let cfg = cfg();
    let prog = prepare(&w, SiteCategory::PureData).unwrap();
    let reference = run_study(&prog, &w, &cfg).unwrap();

    let store = Store::open(temp_dir("chaos_store")).unwrap();
    let trace_root = temp_dir("chaos_sidecar");

    // "Kill" after two shards, then tear the trace log's tail the way a
    // real kill mid-append would.
    let first = run_study_persistent(
        &prog,
        &w,
        "vector sum",
        "avx",
        &cfg,
        &store,
        opts(Some(trace_root.clone()), Some(2)),
    )
    .unwrap();
    assert!(first.result.is_none());
    let tlog_path = trace_root.join(&first.key.0).join("traces.jsonl");
    let mut bytes = std::fs::read(&tlog_path).unwrap();
    bytes.extend_from_slice(b"{\"campaign\":9,\"start\":99,\"torn\":");
    std::fs::write(&tlog_path, &bytes).unwrap();

    // Resume trims the torn trace line and completes bit-identically.
    let out = run_study_persistent(
        &prog,
        &w,
        "vector sum",
        "avx",
        &cfg,
        &store,
        opts(Some(trace_root.clone()), None),
    )
    .unwrap();
    assert_identical(out.result.as_ref().unwrap(), &reference);
    let tstore = TraceStore::open(&trace_root).unwrap();
    assert!(
        !tstore.fsck(false).unwrap().dirty(),
        "resume must heal the torn tail"
    );
    let full = summarize(&tstore, 5).unwrap();
    let planned = (cfg.max_campaigns * cfg.experiments_per_campaign) as u64;
    assert_eq!(full.spans as u64, planned);

    // Now flip a byte mid-log: reading and summarizing must fail loudly,
    // naming the repair command — never a silently skewed summary.
    let mut bytes = std::fs::read(&tlog_path).unwrap();
    let pos = bytes.iter().position(|b| *b == b'"').unwrap();
    bytes[pos + 1] ^= 0x20;
    std::fs::write(&tlog_path, &bytes).unwrap();
    let err = summarize(&tstore, 5).unwrap_err();
    assert!(err.0.contains("vulfi trace fsck"), "{err}");

    // fsck quarantines the damaged log and salvages intact shards; the
    // summary then reflects exactly the surviving spans.
    let report = tstore.fsck(true).unwrap();
    assert!(report.needs_repair());
    assert!(report.studies[0].quarantined.is_some());
    assert!(
        report.studies[0].valid > 0,
        "intact records must be salvaged"
    );
    let salvaged = summarize(&tstore, 5).unwrap();
    assert!(salvaged.spans > 0);
    assert!(salvaged.spans <= full.spans);
    assert!(
        !tstore.fsck(false).unwrap().dirty(),
        "post-repair log is clean"
    );

    // Losing trace spans never touches the *results*: the study still
    // merges bit-identically.
    let again = run_study_persistent(
        &prog,
        &w,
        "vector sum",
        "avx",
        &cfg,
        &store,
        opts(Some(trace_root), None),
    )
    .unwrap();
    assert_identical(again.result.as_ref().unwrap(), &reference);
}
