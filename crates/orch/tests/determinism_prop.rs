//! Property test: the merged study result is a pure function of the
//! study config — shard size and thread count must never leak into it.

use proptest::prelude::*;
use std::sync::OnceLock;

use vir::analysis::SiteCategory;
use vulfi::{prepare, run_study, Prepared, StudyConfig, StudyResult};
use vulfi_orch::{run_study_persistent, set_jobs, RunOptions, Store};

fn workload() -> &'static vbench::SpmdWorkload {
    static W: OnceLock<vbench::SpmdWorkload> = OnceLock::new();
    W.get_or_init(|| {
        vbench::micro_benchmark("dot product", spmdc::VectorIsa::Sse4, vbench::Scale::Test).unwrap()
    })
}

fn prog() -> &'static Prepared {
    static P: OnceLock<Prepared> = OnceLock::new();
    P.get_or_init(|| prepare(workload(), SiteCategory::PureData).unwrap())
}

fn bits(r: &StudyResult) -> (Vec<u64>, u64, bool) {
    (
        r.samples.iter().map(|x| x.to_bits()).collect(),
        r.counts.sdc << 32 | r.counts.crash << 16 | r.counts.benign,
        r.converged,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn merged_result_ignores_shard_size_and_threads(
        shard_size in 1usize..40,
        jobs in 1usize..5,
        seed in 0u64..4,
    ) {
        let cfg = StudyConfig {
            experiments_per_campaign: 8,
            target_margin: 50.0,
            min_campaigns: 4,
            max_campaigns: 4,
            seed: 0x5EED_0000 + seed,
            ..StudyConfig::default()
        };
        let reference = run_study(prog(), workload(), &cfg).unwrap();

        set_jobs(jobs);
        let dir = std::env::temp_dir().join(format!(
            "vulfi_orch_prop_{}_{}_{}_{}",
            std::process::id(), shard_size, jobs, seed
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        let out = run_study_persistent(
            prog(),
            workload(),
            "dot product",
            "sse",
            &cfg,
            &store,
            RunOptions { shard_size, max_shards: None, progress: None, trace: None },
        )
        .unwrap();
        set_jobs(0);
        let merged = out.result.expect("all shards ran; study must be complete");
        prop_assert_eq!(bits(&merged), bits(&reference));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
