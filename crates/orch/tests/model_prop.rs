//! Property tests for the fault-model library: every model's merged
//! study result is a pure function of the study config — shard size and
//! thread count must never leak into it — and the default
//! `SingleBitFlip` model is byte-identical to the pre-model injector,
//! pinned by a store fixture generated before the model layer existed.

use proptest::prelude::*;
use std::path::Path;
use std::sync::OnceLock;

use vir::analysis::SiteCategory;
use vulfi::{prepare, run_study, FaultModel, StudyConfig, StudyResult, Workload};
use vulfi_orch::{run_study_persistent, set_jobs, RunOptions, Store};

/// One representative of each fault-model kind, parameters included, so
/// a regression in any variant's RNG discipline fails the property.
const MODELS: [FaultModel; 7] = [
    FaultModel::SingleBitFlip,
    FaultModel::MultiBitBurst { width: 3 },
    FaultModel::StuckAt {
        bit: 5,
        value: true,
    },
    FaultModel::MaskCorrupt,
    FaultModel::AddressLine { bit: 2 },
    FaultModel::TemporalPair { gap: 4 },
    FaultModel::MemoryCell,
];

fn workload() -> &'static vbench::SpmdWorkload {
    static W: OnceLock<vbench::SpmdWorkload> = OnceLock::new();
    W.get_or_init(|| {
        vbench::micro_benchmark("dot product", spmdc::VectorIsa::Sse4, vbench::Scale::Test).unwrap()
    })
}

fn bits(r: &StudyResult) -> (Vec<u64>, u64, bool) {
    (
        r.samples.iter().map(|x| x.to_bits()).collect(),
        r.counts.sdc << 32 | r.counts.crash << 16 | r.counts.benign,
        r.converged,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn every_model_merges_bit_identical(
        model_idx in 0usize..MODELS.len(),
        shard_size in 1usize..20,
        jobs in 1usize..4,
        seed in 0u64..3,
    ) {
        let model = MODELS[model_idx];
        let cfg = StudyConfig {
            experiments_per_campaign: 6,
            target_margin: 50.0,
            min_campaigns: 3,
            max_campaigns: 3,
            seed: 0x4A0D_0000 + seed,
            model,
            prune: false,
        };
        // `Prepared` carries the model, so build it fresh per case.
        let mut prog = prepare(workload(), SiteCategory::PureData).unwrap();
        prog.model = model;
        let reference = run_study(&prog, workload(), &cfg).unwrap();

        set_jobs(jobs);
        let dir = std::env::temp_dir().join(format!(
            "vulfi_model_prop_{}_{}_{}_{}_{}",
            std::process::id(), model_idx, shard_size, jobs, seed
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        let out = run_study_persistent(
            &prog,
            workload(),
            "dot product",
            "sse",
            &cfg,
            &store,
            RunOptions { shard_size, max_shards: None, progress: None, trace: None },
        )
        .unwrap();
        set_jobs(0);
        let merged = out.result.expect("all shards ran; study must be complete");
        prop_assert_eq!(bits(&merged), bits(&reference));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The committed fixture was produced by `vulfi study --bench "vector
/// sum" --isa avx --category pure-data --experiments 10 --campaigns 4
/// --seed 7 --shard-size 5` on the commit *before* the fault-model
/// layer landed. The default model must reproduce it exactly: same
/// content-addressed key (legacy stores stay valid) and the same
/// per-experiment records (the injector draws the same RNG stream).
#[test]
fn single_bit_flip_matches_pre_model_fixture() {
    const KEY: &str = "cdc391201dd7794d2f5ad54acf082a72";
    // The key constant is re-derived below rather than trusted blindly;
    // a typo here must fail loudly, not silently pass.
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/pre_pr_store");
    let w = vbench::micro_benchmark("vector sum", spmdc::VectorIsa::Avx, vbench::Scale::Test)
        .expect("fixture benchmark exists");
    let cfg = StudyConfig {
        experiments_per_campaign: 10,
        max_campaigns: 4,
        seed: 7,
        ..StudyConfig::default()
    };
    let mut prog = prepare(&w, SiteCategory::PureData).unwrap();
    prog.model = cfg.model;
    let key = vulfi_orch::study_key(&prog, w.name(), "avx", &cfg);

    let fixture_store = Store::open(&fixture).unwrap();
    let study = fixture_store.study(&key);
    assert!(
        study.exists(),
        "default-model key {key} must address the pre-model fixture study \
         (expected ~{KEY}); legacy stores would be orphaned otherwise"
    );
    let fixture_shards = study.shards().unwrap();
    assert_eq!(fixture_shards.len(), 8, "fixture holds 8 shards of 5");

    // Re-run from scratch in a temp store and compare every experiment
    // record (outcome, injection, input, site counts) bit for bit.
    // wall_ns is informational and excluded by comparing `experiments`.
    let dir = std::env::temp_dir().join(format!("vulfi_fixture_check_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let fresh_store = Store::open(&dir).unwrap();
    let out = run_study_persistent(
        &prog,
        &w,
        w.name(),
        "avx",
        &cfg,
        &fresh_store,
        RunOptions {
            shard_size: 5,
            max_shards: None,
            progress: None,
            trace: None,
        },
    )
    .unwrap();
    assert_eq!(out.key.0, key.0);
    let fresh_shards = fresh_store.study(&key).shards().unwrap();
    assert_eq!(fresh_shards.len(), fixture_shards.len());
    for (old, new) in fixture_shards.iter().zip(&fresh_shards) {
        assert_eq!(
            (old.campaign, old.start, old.end),
            (new.campaign, new.start, new.end)
        );
        assert_eq!(
            old.experiments, new.experiments,
            "shard c{}:{}..{}",
            old.campaign, old.start, old.end
        );
    }
    let result = out.result.expect("complete");
    assert_eq!(
        (result.counts.sdc, result.counts.benign, result.counts.crash),
        (32, 7, 1),
        "fixture-era outcome tallies"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
