//! Chaos harness: the fault injector must survive the faults it
//! injects — and the ones the world injects into *it*.
//!
//! Three adversaries, all bounded and deterministic:
//!
//! 1. A workload that panics inside the engine for some inputs: the
//!    study must absorb it as a recorded Crash outcome, stay resumable,
//!    and still merge bit-identically to an uninterrupted run.
//! 2. A killer/corrupter that stops the runner mid-study, then truncates
//!    or byte-flips `shards.jsonl` between resumes: every resume either
//!    reproduces the uninterrupted study bit-for-bit or fails loudly and
//!    is healed by fsck — merged results are never silently altered.
//! 3. A panicking progress observer: reporting is best-effort and must
//!    not take the study down with it.

use std::path::PathBuf;
use std::sync::Mutex;

use proptest::prelude::*;
use vir::analysis::SiteCategory;
use vulfi::workload::{SetupResult, Workload};
use vulfi::{prepare, run_study, StudyConfig, StudyResult};
use vulfi_orch::{merge, run_study_persistent, RunOptions, Store};

/// Serialises tests that touch process-global state (the strict flag and
/// the engine-fault log).
static GLOBALS_GATE: Mutex<()> = Mutex::new(());

fn gate() -> std::sync::MutexGuard<'static, ()> {
    GLOBALS_GATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn workload() -> vbench::SpmdWorkload {
    vbench::micro_benchmark("vector sum", spmdc::VectorIsa::Avx, vbench::Scale::Test).unwrap()
}

fn cfg() -> StudyConfig {
    StudyConfig {
        experiments_per_campaign: 12,
        target_margin: 50.0,
        min_campaigns: 4,
        max_campaigns: 5,
        seed: 0x000C_4A05,
        ..StudyConfig::default()
    }
}

fn temp_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vulfi_chaos_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Bit-identical comparison of two study results.
fn assert_identical(a: &StudyResult, b: &StudyResult) {
    assert_eq!(a.category, b.category);
    assert_eq!(a.converged, b.converged);
    assert_eq!(a.counts, b.counts);
    let bits = |xs: &[f64]| -> Vec<u64> { xs.iter().map(|x| x.to_bits()).collect() };
    assert_eq!(
        bits(&a.samples),
        bits(&b.samples),
        "sample rates must match bit-for-bit"
    );
    assert_eq!(a.summary.mean.to_bits(), b.summary.mean.to_bits());
    assert_eq!(a.summary.std_dev.to_bits(), b.summary.std_dev.to_bits());
    assert_eq!(a.summary.margin_95.to_bits(), b.summary.margin_95.to_bits());
    assert_eq!(a.summary.campaigns, b.summary.campaigns);
}

/// A real workload that panics inside `setup` for one of its inputs —
/// the stand-in for any engine panic on malformed faulted state.
struct PanicWorkload {
    inner: vbench::SpmdWorkload,
}

impl Workload for PanicWorkload {
    fn name(&self) -> &str {
        "panicky vector sum"
    }
    fn entry(&self) -> &str {
        self.inner.entry()
    }
    fn module(&self) -> &vir::Module {
        self.inner.module()
    }
    fn num_inputs(&self) -> u64 {
        self.inner.num_inputs()
    }
    fn setup(&self, mem: &mut vexec::Memory, input: u64) -> Result<SetupResult, vexec::Trap> {
        if input == 1 {
            panic!("chaos: deliberate engine panic on input 1");
        }
        self.inner.setup(mem, input)
    }
}

#[test]
fn panicking_experiments_stay_contained_resumable_and_bit_identical() {
    let _g = gate();
    vulfi::drain_engine_faults();
    let w = PanicWorkload { inner: workload() };
    let cfg = cfg();
    let prog = prepare(&w, SiteCategory::PureData).unwrap();

    // Uninterrupted single-process reference: the panics are contained
    // as Crash outcomes and the study completes.
    let reference = run_study(&prog, &w, &cfg).unwrap();
    assert!(
        reference.counts.crash > 0,
        "panicking experiments must be counted as crashes: {:?}",
        reference.counts
    );
    let faults = vulfi::drain_engine_faults();
    assert!(!faults.is_empty(), "absorbed panics must be logged");
    for f in &faults {
        assert_eq!(f.workload, "panicky vector sum");
        assert_eq!(f.input, 1);
        assert!(f.experiment.is_some(), "campaign provenance must be kept");
        assert!(f.message.contains("chaos: deliberate"), "{}", f.message);
    }

    // Kill after 2 shards, then resume: same result, bit for bit.
    let store = Store::open(temp_store("panic")).unwrap();
    let first = run_study_persistent(
        &prog,
        &w,
        w.name(),
        "avx",
        &cfg,
        &store,
        RunOptions {
            shard_size: 5,
            max_shards: Some(2),
            progress: None,
            trace: None,
        },
    )
    .unwrap();
    assert!(first.result.is_none());
    let second = run_study_persistent(
        &prog,
        &w,
        w.name(),
        "avx",
        &cfg,
        &store,
        RunOptions {
            shard_size: 5,
            max_shards: None,
            progress: None,
            trace: None,
        },
    )
    .unwrap();
    assert_identical(&second.result.unwrap(), &reference);
    vulfi::drain_engine_faults();
}

#[test]
fn strict_mode_aborts_instead_of_recording() {
    let _g = gate();
    let w = PanicWorkload { inner: workload() };
    let cfg = cfg();
    let prog = prepare(&w, SiteCategory::PureData).unwrap();
    vulfi::set_strict(true);
    let result = run_study(&prog, &w, &cfg);
    vulfi::set_strict(false);
    let err = result.expect_err("strict mode must abort");
    assert!(err.0.contains("strict mode"), "{err}");
    vulfi::drain_engine_faults();
}

#[test]
fn panicking_progress_observer_does_not_lose_the_study() {
    let w = workload();
    let cfg = cfg();
    let prog = prepare(&w, SiteCategory::PureData).unwrap();
    let reference = run_study(&prog, &w, &cfg).unwrap();

    let store = Store::open(temp_store("observer")).unwrap();
    let out = run_study_persistent(
        &prog,
        &w,
        "vector sum",
        "avx",
        &cfg,
        &store,
        RunOptions {
            shard_size: 5,
            max_shards: None,
            progress: Some(Box::new(|_| panic!("chaos: observer down"))),
            trace: None,
        },
    )
    .unwrap();
    assert_identical(&out.result.unwrap(), &reference);
}

/// Tiny deterministic RNG for the chaos schedule (xorshift64*).
struct Chaos(u64);

impl Chaos {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// Kill the runner mid-study, then truncate or byte-flip the shard log,
/// every round, for many rounds: each resume must either reproduce the
/// reference bit-identically or fail loudly and be healed by fsck.
#[test]
fn kill_corrupt_fsck_resume_loop_always_converges_bit_identically() {
    let w = workload();
    let cfg = cfg();
    let prog = prepare(&w, SiteCategory::PureData).unwrap();
    let reference = run_study(&prog, &w, &cfg).unwrap();

    let store = Store::open(temp_store("killloop")).unwrap();
    let key = vulfi_orch::study_key(&prog, "vector sum", "avx", &cfg);
    let log = store.root().join(&key.0).join("shards.jsonl");
    let mut chaos = Chaos(0xDEAD_05EC);
    let mut repairs = 0usize;

    for round in 0..12 {
        // Partial progress, "killed" after a couple of shards.
        let partial = run_study_persistent(
            &prog,
            &w,
            "vector sum",
            "avx",
            &cfg,
            &store,
            RunOptions {
                shard_size: 5,
                max_shards: Some(2),
                progress: None,
                trace: None,
            },
        );
        // The previous round's corruption may only surface now — that is
        // the loud path; anything else must have succeeded.
        if let Err(e) = partial {
            assert!(e.0.contains("fsck"), "unexpected failure: {e}");
            let report = store.fsck(true).unwrap();
            assert!(report.studies.iter().any(|s| s.quarantined.is_some()));
            repairs += 1;
        }

        // Corrupt the log: truncate the tail, flip one byte, or leave it.
        if log.is_file() {
            let mut bytes = std::fs::read(&log).unwrap();
            if !bytes.is_empty() {
                match chaos.below(3) {
                    0 => {
                        let cut = 1 + chaos.below(40.min(bytes.len() as u64 - 1)) as usize;
                        bytes.truncate(bytes.len() - cut);
                    }
                    1 => {
                        let pos = chaos.below(bytes.len() as u64) as usize;
                        bytes[pos] ^= 1 << chaos.below(8);
                    }
                    _ => {}
                }
                std::fs::write(&log, &bytes).unwrap();
            }
        }

        // Recover: loud error → fsck heals; then resume to completion.
        if store.study(&key).shards().is_err() {
            let report = store.fsck(true).unwrap();
            assert!(report.studies.iter().any(|s| s.quarantined.is_some()));
            repairs += 1;
        }
        let out = run_study_persistent(
            &prog,
            &w,
            "vector sum",
            "avx",
            &cfg,
            &store,
            RunOptions {
                shard_size: 5,
                max_shards: None,
                progress: None,
                trace: None,
            },
        )
        .unwrap();
        assert_identical(
            out.result
                .as_ref()
                .unwrap_or_else(|| panic!("round {round}: study must complete after recovery")),
            &reference,
        );
    }
    // The schedule is deterministic; make sure it actually exercised the
    // quarantine path, not just torn tails.
    assert!(repairs > 0, "chaos schedule never hit the fsck path");
}

/// The operational event log under the same adversary as the shard
/// store: a writer killed mid-append (torn tail), random byte flips,
/// and fsck-driven recovery — every reopen must keep accepting events,
/// every readable state must summarize to internally-consistent
/// lifecycles, and corruption must either vanish (torn tail) or fail
/// loudly and be healed by `fsck`.
#[test]
fn ops_log_survives_kill_corrupt_fsck_resume_loop() {
    use vulfi_orch::{OpsEvent, OpsKind, OpsLog};

    let root = temp_store("opslog");
    let mut chaos = Chaos(0x0B5E_7A11);
    let mut repairs = 0usize;

    for round in 0..12u64 {
        // Reopen (a "new daemon"): heals torn tails, never refuses to
        // start over mid-file corruption.
        let log = OpsLog::open(&root).unwrap();
        if log.events().is_err() {
            // Last round's flip landed mid-file: loud, then healed.
            let report = log.fsck(true).unwrap();
            assert!(report.quarantined.is_some(), "repair must quarantine");
            repairs += 1;
        }

        // One full job lifecycle lands durably.
        let key = format!("study{round}");
        log.append(OpsEvent::new(OpsKind::Submitted).job(round).key(&key))
            .unwrap();
        log.append(OpsEvent::new(OpsKind::Started).job(round).key(&key))
            .unwrap();
        log.append(
            OpsEvent::new(OpsKind::ShardDone)
                .job(round)
                .key(&key)
                .worker("w0")
                .shard(0, 0, 5)
                .wall_ns(1_000_000),
        )
        .unwrap();
        log.append(OpsEvent::new(OpsKind::Merged).job(round).key(&key))
            .unwrap();
        log.append(OpsEvent::new(OpsKind::Completed).job(round).key(&key))
            .unwrap();

        // The fold must see this round's lifecycle and never produce an
        // inconsistent one from whatever survived earlier rounds.
        let s = log.summarize().unwrap();
        let j = s
            .jobs
            .iter()
            .find(|j| j.job == round)
            .expect("freshly appended lifecycle must fold");
        assert_eq!(j.outcome, "completed");
        assert!(j.merged);
        for j in &s.jobs {
            assert!(
                j.shards >= u64::from(!j.workers.is_empty()),
                "workers imply shards: {j:?}"
            );
        }

        // Chaos: torn trailing append (killed writer), a flipped byte,
        // or nothing.
        let path = log.path();
        let mut bytes = std::fs::read(&path).unwrap();
        match chaos.below(3) {
            0 => bytes.extend_from_slice(b"\n{\"unix_ms\":1,\"kind\":\"Subm"),
            1 => {
                let pos = chaos.below(bytes.len() as u64) as usize;
                bytes[pos] ^= 1 << chaos.below(8);
            }
            _ => {}
        }
        std::fs::write(&path, &bytes).unwrap();
    }
    // The deterministic schedule must exercise the quarantine path.
    assert!(repairs > 0, "chaos schedule never hit the fsck path");
}

/// The telemetry series is a CheckedLog like the others: a sampler
/// killed mid-append leaves a torn tail the next open heals, a flipped
/// byte is loud and quarantined by fsck, and the ring always resumes
/// from whatever samples survived.
#[test]
fn telemetry_log_survives_kill_corrupt_fsck_resume_loop() {
    use vulfi_orch::{Metrics, Sampler, SamplerInputs, TelemetryLog};

    let root = temp_store("telemetry");
    let mut chaos = Chaos(0x7E1E_0E7E);
    let mut repairs = 0usize;
    let metrics = Metrics::new();
    let mut clock = 1_000_000u64;

    for round in 0..12u64 {
        // Reopen (a "restarted daemon"): heals torn tails, never
        // refuses to start over mid-file corruption.
        let log = TelemetryLog::open(&root).unwrap();
        if log.samples().is_err() {
            let report = log.fsck(true).unwrap();
            assert!(report.quarantined.is_some(), "repair must quarantine");
            repairs += 1;
        }

        // Resume exactly as the daemon does: continue the sampler from
        // the persisted tail so rates stay deltas, not resets.
        let before = log.samples().unwrap();
        let mut sampler = match before.last() {
            Some(last) => Sampler::resume_from(last.clone()),
            None => Sampler::new(),
        };
        metrics.add_engine_faults(round + 1);
        for _ in 0..3 {
            clock += 1_000;
            let sample = sampler.sample_at(clock, &metrics.snapshot(), SamplerInputs::default());
            log.append(&sample).unwrap();
        }

        // The ring reloads the persisted tail and ends on this round's
        // newest sample.
        let ring = log.ring(1024).unwrap();
        assert_eq!(ring.len(), before.len() + 3);
        assert_eq!(ring.latest().unwrap().unix_ms, clock);

        // Chaos: torn trailing append (killed sampler), a flipped byte,
        // or nothing.
        let path = log.path();
        let mut bytes = std::fs::read(&path).unwrap();
        match chaos.below(3) {
            0 => bytes.extend_from_slice(b"\n{\"unix_ms\":12,\"exp"),
            1 => {
                let pos = chaos.below(bytes.len() as u64) as usize;
                bytes[pos] ^= 1 << chaos.below(8);
            }
            _ => {}
        }
        std::fs::write(&path, &bytes).unwrap();
    }
    assert!(repairs > 0, "chaos schedule never hit the fsck path");
}

/// Telemetry must observe, never perturb: a study run while a sampler
/// thread drains the metrics registry as fast as it can must produce
/// the bit-identical result — and byte-identical store files — of the
/// same study with no sampler at all.
#[test]
fn concurrent_telemetry_sampling_preserves_bit_identical_studies() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use vulfi_orch::{Sampler, SamplerInputs, TelemetryLog};

    let _g = gate();
    vulfi::drain_engine_faults();
    let w = workload();
    let cfg = cfg();
    let prog = prepare(&w, SiteCategory::PureData).unwrap();
    let opts = || RunOptions {
        shard_size: 4,
        max_shards: None,
        progress: None,
        trace: None,
    };

    // Reference: sampling off.
    let quiet = temp_store("tel_off");
    let store = Store::open(&quiet).unwrap();
    let off = run_study_persistent(&prog, &w, "vector sum", "avx", &cfg, &store, opts())
        .unwrap()
        .result
        .expect("study completes");

    // Same study with a pedal-to-the-floor sampler appending telemetry
    // into the same store root the whole time.
    let sampled = temp_store("tel_on");
    let store = Store::open(&sampled).unwrap();
    let stop = std::sync::Arc::new(AtomicBool::new(false));
    let sampler_stop = stop.clone();
    let sampler_root = sampled.clone();
    let sampler = std::thread::spawn(move || -> u64 {
        let log = TelemetryLog::open(&sampler_root).unwrap();
        let mut s = Sampler::new();
        let mut n = 0u64;
        while !sampler_stop.load(Ordering::Relaxed) {
            let snap = vulfi_orch::metrics::global().snapshot();
            log.append(&s.sample_now(&snap, SamplerInputs::default()))
                .unwrap();
            n += 1;
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        n
    });
    let on = run_study_persistent(&prog, &w, "vector sum", "avx", &cfg, &store, opts())
        .unwrap()
        .result
        .expect("sampled study completes");
    stop.store(true, Ordering::Relaxed);
    let samples = sampler.join().unwrap();
    assert!(samples > 0, "sampler never sampled");

    assert_identical(&off, &on);
    // Store-level: the sampler wrote only under <store>/telemetry/. The
    // manifest is fully deterministic, so it must match byte for byte;
    // shard records must match field for field once the two documented
    // nondeterministic axes (wall time, parallel append order) are
    // normalized out.
    let key = vulfi_orch::study_key(&prog, "vector sum", "avx", &cfg);
    let a = std::fs::read(quiet.join(&key.0).join("manifest.json")).unwrap();
    let b = std::fs::read(sampled.join(&key.0).join("manifest.json")).unwrap();
    assert_eq!(a, b, "manifest.json diverged with sampling on");
    let normalize = |root: &PathBuf| {
        let mut recs = Store::open(root).unwrap().study(&key).shards().unwrap();
        recs.sort_by_key(|r| (r.campaign, r.start));
        for r in &mut recs {
            r.wall_ns = 0;
        }
        recs
    };
    let (a, b) = (normalize(&quiet), normalize(&sampled));
    assert_eq!(a.len(), b.len(), "shard count diverged with sampling on");
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(
            (x.campaign, x.start, x.end),
            (y.campaign, y.start, y.end),
            "shard coordinates diverged"
        );
        assert_eq!(x.experiments, y.experiments, "experiments diverged");
    }
    assert!(
        sampled.join("telemetry").join("series.jsonl").exists(),
        "sampler must have persisted its series"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// One random mutation (truncation or bit flip at an arbitrary
    /// offset) of a complete study's shard log: the store must never
    /// silently change the merged result. Either the surviving records
    /// still merge bit-identically, or reading fails loudly and
    /// fsck + resume reproduces the reference exactly.
    #[test]
    fn random_corruption_is_loud_or_harmless(
        case_seed in 0u64..1000,
        flip in 0u64..2,
    ) {
        let w = workload();
        let cfg = StudyConfig {
            experiments_per_campaign: 8,
            target_margin: 50.0,
            min_campaigns: 4,
            max_campaigns: 4,
            seed: 0x0BAD_C0DE,
            ..StudyConfig::default()
        };
        let prog = prepare(&w, SiteCategory::PureData).unwrap();
        let reference = run_study(&prog, &w, &cfg).unwrap();

        let dir = std::env::temp_dir().join(format!(
            "vulfi_chaos_prop_{}_{}_{}",
            std::process::id(), case_seed, flip
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        let opts = || RunOptions { shard_size: 3, max_shards: None, progress: None, trace: None };
        run_study_persistent(&prog, &w, "vector sum", "avx", &cfg, &store, opts()).unwrap();

        let key = vulfi_orch::study_key(&prog, "vector sum", "avx", &cfg);
        let log = store.root().join(&key.0).join("shards.jsonl");
        let mut bytes = std::fs::read(&log).unwrap();
        let mut chaos = Chaos(0x9E37_79B9 ^ case_seed);
        if flip == 0 {
            let pos = chaos.below(bytes.len() as u64) as usize;
            bytes[pos] ^= 1 << chaos.below(8);
        } else {
            let cut = 1 + chaos.below(bytes.len() as u64 - 1) as usize;
            bytes.truncate(bytes.len() - cut);
        }
        std::fs::write(&log, &bytes).unwrap();

        match store.study(&key).shards() {
            Ok(recs) => {
                // Readable after corruption (at worst a skipped torn
                // tail): whatever merges must already be the reference,
                // never a silently altered result.
                if let Some(r) = merge(&cfg, prog.category, &recs) {
                    assert_identical(&r, &reference);
                }
            }
            Err(e) => {
                prop_assert!(e.0.contains("fsck"), "loud error must point at fsck: {}", e);
                store.fsck(true).unwrap();
            }
        }
        let out = run_study_persistent(&prog, &w, "vector sum", "avx", &cfg, &store, opts()).unwrap();
        assert_identical(&out.result.unwrap(), &reference);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
