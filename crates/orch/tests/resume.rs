//! End-to-end orchestration tests: kill/resume equivalence, thread- and
//! shard-size-independence, and store crash tolerance.

use std::path::PathBuf;

use vir::analysis::SiteCategory;
use vulfi::{prepare, run_study, StudyConfig, StudyResult};
use vulfi_orch::{plan_shards, run_study_persistent, set_jobs, RunOptions, ShardRecord, Store};

fn workload() -> vbench::SpmdWorkload {
    vbench::micro_benchmark("vector sum", spmdc::VectorIsa::Avx, vbench::Scale::Test).unwrap()
}

fn cfg() -> StudyConfig {
    StudyConfig {
        experiments_per_campaign: 12,
        target_margin: 50.0,
        min_campaigns: 4,
        max_campaigns: 5,
        seed: 0xABCD,
        ..StudyConfig::default()
    }
}

fn temp_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vulfi_orch_test_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Bit-identical comparison of two study results.
fn assert_identical(a: &StudyResult, b: &StudyResult) {
    assert_eq!(a.category, b.category);
    assert_eq!(a.converged, b.converged);
    assert_eq!(a.counts, b.counts);
    let bits = |xs: &[f64]| -> Vec<u64> { xs.iter().map(|x| x.to_bits()).collect() };
    assert_eq!(
        bits(&a.samples),
        bits(&b.samples),
        "sample rates must match bit-for-bit"
    );
    assert_eq!(a.summary.mean.to_bits(), b.summary.mean.to_bits());
    assert_eq!(a.summary.std_dev.to_bits(), b.summary.std_dev.to_bits());
    assert_eq!(a.summary.margin_95.to_bits(), b.summary.margin_95.to_bits());
    assert_eq!(a.summary.campaigns, b.summary.campaigns);
}

#[test]
fn killed_study_resumes_and_matches_uninterrupted_run() {
    let w = workload();
    let cfg = cfg();
    let prog = prepare(&w, SiteCategory::PureData).unwrap();

    // The uninterrupted reference, straight through vulfi::run_study.
    let reference = run_study(&prog, &w, &cfg).unwrap();

    let store = Store::open(temp_store("resume")).unwrap();
    let total = plan_shards(&cfg, 5).len();

    // "Kill" the study after 2 shards.
    let first = run_study_persistent(
        &prog,
        &w,
        "vector sum",
        "avx",
        &cfg,
        &store,
        RunOptions {
            shard_size: 5,
            max_shards: Some(2),
            progress: None,
            trace: None,
        },
    )
    .unwrap();
    assert_eq!(first.executed_shards, 2);
    assert_eq!(first.pending_shards, total - 2);
    assert!(
        first.result.is_none(),
        "partial study must not produce a result"
    );

    // Resume: only the missing shards may execute.
    let second = run_study_persistent(
        &prog,
        &w,
        "vector sum",
        "avx",
        &cfg,
        &store,
        RunOptions {
            shard_size: 5,
            max_shards: None,
            progress: None,
            trace: None,
        },
    )
    .unwrap();
    assert_eq!(
        second.reused_shards, 2,
        "resume must reuse the stored shards"
    );
    assert_eq!(second.executed_shards, total - 2);
    assert_eq!(second.pending_shards, 0);
    assert_identical(&second.result.unwrap(), &reference);

    // Third run: everything cached, nothing executes.
    let third = run_study_persistent(
        &prog,
        &w,
        "vector sum",
        "avx",
        &cfg,
        &store,
        RunOptions::default(),
    )
    .unwrap();
    assert_eq!(third.executed_shards, 0);
    assert_identical(&third.result.unwrap(), &reference);
}

#[test]
fn result_is_independent_of_threads_and_shard_size() {
    let w = workload();
    let cfg = cfg();
    let prog = prepare(&w, SiteCategory::Control).unwrap();
    let reference = run_study(&prog, &w, &cfg).unwrap();

    for (jobs, shard_size, tag) in [(1, 3, "t1s3"), (4, 50, "t4s50"), (2, 1, "t2s1")] {
        set_jobs(jobs);
        let store = Store::open(temp_store(tag)).unwrap();
        let out = run_study_persistent(
            &prog,
            &w,
            "vector sum",
            "avx",
            &cfg,
            &store,
            RunOptions {
                shard_size,
                max_shards: None,
                progress: None,
                trace: None,
            },
        )
        .unwrap();
        assert_identical(&out.result.unwrap(), &reference);
    }
    set_jobs(0);
}

#[test]
fn progress_callback_reports_monotone_counts() {
    let w = workload();
    let cfg = cfg();
    let prog = prepare(&w, SiteCategory::PureData).unwrap();
    let store = Store::open(temp_store("progress")).unwrap();

    let seen = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    let sink = std::sync::Arc::clone(&seen);
    let out = run_study_persistent(
        &prog,
        &w,
        "vector sum",
        "avx",
        &cfg,
        &store,
        RunOptions {
            shard_size: 6,
            max_shards: None,
            progress: Some(Box::new(move |snap| {
                sink.lock().unwrap().push((snap.done, snap.counts.total()));
            })),
            trace: None,
        },
    )
    .unwrap();

    let seen = seen.lock().unwrap().clone();
    assert_eq!(
        seen.len(),
        out.executed_shards + 1,
        "one callback per shard plus the final snapshot"
    );
    let total = (cfg.experiments_per_campaign * cfg.max_campaigns) as u64;
    for window in seen.windows(2) {
        assert!(window[0].0 <= window[1].0, "done must never decrease");
    }
    assert_eq!(
        seen.last().unwrap().0,
        total,
        "stream always ends with done == total on a completed study"
    );
    assert_eq!(out.progress.done, total);
    assert!(out.progress.experiments_per_sec > 0.0);
    assert!(out.dyn_insts > 0);
}

#[test]
fn store_skips_truncated_trailing_line() {
    let w = workload();
    let cfg = cfg();
    let prog = prepare(&w, SiteCategory::PureData).unwrap();
    let store = Store::open(temp_store("truncated")).unwrap();

    // Write two shards, then simulate a kill mid-append.
    run_study_persistent(
        &prog,
        &w,
        "vector sum",
        "avx",
        &cfg,
        &store,
        RunOptions {
            shard_size: 5,
            max_shards: Some(2),
            progress: None,
            trace: None,
        },
    )
    .unwrap();
    let key = vulfi_orch::study_key(&prog, "vector sum", "avx", &cfg);
    let log = store.root().join(&key.0).join("shards.jsonl");
    let mut text = std::fs::read_to_string(&log).unwrap();
    let records: Vec<ShardRecord> = store.study(&key).shards().unwrap();
    assert_eq!(records.len(), 2);
    text.push_str("{\"campaign\": 3, \"start\": 0, \"end\": 5, \"experi");
    std::fs::write(&log, &text).unwrap();
    assert_eq!(
        store.study(&key).shards().unwrap().len(),
        2,
        "truncated line must be skipped, not fatal"
    );

    // And the resumed run still completes and matches the reference.
    let reference = run_study(&prog, &w, &cfg).unwrap();
    let out = run_study_persistent(
        &prog,
        &w,
        "vector sum",
        "avx",
        &cfg,
        &store,
        RunOptions::default(),
    )
    .unwrap();
    assert_identical(&out.result.unwrap(), &reference);
}
