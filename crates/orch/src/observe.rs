//! Live observability for running studies.
//!
//! The runner updates a [`Progress`] under its store lock after every
//! shard; callers receive a [`ProgressSnapshot`] through their callback
//! and render it however they like ([`ProgressSnapshot::render_line`]
//! for terminals, `serde_json` for `--json` streams).

use std::time::Instant;

use vulfi::OutcomeCounts;

/// Time constant of the throughput EWMA: a shard landed `tau` seconds
/// ago has decayed to ~37% weight. Ten seconds tracks ramp-up and
/// stragglers without jittering on every shard.
const EWMA_TAU_SECS: f64 = 10.0;

/// One exponentially-weighted moving-average step with irregular
/// sampling: `alpha = 1 - exp(-dt/tau)`, so the smoothing is invariant
/// to how often shards happen to land.
fn ewma_step(prev: Option<f64>, rate: f64, dt: f64) -> f64 {
    match prev {
        None => rate,
        Some(prev) => {
            let alpha = 1.0 - (-dt / EWMA_TAU_SECS).exp();
            prev + alpha * (rate - prev)
        }
    }
}

/// Humanize a count for status lines: `950` → `"950"`,
/// `1_200_000` → `"1.2M"`, `123_456_789` → `"123M"`.
pub fn humanize(n: u64) -> String {
    const UNITS: [(u64, &str); 4] = [
        (1_000_000_000_000, "T"),
        (1_000_000_000, "G"),
        (1_000_000, "M"),
        (1_000, "k"),
    ];
    for (scale, suffix) in UNITS {
        if n >= scale {
            let v = n as f64 / scale as f64;
            let body = if v >= 100.0 {
                format!("{v:.0}")
            } else {
                let s = format!("{v:.1}");
                s.strip_suffix(".0").map(str::to_string).unwrap_or(s)
            };
            return format!("{body}{suffix}");
        }
    }
    n.to_string()
}

/// Mutable progress state owned by the runner.
#[derive(Debug)]
pub struct Progress {
    /// Experiments in the full plan (all campaigns × experiments each).
    pub total: u64,
    /// Experiments covered by shards reused from the store.
    pub resumed: u64,
    /// Experiments executed by this invocation so far.
    pub executed: u64,
    /// Outcome counts over everything seen so far (resumed + executed).
    pub counts: OutcomeCounts,
    /// Golden-run dynamic instructions over everything seen so far.
    pub dyn_insts: u64,
    started: Instant,
    /// When the most recent shard landed (EWMA sampling clock).
    last_shard: Instant,
    /// EWMA of recent shard throughput, exp/s. `None` until the first
    /// shard of this invocation lands.
    ewma_eps: Option<f64>,
}

impl Progress {
    pub fn start(total: u64) -> Progress {
        let now = Instant::now();
        Progress {
            total,
            resumed: 0,
            executed: 0,
            counts: OutcomeCounts::default(),
            dyn_insts: 0,
            started: now,
            last_shard: now,
            ewma_eps: None,
        }
    }

    /// Record one completed shard of `experiments` experiments: bumps
    /// the executed count and folds the shard's instantaneous
    /// throughput into the EWMA that [`snapshot`](Progress::snapshot)
    /// reports, so rate and ETA track *recent* speed rather than the
    /// whole-invocation average (which goes stale after a slow start or
    /// a resumed gap).
    pub fn note_shard(&mut self, experiments: u64) {
        let now = Instant::now();
        let dt = now.duration_since(self.last_shard).as_secs_f64();
        self.last_shard = now;
        self.executed += experiments;
        if dt > 0.0 {
            self.ewma_eps = Some(ewma_step(self.ewma_eps, experiments as f64 / dt, dt));
        }
    }

    pub fn snapshot(&self) -> ProgressSnapshot {
        let elapsed = self.started.elapsed().as_secs_f64();
        // Recent (EWMA) throughput when shards have landed; before that,
        // the whole-invocation average over what this invocation actually
        // ran — resumed shards were free and would inflate the ETA's
        // denominator either way.
        let eps = self.ewma_eps.unwrap_or(if elapsed > 0.0 {
            self.executed as f64 / elapsed
        } else {
            0.0
        });
        let done = self.resumed + self.executed;
        let remaining = self.total.saturating_sub(done);
        let eta_secs = if eps > 0.0 {
            remaining as f64 / eps
        } else {
            f64::INFINITY
        };
        ProgressSnapshot {
            done,
            total: self.total,
            resumed: self.resumed,
            executed: self.executed,
            elapsed_secs: elapsed,
            experiments_per_sec: eps,
            eta_secs,
            counts: self.counts,
            dyn_insts: self.dyn_insts,
        }
    }
}

/// One point-in-time view of a study run.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ProgressSnapshot {
    pub done: u64,
    pub total: u64,
    pub resumed: u64,
    pub executed: u64,
    pub elapsed_secs: f64,
    pub experiments_per_sec: f64,
    /// `Infinity` until the first shard of this invocation lands.
    pub eta_secs: f64,
    pub counts: OutcomeCounts,
    pub dyn_insts: u64,
}

impl ProgressSnapshot {
    /// A single status line, e.g.
    /// `[ 120/600] 412.3 exp/s ETA 1.2s | SDC 34 Benign 71 Crash 15 | 1.2M dyn insts`.
    pub fn render_line(&self) -> String {
        let eta = if self.eta_secs.is_finite() {
            format!("{:.1}s", self.eta_secs)
        } else {
            "?".to_string()
        };
        format!(
            "[{:>6}/{}] {:.1} exp/s ETA {} | SDC {} Benign {} Crash {} | {} dyn insts",
            self.done,
            self.total,
            self.experiments_per_sec,
            eta,
            self.counts.sdc,
            self.counts.benign,
            self.counts.crash,
            humanize(self.dyn_insts),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_accounts_resumed_and_executed() {
        let mut p = Progress::start(100);
        p.resumed = 40;
        p.executed = 10;
        p.counts.sdc = 5;
        let s = p.snapshot();
        assert_eq!(s.done, 50);
        assert_eq!(s.total, 100);
        assert!(s.experiments_per_sec >= 0.0);
        let line = s.render_line();
        assert!(line.contains("50/100"), "{line}");
        assert!(line.contains("SDC 5"), "{line}");
    }

    #[test]
    fn humanize_picks_sensible_units() {
        assert_eq!(humanize(0), "0");
        assert_eq!(humanize(950), "950");
        assert_eq!(humanize(1_000), "1k");
        assert_eq!(humanize(1_500), "1.5k");
        assert_eq!(humanize(1_200_000), "1.2M");
        assert_eq!(humanize(2_000_000), "2M");
        assert_eq!(humanize(123_456_789), "123M");
        assert_eq!(humanize(7_300_000_000), "7.3G");
        assert_eq!(humanize(2_500_000_000_000), "2.5T");
    }

    #[test]
    fn render_line_humanizes_dyn_insts() {
        let mut p = Progress::start(600);
        p.executed = 120;
        p.dyn_insts = 1_200_000;
        let line = p.snapshot().render_line();
        assert!(line.contains("1.2M dyn insts"), "{line}");
    }

    #[test]
    fn ewma_tracks_recent_rate() {
        // First sample seeds the average directly.
        assert_eq!(ewma_step(None, 100.0, 0.1), 100.0);
        // After a long gap the new rate dominates...
        let v = ewma_step(Some(100.0), 10.0, 60.0);
        assert!((v - 10.0).abs() < 1.0, "{v}");
        // ...while a quick sample only nudges it.
        let v = ewma_step(Some(100.0), 10.0, 0.1);
        assert!(v > 95.0 && v < 100.0, "{v}");
    }

    #[test]
    fn note_shard_switches_rate_to_recent_throughput() {
        let mut p = Progress::start(1000);
        p.note_shard(25);
        p.note_shard(25);
        assert_eq!(p.executed, 50);
        let s = p.snapshot();
        assert!(s.experiments_per_sec > 0.0, "{}", s.experiments_per_sec);
        assert!(s.eta_secs.is_finite());
    }

    #[test]
    fn snapshot_serializes() {
        let p = Progress::start(10);
        let text = serde_json::to_string(&p.snapshot()).unwrap();
        assert!(
            text.contains("\"total\": 10") || text.contains("\"total\":10"),
            "{text}"
        );
    }
}
