//! Live observability for running studies.
//!
//! The runner updates a [`Progress`] under its store lock after every
//! shard; callers receive a [`ProgressSnapshot`] through their callback
//! and render it however they like ([`ProgressSnapshot::render_line`]
//! for terminals, `serde_json` for `--json` streams).

use std::time::Instant;

use vulfi::OutcomeCounts;

/// Mutable progress state owned by the runner.
#[derive(Debug)]
pub struct Progress {
    /// Experiments in the full plan (all campaigns × experiments each).
    pub total: u64,
    /// Experiments covered by shards reused from the store.
    pub resumed: u64,
    /// Experiments executed by this invocation so far.
    pub executed: u64,
    /// Outcome counts over everything seen so far (resumed + executed).
    pub counts: OutcomeCounts,
    /// Golden-run dynamic instructions over everything seen so far.
    pub dyn_insts: u64,
    started: Instant,
}

impl Progress {
    pub fn start(total: u64) -> Progress {
        Progress {
            total,
            resumed: 0,
            executed: 0,
            counts: OutcomeCounts::default(),
            dyn_insts: 0,
            started: Instant::now(),
        }
    }

    pub fn snapshot(&self) -> ProgressSnapshot {
        let elapsed = self.started.elapsed().as_secs_f64();
        // Rate over what this invocation actually ran; resumed shards
        // were free and would inflate the ETA's denominator.
        let eps = if elapsed > 0.0 {
            self.executed as f64 / elapsed
        } else {
            0.0
        };
        let done = self.resumed + self.executed;
        let remaining = self.total.saturating_sub(done);
        let eta_secs = if eps > 0.0 {
            remaining as f64 / eps
        } else {
            f64::INFINITY
        };
        ProgressSnapshot {
            done,
            total: self.total,
            resumed: self.resumed,
            executed: self.executed,
            elapsed_secs: elapsed,
            experiments_per_sec: eps,
            eta_secs,
            counts: self.counts,
            dyn_insts: self.dyn_insts,
        }
    }
}

/// One point-in-time view of a study run.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ProgressSnapshot {
    pub done: u64,
    pub total: u64,
    pub resumed: u64,
    pub executed: u64,
    pub elapsed_secs: f64,
    pub experiments_per_sec: f64,
    /// `Infinity` until the first shard of this invocation lands.
    pub eta_secs: f64,
    pub counts: OutcomeCounts,
    pub dyn_insts: u64,
}

impl ProgressSnapshot {
    /// A single status line, e.g.
    /// `[ 120/600] 412.3 exp/s ETA 1.2s | SDC 34 Benign 71 Crash 15 | 1.2M dyn insts`.
    pub fn render_line(&self) -> String {
        let eta = if self.eta_secs.is_finite() {
            format!("{:.1}s", self.eta_secs)
        } else {
            "?".to_string()
        };
        format!(
            "[{:>6}/{}] {:.1} exp/s ETA {} | SDC {} Benign {} Crash {} | {} dyn insts",
            self.done,
            self.total,
            self.experiments_per_sec,
            eta,
            self.counts.sdc,
            self.counts.benign,
            self.counts.crash,
            self.dyn_insts,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_accounts_resumed_and_executed() {
        let mut p = Progress::start(100);
        p.resumed = 40;
        p.executed = 10;
        p.counts.sdc = 5;
        let s = p.snapshot();
        assert_eq!(s.done, 50);
        assert_eq!(s.total, 100);
        assert!(s.experiments_per_sec >= 0.0);
        let line = s.render_line();
        assert!(line.contains("50/100"), "{line}");
        assert!(line.contains("SDC 5"), "{line}");
    }

    #[test]
    fn snapshot_serializes() {
        let p = Progress::start(10);
        let text = serde_json::to_string(&p.snapshot()).unwrap();
        assert!(
            text.contains("\"total\": 10") || text.contains("\"total\":10"),
            "{text}"
        );
    }
}
