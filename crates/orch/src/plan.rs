//! Deterministic shard planning and order-independent merging.
//!
//! A **shard** is a contiguous range of experiment indices within one
//! campaign. Because every experiment's RNG is derived from
//! `(campaign, index)` alone (`vulfi::campaign_seed` /
//! `vulfi::experiment_rng`), any partition of a study into shards —
//! executed in any order, on any number of threads, across any number of
//! interrupted runs — merges back to the bit-identical result of
//! `vulfi::run_study`.

use vir::analysis::SiteCategory;
use vulfi::{study_converged, Experiment, OutcomeCounts, StudyConfig, StudyResult, StudySummary};

use crate::store::ShardRecord;

/// One unit of schedulable work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardJob {
    pub campaign: usize,
    pub start: usize,
    pub end: usize,
}

impl ShardJob {
    pub fn experiments(&self) -> usize {
        self.end - self.start
    }
}

/// Split a study into shards of at most `shard_size` experiments.
///
/// All `max_campaigns` campaigns are planned; merging applies the
/// stopping rule on the campaign prefix, so extra campaigns past the
/// convergence point are stored but never counted.
pub fn plan_shards(cfg: &StudyConfig, shard_size: usize) -> Vec<ShardJob> {
    let shard_size = shard_size.max(1);
    let mut jobs = Vec::new();
    for campaign in 0..cfg.max_campaigns {
        let mut start = 0;
        while start < cfg.experiments_per_campaign {
            let end = (start + shard_size).min(cfg.experiments_per_campaign);
            jobs.push(ShardJob {
                campaign,
                start,
                end,
            });
            start = end;
        }
    }
    jobs
}

/// Which planned jobs are already covered by stored shards?
///
/// Coverage is tracked per experiment index, so records written under a
/// different shard size still count.
pub fn missing_jobs(plan: &[ShardJob], done: &[ShardRecord], cfg: &StudyConfig) -> Vec<ShardJob> {
    let covered = coverage(done, cfg);
    plan.iter()
        .filter(|j| (j.start..j.end).any(|i| !covered[j.campaign][i]))
        .copied()
        .collect()
}

fn coverage(done: &[ShardRecord], cfg: &StudyConfig) -> Vec<Vec<bool>> {
    let mut covered = vec![vec![false; cfg.experiments_per_campaign]; cfg.max_campaigns];
    for rec in done {
        if rec.campaign >= cfg.max_campaigns {
            continue;
        }
        for (off, _) in rec.experiments.iter().enumerate() {
            let i = rec.start + off;
            if i < rec.end && i < cfg.experiments_per_campaign {
                covered[rec.campaign][i] = true;
            }
        }
    }
    covered
}

/// Number of experiments already covered by stored shards.
pub fn covered_experiments(done: &[ShardRecord], cfg: &StudyConfig) -> usize {
    coverage(done, cfg)
        .iter()
        .map(|c| c.iter().filter(|&&b| b).count())
        .sum()
}

/// Merge stored shards into the study result, or `None` while campaigns
/// needed by the stopping rule are still incomplete.
///
/// Mirrors `vulfi::run_study` exactly: walk campaigns in order,
/// accumulate each campaign's SDC rate as one sample, and stop as soon
/// as the ±`target_margin` @95% rule fires. Shards of campaigns past the
/// stopping point are ignored, so the merged result is bit-identical to
/// an uninterrupted sequential run no matter how (or how often) the
/// study was sharded.
pub fn merge(
    cfg: &StudyConfig,
    category: SiteCategory,
    done: &[ShardRecord],
) -> Option<StudyResult> {
    // Slot experiments by (campaign, index); determinism makes duplicate
    // records (e.g. re-runs under a different shard size) identical, so
    // last-write-wins is safe.
    let mut slots: Vec<Vec<Option<&Experiment>>> =
        vec![vec![None; cfg.experiments_per_campaign]; cfg.max_campaigns];
    for rec in done {
        if rec.campaign >= cfg.max_campaigns {
            continue;
        }
        for (off, e) in rec.experiments.iter().enumerate() {
            let i = rec.start + off;
            if i < rec.end && i < cfg.experiments_per_campaign {
                slots[rec.campaign][i] = Some(e);
            }
        }
    }

    let mut samples = Vec::new();
    let mut counts = OutcomeCounts::default();
    let mut converged = false;
    for campaign in slots.iter().take(cfg.max_campaigns) {
        if campaign.iter().any(Option::is_none) {
            // The stopping rule needs this campaign and it isn't done.
            return None;
        }
        let mut ccounts = OutcomeCounts::default();
        for e in campaign.iter().flatten() {
            ccounts.add(e);
        }
        samples.push(ccounts.sdc_rate());
        counts.merge(&ccounts);
        if study_converged(&samples, cfg.target_margin, cfg.min_campaigns) {
            converged = true;
            break;
        }
    }
    Some(StudyResult {
        category,
        summary: StudySummary::from_samples(&samples),
        samples,
        counts,
        converged,
    })
}

/// Total golden-run dynamic instructions over the campaigns a merged
/// result actually used.
pub fn merged_dyn_insts(cfg: &StudyConfig, result: &StudyResult, done: &[ShardRecord]) -> u64 {
    let used = result.samples.len();
    done.iter()
        .filter(|r| r.campaign < used.min(cfg.max_campaigns))
        .flat_map(|r| r.experiments.iter())
        .map(|e| e.golden_dyn_insts)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> StudyConfig {
        StudyConfig {
            experiments_per_campaign: 10,
            target_margin: 3.0,
            min_campaigns: 2,
            max_campaigns: 3,
            seed: 1,
            ..StudyConfig::default()
        }
    }

    #[test]
    fn plan_covers_every_experiment_once() {
        let plan = plan_shards(&cfg(), 4);
        // 10 experiments / shard size 4 → 3 shards per campaign.
        assert_eq!(plan.len(), 9);
        for c in 0..3 {
            let total: usize = plan
                .iter()
                .filter(|j| j.campaign == c)
                .map(ShardJob::experiments)
                .sum();
            assert_eq!(total, 10);
        }
        assert_eq!(plan_shards(&cfg(), 1000).len(), 3, "one shard per campaign");
    }

    fn fake_record(campaign: usize, start: usize, end: usize) -> ShardRecord {
        let experiments = (start..end)
            .map(|_| Experiment {
                outcome: vulfi::Outcome::Benign,
                detected: false,
                injection: None,
                input: 0,
                dynamic_sites: 1,
                golden_dyn_insts: 5,
            })
            .collect();
        ShardRecord {
            campaign,
            start,
            end,
            experiments,
            wall_ns: 0,
        }
    }

    #[test]
    fn missing_jobs_shrink_as_shards_land() {
        let cfg = cfg();
        let plan = plan_shards(&cfg, 5); // 2 shards x 3 campaigns
        assert_eq!(missing_jobs(&plan, &[], &cfg).len(), 6);
        let done = vec![fake_record(0, 0, 5), fake_record(1, 5, 10)];
        let missing = missing_jobs(&plan, &done, &cfg);
        assert_eq!(missing.len(), 4);
        assert!(!missing.contains(&ShardJob {
            campaign: 0,
            start: 0,
            end: 5
        }));
        assert_eq!(covered_experiments(&done, &cfg), 10);
    }

    #[test]
    fn coverage_is_per_experiment_not_per_shard() {
        // Records written under shard size 2 satisfy a size-5 plan.
        let cfg = cfg();
        let plan = plan_shards(&cfg, 5);
        let done: Vec<ShardRecord> = (0..5).map(|k| fake_record(0, 2 * k, 2 * k + 2)).collect();
        let missing = missing_jobs(&plan, &done, &cfg);
        assert!(missing.iter().all(|j| j.campaign != 0));
    }

    #[test]
    fn merge_waits_for_needed_campaigns() {
        // Convergence needs >= 4 samples (the normality screen), so plan
        // 6 campaigns and leave the last two unrun: the stopping rule
        // fires at campaign 4 and never needs them.
        let cfg = StudyConfig {
            experiments_per_campaign: 10,
            target_margin: 3.0,
            min_campaigns: 4,
            max_campaigns: 6,
            seed: 1,
            ..StudyConfig::default()
        };
        assert!(merge(&cfg, SiteCategory::PureData, &[fake_record(0, 0, 10)]).is_none());
        let done: Vec<ShardRecord> = (0..4).map(|c| fake_record(c, 0, 10)).collect();
        let r = merge(&cfg, SiteCategory::PureData, &done).unwrap();
        // All-benign → zero-variance samples → converged at min_campaigns.
        assert!(r.converged);
        assert_eq!(r.samples, vec![0.0; 4]);
        assert_eq!(r.counts.total(), 40);
        assert_eq!(merged_dyn_insts(&cfg, &r, &done), 200);
    }
}
