//! Persistent trace shards: per-experiment spans written next to the
//! result store, with the *same* crash-tolerance contract.
//!
//! Layout under the trace root (a sibling of the result store, chosen
//! by `vulfi study --trace <dir>`):
//!
//! ```text
//! <trace-root>/<study-key>/
//!   traces.jsonl        # one checksummed JSON line per traced shard
//!   traces.quarantine/  # corrupt logs moved aside by fsck --repair
//! ```
//!
//! Every line is a [`TraceShard`] in the store's checksummed format
//! (`{json}\tcrc32=xxxxxxxx`, leading-newline appends, torn-tail
//! recovery, fsck quarantine + salvage) via the shared
//! [`CheckedLog`](crate::store) engine — a kill tears at most the
//! in-flight line, a flipped byte is detected rather than summarized,
//! and `vulfi trace fsck --repair` salvages every intact record.
//!
//! Shards are **self-describing**: each carries the workload, category,
//! and ISA of its study, so `vulfi trace summarize` needs only the
//! trace root — no result store, no manifest. Re-executed shards (from
//! resumed runs) may duplicate coordinates; [`summarize`] deduplicates
//! by `(study, campaign, experiment)` with last-write-wins, so a resume
//! never double-counts.

use std::fs;
use std::path::{Path, PathBuf};

use std::collections::BTreeMap;

use vulfi::{ExperimentTrace, Outcome};

use crate::key::StudyKey;
use crate::store::{CheckedLog, FsckReport, StudyFsck};
use crate::OrchError;

/// One traced shard: the spans of a contiguous run of experiments of
/// one campaign, plus enough study identity to be read standalone.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceShard {
    pub campaign: usize,
    /// Experiment index range `[start, end)` within the campaign.
    pub start: usize,
    pub end: usize,
    pub workload: String,
    /// §II-C category the study injected (`pure-data`/`control`/`address`).
    pub category: String,
    pub isa: String,
    /// Fault model the study injected (full parameterized name, e.g.
    /// `multi-bit-burst:2`).
    pub model: String,
    pub traces: Vec<ExperimentTrace>,
}

// Manual serde: trace logs written before the fault model existed have
// no `model` key; read them as single-bit-flip instead of erroring.
impl serde::Serialize for TraceShard {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("campaign".to_string(), self.campaign.to_value()),
            ("start".to_string(), self.start.to_value()),
            ("end".to_string(), self.end.to_value()),
            ("workload".to_string(), self.workload.to_value()),
            ("category".to_string(), self.category.to_value()),
            ("isa".to_string(), self.isa.to_value()),
            ("model".to_string(), self.model.to_value()),
            ("traces".to_string(), self.traces.to_value()),
        ])
    }
}

impl serde::Deserialize for TraceShard {
    fn from_value(v: &serde::Value) -> Result<TraceShard, serde::DeError> {
        Ok(TraceShard {
            campaign: serde::field(v, "campaign")?,
            start: serde::field(v, "start")?,
            end: serde::field(v, "end")?,
            workload: serde::field(v, "workload")?,
            category: serde::field(v, "category")?,
            isa: serde::field(v, "isa")?,
            model: match v.get("model") {
                Some(m) => String::from_value(m)?,
                None => vulfi::FaultModel::default().name(),
            },
            traces: serde::field(v, "traces")?,
        })
    }
}

/// A directory of per-study trace logs.
pub struct TraceStore {
    root: PathBuf,
}

impl TraceStore {
    /// Open (creating if needed) a trace store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<TraceStore, OrchError> {
        let root = root.into();
        fs::create_dir_all(&root)
            .map_err(|e| OrchError(format!("create trace store {}: {e}", root.display())))?;
        Ok(TraceStore { root })
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    pub fn study(&self, key: &StudyKey) -> TraceLog {
        TraceLog {
            dir: self.root.join(&key.0),
        }
    }

    /// Keys of every study directory holding a trace log (or the
    /// quarantined remains of one).
    pub fn studies(&self) -> Result<Vec<StudyKey>, OrchError> {
        let mut keys = Vec::new();
        let entries = fs::read_dir(&self.root)
            .map_err(|e| OrchError(format!("read trace store {}: {e}", self.root.display())))?;
        for entry in entries {
            let entry = entry.map_err(|e| OrchError(format!("read trace store entry: {e}")))?;
            let p = entry.path();
            if p.join("traces.jsonl").is_file() || p.join("traces.quarantine").is_dir() {
                keys.push(StudyKey(entry.file_name().to_string_lossy().into_owned()));
            }
        }
        keys.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(keys)
    }

    /// Check (and with `repair`, heal) every study's trace log.
    pub fn fsck(&self, repair: bool) -> Result<FsckReport, OrchError> {
        let mut report = FsckReport::default();
        for key in self.studies()? {
            report.studies.push(self.study(&key).fsck(repair)?);
        }
        Ok(report)
    }
}

/// One study's trace log.
pub struct TraceLog {
    dir: PathBuf,
}

impl TraceLog {
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn log(&self) -> CheckedLog {
        CheckedLog::new(
            self.dir.join("traces.jsonl"),
            self.dir.join("traces.quarantine"),
            "vulfi trace fsck --repair",
        )
    }

    pub fn exists(&self) -> bool {
        self.dir.join("traces.jsonl").is_file()
    }

    /// Append one traced shard as a single checksummed JSONL line (see
    /// `CheckedLog::append` for the crash-safety contract).
    pub fn append_shard(&self, shard: &TraceShard) -> Result<(), OrchError> {
        self.log().append(shard)
    }

    /// All fully-written trace shards. A torn trailing line is skipped;
    /// earlier corruption is an error pointing at `vulfi trace fsck` —
    /// a summary computed over silently-dropped spans would be skewed
    /// without a trace.
    pub fn shards(&self) -> Result<Vec<TraceShard>, OrchError> {
        self.log().records()
    }

    /// Heal a torn trailing line left by a killed writer; called by the
    /// runner on every resumed traced study.
    pub fn trim_torn_tail(&self) -> Result<bool, OrchError> {
        self.log().trim_torn_tail::<TraceShard>()
    }

    /// Check this study's trace log; with `repair`, quarantine a
    /// damaged log and salvage every checksum-valid shard. Unlike the
    /// result store there is no manifest to invalidate: traces are an
    /// observability sidecar, and lost spans simply vanish from
    /// summaries (loudly, via the fsck report).
    pub fn fsck(&self, repair: bool) -> Result<StudyFsck, OrchError> {
        let key = StudyKey(
            self.dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default(),
        );
        self.log().fsck::<TraceShard>(key, repair)
    }
}

/// Propagation-distance percentiles (nearest-rank) over the spans that
/// recorded a propagation distance.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PropagationPercentiles {
    pub samples: usize,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub max: u64,
}

impl PropagationPercentiles {
    /// Nearest-rank percentiles of `samples` (need not be sorted).
    pub fn of(mut samples: Vec<u64>) -> Option<PropagationPercentiles> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_unstable();
        let rank = |q: f64| {
            let n = samples.len();
            let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
            samples[idx]
        };
        Some(PropagationPercentiles {
            samples: samples.len(),
            p50: rank(0.50),
            p90: rank(0.90),
            p99: rank(0.99),
            max: *samples.last().unwrap(),
        })
    }
}

/// Aggregates for one §II-C category.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CategorySummary {
    pub category: String,
    pub spans: usize,
    pub sdc: u64,
    pub benign: u64,
    pub crash: u64,
    /// `None` when no span in this category recorded a propagation
    /// distance.
    pub propagation: Option<PropagationPercentiles>,
}

/// One static site ranked by how often its faults became SDCs.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SiteSdcSummary {
    pub workload: String,
    pub site_id: u32,
    pub opcode: String,
    /// Experiments that injected this site and ended in SDC.
    pub sdc: u64,
    /// All experiments that injected this site.
    pub total: u64,
}

/// Store-wide roll-up of every trace shard.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TraceSummary {
    pub studies: usize,
    /// Deduplicated spans (one per experiment coordinate).
    pub spans: usize,
    /// Spans whose experiment actually injected a fault.
    pub injected: usize,
    pub categories: Vec<CategorySummary>,
    /// Top-N sites by SDC count (ties broken by total injections, then
    /// site id). Sites that never produced an SDC are omitted.
    pub top_sdc_sites: Vec<SiteSdcSummary>,
}

/// Roll up every study's trace shards: per-category outcome counts and
/// propagation-distance percentiles, plus the `top_n` most SDC-prone
/// static sites.
///
/// Duplicate experiment coordinates (a resumed run re-executing a
/// shard whose result append survived but whose trace append did not,
/// or vice versa) are deduplicated last-write-wins, so counts match a
/// single clean execution.
pub fn summarize(store: &TraceStore, top_n: usize) -> Result<TraceSummary, OrchError> {
    let mut spans: BTreeMap<(String, usize, usize), (String, String, ExperimentTrace)> =
        BTreeMap::new();
    let keys = store.studies()?;
    let studies = keys.len();
    for key in keys {
        for shard in store.study(&key).shards()? {
            for t in shard.traces {
                spans.insert(
                    (key.0.clone(), shard.campaign, t.index),
                    (shard.category.clone(), shard.workload.clone(), t),
                );
            }
        }
    }

    let mut categories: BTreeMap<String, (usize, u64, u64, u64, Vec<u64>)> = BTreeMap::new();
    let mut sites: BTreeMap<(String, u32), (String, u64, u64)> = BTreeMap::new();
    let mut injected = 0usize;
    for (category, workload, t) in spans.values() {
        let entry = categories.entry(category.clone()).or_default();
        entry.0 += 1;
        match t.outcome {
            Outcome::Sdc => entry.1 += 1,
            Outcome::Benign => entry.2 += 1,
            Outcome::Crash => entry.3 += 1,
        }
        if let Some(p) = t.propagation {
            entry.4.push(p);
        }
        if let Some(inj) = &t.injection {
            injected += 1;
            // Site ids are per-instrumented-module; qualify by the
            // workload so distinct programs never alias.
            let site = sites
                .entry((workload.clone(), inj.site_id))
                .or_insert_with(|| (inj.opcode.clone(), 0, 0));
            site.2 += 1;
            if t.outcome == Outcome::Sdc {
                site.1 += 1;
            }
        }
    }

    let categories = categories
        .into_iter()
        .map(
            |(category, (spans, sdc, benign, crash, samples))| CategorySummary {
                category,
                spans,
                sdc,
                benign,
                crash,
                propagation: PropagationPercentiles::of(samples),
            },
        )
        .collect();

    let mut top: Vec<SiteSdcSummary> = sites
        .into_iter()
        .filter(|(_, (_, sdc, _))| *sdc > 0)
        .map(
            |((workload, site_id), (opcode, sdc, total))| SiteSdcSummary {
                workload,
                site_id,
                opcode,
                sdc,
                total,
            },
        )
        .collect();
    top.sort_by(|a, b| {
        b.sdc
            .cmp(&a.sdc)
            .then(b.total.cmp(&a.total))
            .then(a.site_id.cmp(&b.site_id))
            .then(a.workload.cmp(&b.workload))
    });
    top.truncate(top_n);

    Ok(TraceSummary {
        studies,
        spans: spans.len(),
        injected,
        categories,
        top_sdc_sites: top,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize as _, Serialize as _};

    fn span(
        index: usize,
        outcome: Outcome,
        site: u32,
        propagation: Option<u64>,
    ) -> ExperimentTrace {
        ExperimentTrace {
            index,
            outcome,
            detected: false,
            input: 0,
            injection: Some(vulfi::TraceInjection {
                site_id: site,
                opcode: "fmul".to_string(),
                categories: vec!["pure-data".to_string()],
                lane: 0,
                bit: 3,
                occurrence: 1,
                at_dyn_inst: 10,
            }),
            golden_dyn_insts: 100,
            faulty_dyn_insts: 100,
            dyn_inst_delta: 0,
            propagation,
            trap: None,
            wall_ns: 1000,
        }
    }

    fn shard(campaign: usize, start: usize, traces: Vec<ExperimentTrace>) -> TraceShard {
        TraceShard {
            campaign,
            start,
            end: start + traces.len(),
            workload: "W".to_string(),
            category: "pure-data".to_string(),
            isa: "avx".to_string(),
            model: "single-bit-flip".to_string(),
            traces,
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("vulfi-tracestore-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn append_and_read_roundtrip() {
        let dir = tmpdir("roundtrip");
        let store = TraceStore::open(&dir).unwrap();
        let key = StudyKey("k1".to_string());
        let log = store.study(&key);
        log.append_shard(&shard(0, 0, vec![span(0, Outcome::Sdc, 1, Some(5))]))
            .unwrap();
        log.append_shard(&shard(0, 1, vec![span(1, Outcome::Benign, 2, None)]))
            .unwrap();
        let shards = log.shards().unwrap();
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].traces[0].outcome, Outcome::Sdc);
        assert_eq!(store.studies().unwrap(), vec![key]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pre_model_shard_lines_read_as_single_bit_flip() {
        // A shard serialized without the `model` key (the on-disk shape
        // before fault models existed) must still deserialize.
        let mut legacy = shard(2, 5, vec![span(5, Outcome::Sdc, 1, None)]);
        legacy.model = "multi-bit-burst:2".to_string();
        let v = legacy.to_value();
        let stripped = serde::Value::Object(
            v.as_object()
                .unwrap()
                .iter()
                .filter(|(k, _)| k != "model")
                .cloned()
                .collect(),
        );
        let back = TraceShard::from_value(&stripped).unwrap();
        assert_eq!(back.model, "single-bit-flip");
        assert_eq!(back.campaign, 2);
        assert_eq!(back.traces.len(), 1);
        // And with the key present it round-trips exactly.
        assert_eq!(TraceShard::from_value(&v).unwrap(), legacy);
    }

    #[test]
    fn torn_tail_skipped_and_trimmed() {
        let dir = tmpdir("torn");
        let store = TraceStore::open(&dir).unwrap();
        let log = store.study(&StudyKey("k".to_string()));
        log.append_shard(&shard(0, 0, vec![span(0, Outcome::Crash, 3, None)]))
            .unwrap();
        // Simulate a killed writer: a half-written line with no newline.
        let path = log.dir().join("traces.jsonl");
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(b"{\"campaign\":1,\"start\":");
        fs::write(&path, bytes).unwrap();

        let shards = log.shards().unwrap();
        assert_eq!(shards.len(), 1, "torn tail must be skipped, not fatal");
        assert!(log.trim_torn_tail().unwrap());
        assert!(!log.trim_torn_tail().unwrap(), "second trim is a no-op");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_file_corruption_is_loud_and_repairable() {
        let dir = tmpdir("corrupt");
        let store = TraceStore::open(&dir).unwrap();
        let log = store.study(&StudyKey("k".to_string()));
        log.append_shard(&shard(0, 0, vec![span(0, Outcome::Sdc, 1, Some(2))]))
            .unwrap();
        log.append_shard(&shard(0, 1, vec![span(1, Outcome::Benign, 1, None)]))
            .unwrap();
        // Flip a byte in the FIRST record's JSON body.
        let path = log.dir().join("traces.jsonl");
        let mut bytes = fs::read(&path).unwrap();
        let pos = bytes.iter().position(|b| *b == b'"').unwrap();
        bytes[pos + 1] ^= 0x20;
        fs::write(&path, bytes).unwrap();

        let err = log.shards().unwrap_err();
        assert!(
            err.0.contains("vulfi trace fsck"),
            "error must point at the trace fsck command: {err}"
        );

        let report = store.fsck(true).unwrap();
        assert!(report.needs_repair());
        let study = &report.studies[0];
        assert_eq!(study.valid, 1, "intact record salvaged");
        assert!(study.quarantined.is_some());
        // After repair the log reads cleanly with the surviving shard.
        let shards = log.shards().unwrap();
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].start, 1);
        // And a re-check is clean.
        assert!(!store.fsck(false).unwrap().dirty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn summarize_dedupes_and_ranks() {
        let dir = tmpdir("summarize");
        let store = TraceStore::open(&dir).unwrap();
        let log = store.study(&StudyKey("k".to_string()));
        log.append_shard(&shard(
            0,
            0,
            vec![
                span(0, Outcome::Sdc, 7, Some(10)),
                span(1, Outcome::Benign, 7, None),
                span(2, Outcome::Sdc, 9, Some(100)),
                span(3, Outcome::Crash, 9, Some(1)),
            ],
        ))
        .unwrap();
        // A resumed run re-executed experiments 2..4: same coordinates,
        // must not double-count.
        log.append_shard(&shard(
            0,
            2,
            vec![
                span(2, Outcome::Sdc, 9, Some(100)),
                span(3, Outcome::Crash, 9, Some(1)),
            ],
        ))
        .unwrap();

        let s = summarize(&store, 5).unwrap();
        assert_eq!(s.studies, 1);
        assert_eq!(s.spans, 4, "duplicates deduplicated by coordinates");
        assert_eq!(s.injected, 4);
        assert_eq!(s.categories.len(), 1);
        let c = &s.categories[0];
        assert_eq!(c.category, "pure-data");
        assert_eq!((c.sdc, c.benign, c.crash), (2, 1, 1));
        let p = c.propagation.as_ref().unwrap();
        assert_eq!(p.samples, 3);
        assert_eq!(p.p50, 10);
        assert_eq!(p.max, 100);
        // Site 9: 1 SDC of 2 injections; site 7: 1 SDC of 2. Tie on sdc
        // and total breaks toward the lower site id.
        assert_eq!(s.top_sdc_sites.len(), 2);
        assert_eq!(s.top_sdc_sites[0].site_id, 7);
        assert_eq!(s.top_sdc_sites[0].sdc, 1);
        assert_eq!(s.top_sdc_sites[0].total, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn percentiles_nearest_rank() {
        let p = PropagationPercentiles::of((1..=100).collect()).unwrap();
        assert_eq!(p.p50, 50);
        assert_eq!(p.p90, 90);
        assert_eq!(p.p99, 99);
        assert_eq!(p.max, 100);
        let one = PropagationPercentiles::of(vec![42]).unwrap();
        assert_eq!((one.p50, one.p90, one.p99, one.max), (42, 42, 42, 42));
        assert!(PropagationPercentiles::of(vec![]).is_none());
    }
}
