//! CRC-32/IEEE (the zlib/PNG polynomial), used to checksum every shard
//! record line so a flipped byte in `shards.jsonl` is *detected* instead
//! of silently changing merged results.

const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32/IEEE of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_standard_check_value() {
        // The CRC-32/IEEE check value from the catalogue of CRC algorithms.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn detects_single_byte_changes() {
        let a = crc32(b"{\"campaign\":0}");
        let b = crc32(b"{\"campaign\":1}");
        assert_ne!(a, b);
        assert_eq!(crc32(b""), 0);
    }
}
