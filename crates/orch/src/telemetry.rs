//! Telemetry time-series: the service's memory over time.
//!
//! Every observability surface before this one was point-in-time — the
//! metrics registry is a monotone set of counters, the dashboard renders
//! whatever is true *now*. This module samples the registry (plus the
//! daemon-side gauges it cannot see: queue depth, lease board state) on
//! a fixed interval and keeps the result twice:
//!
//! - in memory, in a fixed-capacity [`TelemetryRing`] the dashboard
//!   renders sparklines from and the alert engine evaluates over;
//! - on disk, as one CRC-checksummed JSONL line per sample under
//!   `<store>/telemetry/series.jsonl` ([`TelemetryLog`], sharing the
//!   [`CheckedLog`] machinery with the shard, queue, and ops logs), so
//!   history survives daemon restarts, heals torn tails on open, and
//!   gets its own `vulfi alerts fsck`.
//!
//! Each [`TelemetrySample`] carries both the raw cumulative counters and
//! the delta-derived rates (exp/s, engine faults/s, lease-expiry
//! churn/s) computed by the [`Sampler`] against the previous sample, so
//! alert evaluation and rendering are pure functions of the sample
//! series — no second pass over the registry, no clock reads.
//!
//! Telemetry only ever *reads* the experiment machinery and writes to
//! its own directory: study shard bytes are identical with sampling on
//! or off (property-tested in the chaos suite).

use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::key::StudyKey;
use crate::metrics::{HistogramSnapshot, MetricsSnapshot};
use crate::store::{CheckedLog, StudyFsck};
use crate::OrchError;

/// Default ring capacity: at the daemon's default 1 s interval this is
/// 10 minutes of history — enough for any sustain window a dashboard
/// sparkline can usefully show.
pub const DEFAULT_RING_CAPACITY: usize = 600;

/// One point-in-time reading of every telemetry series. Cumulative
/// counters come straight from the registry; `*_rate`/`*_per_sec`
/// fields are delta-derived by the [`Sampler`] and are `0.0` on the
/// first sample after a (re)start.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TelemetrySample {
    /// Wall-clock milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Cumulative experiments across every category × outcome cell.
    pub experiments_total: u64,
    pub sdc: u64,
    pub benign: u64,
    pub crash: u64,
    /// Experiments/second over the last sampling interval.
    pub exp_per_sec: f64,
    /// Cumulative SDC share of all experiments, percent (0–100).
    pub sdc_rate: f64,
    /// Jobs waiting in the queue (daemon gauge; 0 offline).
    pub queue_depth: u64,
    /// Leases currently outstanding on the active study's board.
    pub active_leases: u64,
    /// Cumulative expired-lease count (the churn counter's source).
    pub lease_expired: u64,
    /// Lease expirations/second over the last sampling interval.
    pub lease_expiry_churn: f64,
    /// Cumulative engine faults (absorbed panics).
    pub engine_faults: u64,
    /// Engine faults/second over the last sampling interval.
    pub engine_fault_rate: f64,
    pub store_retries: u64,
    /// Shard-duration quantiles, seconds (bucket upper bounds).
    pub shard_p50_s: f64,
    pub shard_p99_s: f64,
    /// Queue-wait quantiles, seconds (bucket upper bounds).
    pub queue_wait_p50_s: f64,
    pub queue_wait_p99_s: f64,
}

/// The `q`-quantile of a bucketed histogram, reported as the upper
/// bound of the first bucket whose cumulative count reaches `q` of the
/// total. The +Inf overflow bucket clamps to the largest finite bound
/// (quantiles are for trending and thresholds, and an infinity would
/// not survive the JSON round trip). Empty histogram → 0.0.
pub fn histogram_quantile(h: &HistogramSnapshot, q: f64) -> f64 {
    let total: u64 = h.counts.iter().sum();
    if total == 0 || h.bounds.is_empty() {
        return 0.0;
    }
    let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
    let mut cumulative = 0u64;
    for (i, c) in h.counts.iter().enumerate() {
        cumulative += c;
        if cumulative >= target {
            let idx = i.min(h.bounds.len() - 1);
            return h.bounds[idx];
        }
    }
    *h.bounds.last().expect("non-empty bounds")
}

/// Daemon-side gauges the metrics registry cannot see. Offline
/// evaluation (`vulfi alerts check` over a cold store) uses
/// [`SamplerInputs::default`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SamplerInputs {
    /// Jobs currently in `Queued` state.
    pub queue_depth: u64,
    /// Leases outstanding on the active study's board.
    pub active_leases: u64,
    /// Cumulative expired-lease count from the board stats.
    pub lease_expired: u64,
}

/// Turns metrics snapshots into [`TelemetrySample`]s, carrying just
/// enough state (the previous sample) to derive rates. Seed it with the
/// persisted tail on restart so the first post-restart rates are
/// computed against real history instead of zero.
#[derive(Debug, Default)]
pub struct Sampler {
    prev: Option<TelemetrySample>,
}

impl Sampler {
    pub fn new() -> Sampler {
        Sampler { prev: None }
    }

    /// Resume rate derivation from a persisted sample (daemon restart).
    pub fn resume_from(last: TelemetrySample) -> Sampler {
        Sampler { prev: Some(last) }
    }

    /// Fold one metrics snapshot plus the daemon gauges into a sample
    /// stamped `unix_ms`.
    pub fn sample_at(
        &mut self,
        unix_ms: u64,
        m: &MetricsSnapshot,
        inputs: SamplerInputs,
    ) -> TelemetrySample {
        let outcome_total = |outcome: &str| -> u64 {
            m.experiments
                .iter()
                .filter(|c| c.outcome == outcome)
                .map(|c| c.count)
                .sum()
        };
        let sdc = outcome_total("sdc");
        let benign = outcome_total("benign");
        let crash = outcome_total("crash");
        let total = sdc + benign + crash;
        let rate = |delta: u64, dt_s: f64| {
            if dt_s > 0.0 {
                delta as f64 / dt_s
            } else {
                0.0
            }
        };
        let (exp_per_sec, engine_fault_rate, lease_expiry_churn) = match &self.prev {
            Some(p) if unix_ms > p.unix_ms => {
                let dt_s = (unix_ms - p.unix_ms) as f64 / 1000.0;
                (
                    rate(total.saturating_sub(p.experiments_total), dt_s),
                    rate(m.engine_faults.saturating_sub(p.engine_faults), dt_s),
                    rate(inputs.lease_expired.saturating_sub(p.lease_expired), dt_s),
                )
            }
            _ => (0.0, 0.0, 0.0),
        };
        let sample = TelemetrySample {
            unix_ms,
            experiments_total: total,
            sdc,
            benign,
            crash,
            exp_per_sec,
            sdc_rate: if total > 0 {
                100.0 * sdc as f64 / total as f64
            } else {
                0.0
            },
            queue_depth: inputs.queue_depth,
            active_leases: inputs.active_leases,
            lease_expired: inputs.lease_expired,
            lease_expiry_churn,
            engine_faults: m.engine_faults,
            engine_fault_rate,
            store_retries: m.store_retries,
            shard_p50_s: histogram_quantile(&m.shard_duration_seconds, 0.50),
            shard_p99_s: histogram_quantile(&m.shard_duration_seconds, 0.99),
            queue_wait_p50_s: histogram_quantile(&m.queue_wait_seconds, 0.50),
            queue_wait_p99_s: histogram_quantile(&m.queue_wait_seconds, 0.99),
        };
        self.prev = Some(sample.clone());
        sample
    }

    /// Convenience for callers sampling "now".
    pub fn sample_now(&mut self, m: &MetricsSnapshot, inputs: SamplerInputs) -> TelemetrySample {
        self.sample_at(now_unix_ms(), m, inputs)
    }
}

pub fn now_unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Fixed-capacity in-memory window over the most recent samples.
/// Pushing past capacity drops the oldest sample; the window is what
/// sparklines render and what alert rules evaluate over.
#[derive(Debug, Clone)]
pub struct TelemetryRing {
    capacity: usize,
    samples: Vec<TelemetrySample>,
}

impl TelemetryRing {
    pub fn new(capacity: usize) -> TelemetryRing {
        TelemetryRing {
            capacity: capacity.max(1),
            samples: Vec::new(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Append one sample, evicting the oldest when full.
    pub fn push(&mut self, sample: TelemetrySample) {
        if self.samples.len() == self.capacity {
            self.samples.remove(0);
        }
        self.samples.push(sample);
    }

    /// Oldest-first view of the window.
    pub fn samples(&self) -> &[TelemetrySample] {
        &self.samples
    }

    pub fn latest(&self) -> Option<&TelemetrySample> {
        self.samples.last()
    }

    /// One series as plain numbers, oldest first (sparkline input).
    pub fn series(&self, f: impl Fn(&TelemetrySample) -> f64) -> Vec<f64> {
        self.samples.iter().map(f).collect()
    }
}

/// The persisted half of the ring: `<store>/telemetry/series.jsonl`,
/// one checksummed line per sample. Like the ops log it is
/// observability, not state — a quarantined telemetry log never blocks
/// a study or a daemon start.
pub struct TelemetryLog {
    log: CheckedLog,
}

impl TelemetryLog {
    /// Open (creating if needed) the telemetry log under
    /// `store_root/telemetry`, healing a torn tail left by a killed
    /// daemon.
    pub fn open(store_root: impl AsRef<Path>) -> Result<TelemetryLog, OrchError> {
        let dir = store_root.as_ref().join("telemetry");
        std::fs::create_dir_all(&dir)
            .map_err(|e| OrchError(format!("create {}: {e}", dir.display())))?;
        let log = TelemetryLog {
            log: CheckedLog::new(
                dir.join("series.jsonl"),
                dir.join("series.quarantine"),
                "vulfi alerts fsck --repair",
            ),
        };
        // Mid-file corruption must not wedge daemon start; reads stay
        // loud and point at fsck.
        let _ = log.log.trim_torn_tail::<TelemetrySample>();
        Ok(log)
    }

    pub fn path(&self) -> PathBuf {
        self.log.path().to_path_buf()
    }

    /// Durably append one sample.
    pub fn append(&self, sample: &TelemetrySample) -> Result<(), OrchError> {
        self.log.append(sample)
    }

    /// Every persisted sample, oldest first.
    pub fn samples(&self) -> Result<Vec<TelemetrySample>, OrchError> {
        self.log.records()
    }

    /// The most recent `n` samples, oldest of them first.
    pub fn tail(&self, n: usize) -> Result<Vec<TelemetrySample>, OrchError> {
        let mut samples = self.samples()?;
        let skip = samples.len().saturating_sub(n);
        Ok(samples.split_off(skip))
    }

    /// Rebuild the in-memory window from the persisted tail (daemon
    /// restart: history resumes where the dead daemon left it).
    pub fn ring(&self, capacity: usize) -> Result<TelemetryRing, OrchError> {
        let mut ring = TelemetryRing::new(capacity);
        for s in self.tail(capacity)? {
            ring.push(s);
        }
        Ok(ring)
    }

    /// Integrity-check the telemetry log; with `repair`, quarantine a
    /// corrupt log and salvage the intact lines.
    pub fn fsck(&self, repair: bool) -> Result<StudyFsck, OrchError> {
        self.log
            .fsck::<TelemetrySample>(StudyKey("telemetry".to_string()), repair)
    }
}

/// Render one series as a self-contained inline `<svg>` sparkline —
/// a single polyline, no scripts, no external assets — for the zero-JS
/// dashboard. Returns a muted placeholder until two samples exist.
pub fn sparkline_svg(values: &[f64], width: u32, height: u32) -> String {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.len() < 2 {
        return "<span class=\"muted\">gathering…</span>".to_string();
    }
    let max = finite.iter().cloned().fold(f64::MIN, f64::max);
    let min = finite.iter().cloned().fold(f64::MAX, f64::min);
    let span = if (max - min).abs() < f64::EPSILON {
        1.0
    } else {
        max - min
    };
    let (w, h) = (width as f64, height as f64);
    let step = w / (finite.len() - 1) as f64;
    let pad = 1.0;
    let points: Vec<String> = finite
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let x = i as f64 * step;
            let y = pad + (h - 2.0 * pad) * (1.0 - (v - min) / span);
            format!("{x:.1},{y:.1}")
        })
        .collect();
    format!(
        "<svg class=\"spark\" viewBox=\"0 0 {width} {height}\" width=\"{width}\" \
         height=\"{height}\" role=\"img\" aria-label=\"sparkline\">\
         <polyline fill=\"none\" stroke=\"#4a90d9\" stroke-width=\"1.5\" points=\"{}\"/></svg>",
        points.join(" ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use proptest::prelude::*;
    use vir::analysis::SiteCategory;
    use vulfi::Outcome;

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("vulfi_telemetry_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample(unix_ms: u64, total: u64) -> TelemetrySample {
        TelemetrySample {
            unix_ms,
            experiments_total: total,
            sdc: total / 10,
            benign: total - total / 10,
            crash: 0,
            exp_per_sec: total as f64,
            sdc_rate: 10.0,
            queue_depth: 1,
            active_leases: 2,
            lease_expired: 0,
            lease_expiry_churn: 0.0,
            engine_faults: 0,
            engine_fault_rate: 0.0,
            store_retries: 0,
            shard_p50_s: 0.01,
            shard_p99_s: 0.1,
            queue_wait_p50_s: 0.01,
            queue_wait_p99_s: 0.1,
        }
    }

    #[test]
    fn sampler_derives_rates_from_deltas() {
        let m = Metrics::new();
        let mut s = Sampler::new();
        for _ in 0..10 {
            m.inc_experiment(SiteCategory::PureData, Outcome::Benign);
        }
        m.inc_experiment(SiteCategory::PureData, Outcome::Sdc);
        let first = s.sample_at(1_000, &m.snapshot(), SamplerInputs::default());
        assert_eq!(first.experiments_total, 11);
        assert_eq!(first.sdc, 1);
        assert_eq!(first.exp_per_sec, 0.0, "no previous sample, no rate");
        assert!((first.sdc_rate - 100.0 / 11.0).abs() < 1e-9);

        for _ in 0..20 {
            m.inc_experiment(SiteCategory::PureData, Outcome::Benign);
        }
        m.add_engine_faults(4);
        let second = s.sample_at(
            3_000,
            &m.snapshot(),
            SamplerInputs {
                queue_depth: 3,
                active_leases: 2,
                lease_expired: 6,
            },
        );
        // 20 experiments and 4 faults over 2 s.
        assert!((second.exp_per_sec - 10.0).abs() < 1e-9, "{second:?}");
        assert!((second.engine_fault_rate - 2.0).abs() < 1e-9);
        assert!((second.lease_expiry_churn - 3.0).abs() < 1e-9);
        assert_eq!(second.queue_depth, 3);

        // A clock that does not advance produces zero rates, not NaN.
        let stuck = s.sample_at(3_000, &m.snapshot(), SamplerInputs::default());
        assert_eq!(stuck.exp_per_sec, 0.0);
    }

    #[test]
    fn quantiles_walk_cumulative_buckets() {
        let h = HistogramSnapshot {
            bounds: vec![0.01, 0.1, 1.0],
            counts: vec![50, 48, 1, 1], // last is +Inf overflow
            sum: 2.0,
        };
        assert_eq!(histogram_quantile(&h, 0.50), 0.01);
        assert_eq!(histogram_quantile(&h, 0.98), 0.1);
        assert_eq!(histogram_quantile(&h, 0.99), 1.0);
        // Overflow bucket clamps to the largest finite bound.
        assert_eq!(histogram_quantile(&h, 1.0), 1.0);
        let empty = HistogramSnapshot {
            bounds: vec![0.01, 0.1],
            counts: vec![0, 0, 0],
            sum: 0.0,
        };
        assert_eq!(histogram_quantile(&empty, 0.99), 0.0);
    }

    #[test]
    fn ring_evicts_oldest_at_capacity() {
        let mut ring = TelemetryRing::new(3);
        for i in 0..5u64 {
            ring.push(sample(i * 1000, i));
        }
        assert_eq!(ring.len(), 3);
        let times: Vec<u64> = ring.samples().iter().map(|s| s.unix_ms).collect();
        assert_eq!(times, vec![2000, 3000, 4000]);
        assert_eq!(ring.latest().unwrap().unix_ms, 4000);
        assert_eq!(
            ring.series(|s| s.experiments_total as f64),
            vec![2.0, 3.0, 4.0]
        );
    }

    #[test]
    fn log_persists_heals_torn_tail_and_fscks() {
        let root = temp_root("log");
        let path = {
            let log = TelemetryLog::open(&root).unwrap();
            for i in 0..4u64 {
                log.append(&sample(i * 1000, i * 10)).unwrap();
            }
            assert_eq!(log.samples().unwrap().len(), 4);
            assert_eq!(log.tail(2).unwrap()[0].unix_ms, 2000);
            log.path()
        };
        // Killed writer: half a trailing line vanishes on reopen.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"\n{\"unix_ms\":9,\"experim");
        std::fs::write(&path, &bytes).unwrap();
        let log = TelemetryLog::open(&root).unwrap();
        assert_eq!(log.samples().unwrap().len(), 4);

        // Mid-file corruption: loud, points at the repair command, then
        // quarantined and salvaged.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        let err = log.samples().unwrap_err();
        assert!(err.0.contains("vulfi alerts fsck"), "{err}");
        let report = log.fsck(true).unwrap();
        assert!(report.quarantined.is_some());
        assert!(log.samples().unwrap().len() < 4, "corrupt line dropped");
    }

    #[test]
    fn ring_reloads_persisted_tail() {
        let root = temp_root("reload");
        let log = TelemetryLog::open(&root).unwrap();
        for i in 0..10u64 {
            log.append(&sample(i * 1000, i)).unwrap();
        }
        let ring = log.ring(4).unwrap();
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.samples()[0].unix_ms, 6000);
        assert_eq!(ring.latest().unwrap().unix_ms, 9000);
        // Sampler resumed from the persisted tail derives rates against
        // real history, not zero.
        let m = Metrics::new();
        for _ in 0..100 {
            m.inc_experiment(SiteCategory::PureData, Outcome::Benign);
        }
        let mut s = Sampler::resume_from(ring.latest().unwrap().clone());
        let next = s.sample_at(10_000, &m.snapshot(), SamplerInputs::default());
        assert!((next.exp_per_sec - 91.0).abs() < 1e-9, "{next:?}");
    }

    #[test]
    fn sparkline_is_inline_svg_with_no_script() {
        assert!(sparkline_svg(&[1.0], 120, 24).contains("gathering"));
        let svg = sparkline_svg(&[0.0, 5.0, 2.5, 10.0], 120, 24);
        assert!(svg.starts_with("<svg"), "{svg}");
        assert!(svg.contains("<polyline"), "{svg}");
        assert!(!svg.contains("<script"), "{svg}");
        // Flat series still renders (no division by zero).
        let flat = sparkline_svg(&[3.0, 3.0, 3.0], 120, 24);
        assert!(flat.contains("<polyline"), "{flat}");
        // Non-finite values are dropped, not rendered as NaN points.
        let cleaned = sparkline_svg(&[1.0, f64::INFINITY, 2.0], 120, 24);
        assert!(
            !cleaned.contains("NaN") && !cleaned.contains("inf"),
            "{cleaned}"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Sample/trim/persist/reopen round trip: any sequence of
        /// samples pushed through a ring and a log reopens to exactly
        /// the persisted suffix, in order, bit-for-bit.
        #[test]
        fn ring_and_log_round_trip(
            totals in prop::collection::vec(0u64..100_000, 1..40),
            capacity in 1usize..16,
            case in 0u64..1_000_000,
        ) {
            let root = std::env::temp_dir().join(format!(
                "vulfi_telemetry_prop_{}_{case}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&root);
            let mut ring = TelemetryRing::new(capacity);
            {
                let log = TelemetryLog::open(&root).unwrap();
                for (i, t) in totals.iter().enumerate() {
                    let s = sample(i as u64 * 250, *t);
                    log.append(&s).unwrap();
                    ring.push(s);
                }
            }
            // The ring holds the last `capacity` samples, oldest first.
            prop_assert_eq!(ring.len(), totals.len().min(capacity));
            // Reopen: the persisted log replays every sample, and the
            // reloaded ring equals the in-memory one field-for-field.
            let log = TelemetryLog::open(&root).unwrap();
            let all = log.samples().unwrap();
            prop_assert_eq!(all.len(), totals.len());
            for (i, t) in totals.iter().enumerate() {
                prop_assert_eq!(all[i].experiments_total, *t);
                prop_assert_eq!(all[i].unix_ms, i as u64 * 250);
            }
            let reloaded = log.ring(capacity).unwrap();
            prop_assert_eq!(reloaded.samples(), ring.samples());
            let _ = std::fs::remove_dir_all(&root);
        }
    }
}
