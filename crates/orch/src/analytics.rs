//! Offline resiliency analytics over the result and trace stores.
//!
//! Everything here is *read-only*: the inputs are the checksummed shard
//! logs (`store`) and trace sidecars (`tracestore`) a finished — or
//! half-finished — evaluation left behind, and the outputs are the
//! comparisons the paper actually publishes:
//!
//! - **study cells** ([`load_cells`]): every stored study merged through
//!   the deterministic stopping rule into one (workload × category ×
//!   ISA) cell with Wilson-scored SDC proportions;
//! - **study diffing** ([`diff_stores`]): cell-by-cell comparison of two
//!   stores (AVX vs SSE, pre/post a detector pass, two protocols) with a
//!   two-proportion z-test and drift detection for resumed runs of the
//!   same study key;
//! - **vulnerability heatmaps** ([`heatmaps`]): trace spans aggregated
//!   into site rankings and lane × bit SDC-density grids, joining static
//!   site metadata (opcode, §II-C categories) against dynamic outcomes;
//! - **lane occupancy** ([`OccupancyProfile`]): the dynamic
//!   mask-occupancy histogram of a golden run, for explaining vector SDC
//!   rates the way the paper's §IV discussion does (masked-off lanes
//!   absorb faults);
//! - **rendered reports** ([`render_html`]): one self-contained HTML
//!   file — inline SVG, zero scripts, zero external fetches.

use std::collections::BTreeMap;

use vulfi::{two_proportion_z_test, wilson_interval_95, Outcome};

use crate::plan::merge;
use crate::store::Store;
use crate::tracestore::{summarize, TraceStore, TraceSummary};
use crate::OrchError;

/// One stored study merged into a comparable cell.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StudyCell {
    pub key: String,
    pub workload: String,
    pub isa: String,
    pub category: String,
    pub sdc: u64,
    pub benign: u64,
    pub crash: u64,
    pub detected: u64,
    pub sdc_detected: u64,
    /// Experiments the stopping rule actually counted.
    pub experiments: u64,
    /// Experiment-level SDC proportion, percent.
    pub sdc_rate: f64,
    /// Wilson 95% bounds on the SDC proportion, percent.
    pub wilson_lo: f64,
    pub wilson_hi: f64,
    /// Campaign-mean SDC rate ± margin (the paper's §IV-D statistic).
    pub mean_sdc: f64,
    pub margin_95: f64,
    pub campaigns: usize,
    pub converged: bool,
}

/// Merge every complete study in `store` into cells; the second list
/// names studies still partial (excluded rather than silently skewed).
pub fn load_cells(store: &Store) -> Result<(Vec<StudyCell>, Vec<String>), OrchError> {
    let mut cells = Vec::new();
    let mut partial = Vec::new();
    for key in store.studies()? {
        let study = store.study(&key);
        let m = study.read_manifest()?;
        let shards = study.shards()?;
        match merge(&m.cfg, m.category, &shards) {
            Some(r) => {
                let n = r.counts.total();
                let (lo, hi) = wilson_interval_95(r.counts.sdc, n);
                cells.push(StudyCell {
                    key: key.0.clone(),
                    workload: m.workload.clone(),
                    isa: m.isa.clone(),
                    category: m.category.name().to_string(),
                    sdc: r.counts.sdc,
                    benign: r.counts.benign,
                    crash: r.counts.crash,
                    detected: r.counts.detected,
                    sdc_detected: r.counts.sdc_detected,
                    experiments: n,
                    sdc_rate: r.counts.sdc_rate(),
                    wilson_lo: 100.0 * lo,
                    wilson_hi: 100.0 * hi,
                    mean_sdc: r.summary.mean,
                    margin_95: r.summary.margin_95,
                    campaigns: r.summary.campaigns,
                    converged: r.converged,
                });
            }
            None => partial.push(format!(
                "{} [{}] {} ({})",
                m.workload,
                m.isa,
                m.category.name(),
                &key.0[..12.min(key.0.len())]
            )),
        }
    }
    cells.sort_by(|a, b| {
        a.workload
            .cmp(&b.workload)
            .then(a.category.cmp(&b.category))
            .then(a.isa.cmp(&b.isa))
    });
    Ok((cells, partial))
}

/// One matched pair of cells across two stores.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DiffCell {
    pub workload: String,
    pub category: String,
    pub isa_a: String,
    pub isa_b: String,
    pub key_a: String,
    pub key_b: String,
    pub sdc_a: u64,
    pub n_a: u64,
    pub rate_a: f64,
    pub lo_a: f64,
    pub hi_a: f64,
    pub sdc_b: u64,
    pub n_b: u64,
    pub rate_b: f64,
    pub lo_b: f64,
    pub hi_b: f64,
    /// `rate_b - rate_a`, percentage points.
    pub delta: f64,
    pub z: f64,
    pub p: f64,
    /// Two-sided p < 0.05.
    pub significant: bool,
    /// Same study key on both sides but different merged counts — a
    /// resumed run drifted from its twin, which determinism forbids.
    pub drift: bool,
}

/// The full comparison of two stores.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DiffReport {
    pub cells: Vec<DiffCell>,
    /// Cells present only in store A / only in store B.
    pub only_a: Vec<String>,
    pub only_b: Vec<String>,
    /// Partial (unmergeable) studies excluded from each side.
    pub partial_a: Vec<String>,
    pub partial_b: Vec<String>,
    pub significant: u64,
    pub drift: u64,
}

fn cell_label(c: &StudyCell) -> String {
    format!("{} [{}] {}", c.workload, c.isa, c.category)
}

/// Pair up two stores' cells and test each pair for a significant SDC
/// difference.
///
/// Cells join on (workload, category, ISA). Cells left unmatched fall
/// back to a (workload, category) join when that is unambiguous — the
/// AVX-vs-SSE comparison, where the ISA is exactly what differs.
pub fn diff_stores(a: &Store, b: &Store) -> Result<DiffReport, OrchError> {
    let (cells_a, partial_a) = load_cells(a)?;
    let (cells_b, partial_b) = load_cells(b)?;
    Ok(diff_cells(cells_a, cells_b, partial_a, partial_b))
}

fn diff_cells(
    cells_a: Vec<StudyCell>,
    cells_b: Vec<StudyCell>,
    partial_a: Vec<String>,
    partial_b: Vec<String>,
) -> DiffReport {
    let mut used_b = vec![false; cells_b.len()];
    let mut pairs: Vec<(StudyCell, StudyCell)> = Vec::new();
    let mut only_a = Vec::new();

    // Pass 1: exact (workload, category, isa) join.
    let mut unmatched_a = Vec::new();
    for ca in cells_a {
        let hit = (0..cells_b.len()).find(|&i| {
            !used_b[i]
                && cells_b[i].workload == ca.workload
                && cells_b[i].category == ca.category
                && cells_b[i].isa == ca.isa
        });
        match hit {
            Some(i) => {
                used_b[i] = true;
                pairs.push((ca, cells_b[i].clone()));
            }
            None => unmatched_a.push(ca),
        }
    }
    // Pass 2: (workload, category) join for the leftovers, only when
    // unambiguous on both sides.
    for ca in unmatched_a {
        let candidates: Vec<usize> = cells_b
            .iter()
            .enumerate()
            .filter(|(i, cb)| {
                !used_b[*i] && cb.workload == ca.workload && cb.category == ca.category
            })
            .map(|(i, _)| i)
            .collect();
        if candidates.len() == 1 {
            used_b[candidates[0]] = true;
            pairs.push((ca, cells_b[candidates[0]].clone()));
        } else {
            only_a.push(cell_label(&ca));
        }
    }
    let only_b: Vec<String> = cells_b
        .iter()
        .zip(&used_b)
        .filter(|(_, used)| !**used)
        .map(|(c, _)| cell_label(c))
        .collect();

    let mut cells = Vec::new();
    let mut significant = 0u64;
    let mut drift = 0u64;
    for (ca, cb) in pairs {
        let t = two_proportion_z_test(ca.sdc, ca.experiments, cb.sdc, cb.experiments);
        let is_sig = t.p < 0.05;
        let is_drift = ca.key == cb.key
            && (ca.sdc != cb.sdc
                || ca.benign != cb.benign
                || ca.crash != cb.crash
                || ca.experiments != cb.experiments);
        significant += is_sig as u64;
        drift += is_drift as u64;
        cells.push(DiffCell {
            workload: ca.workload,
            category: ca.category,
            isa_a: ca.isa,
            isa_b: cb.isa,
            key_a: ca.key,
            key_b: cb.key,
            sdc_a: ca.sdc,
            n_a: ca.experiments,
            rate_a: ca.sdc_rate,
            lo_a: ca.wilson_lo,
            hi_a: ca.wilson_hi,
            sdc_b: cb.sdc,
            n_b: cb.experiments,
            rate_b: cb.sdc_rate,
            lo_b: cb.wilson_lo,
            hi_b: cb.wilson_hi,
            delta: cb.sdc_rate - ca.sdc_rate,
            z: t.z,
            p: t.p,
            significant: is_sig,
            drift: is_drift,
        });
    }
    cells.sort_by(|x, y| {
        x.p.partial_cmp(&y.p)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(x.workload.cmp(&y.workload))
            .then(x.category.cmp(&y.category))
    });
    DiffReport {
        cells,
        only_a,
        only_b,
        partial_a,
        partial_b,
        significant,
        drift,
    }
}

/// Render a diff as a significance-annotated text table.
pub fn render_diff_text(r: &DiffReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:<9} {:>5}/{:<5} {:>18} {:>5}/{:<5} {:>18} {:>7} {:>7} {:>7}  flags\n",
        "workload",
        "category",
        "sdcA",
        "nA",
        "A% [wilson95]",
        "sdcB",
        "nB",
        "B% [wilson95]",
        "Δpp",
        "z",
        "p"
    ));
    for c in &r.cells {
        let mut flags = String::new();
        if c.significant {
            flags.push_str("SIGNIFICANT ");
        }
        if c.drift {
            flags.push_str("DRIFT ");
        }
        out.push_str(&format!(
            "{:<22} {:<9} {:>5}/{:<5} {:>5.1} [{:4.1},{:4.1}] {:>5}/{:<5} {:>5.1} [{:4.1},{:4.1}] {:>+7.1} {:>7.2} {:>7.4}  {}\n",
            c.workload,
            c.category,
            c.sdc_a,
            c.n_a,
            c.rate_a,
            c.lo_a,
            c.hi_a,
            c.sdc_b,
            c.n_b,
            c.rate_b,
            c.lo_b,
            c.hi_b,
            c.delta,
            c.z,
            c.p,
            flags.trim_end()
        ));
    }
    out.push_str(&format!(
        "{} cell(s) compared, {} significant at p<0.05, {} drifted\n",
        r.cells.len(),
        r.significant,
        r.drift
    ));
    for s in &r.only_a {
        out.push_str(&format!("only in A: {s}\n"));
    }
    for s in &r.only_b {
        out.push_str(&format!("only in B: {s}\n"));
    }
    for s in &r.partial_a {
        out.push_str(&format!("partial in A (excluded): {s}\n"));
    }
    for s in &r.partial_b {
        out.push_str(&format!("partial in B (excluded): {s}\n"));
    }
    out
}

/// One (lane, bit) cell of a vulnerability grid.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LaneBitCell {
    pub lane: u32,
    pub bit: u32,
    pub injections: u64,
    pub sdc: u64,
}

/// One static site joined against its dynamic outcomes.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SiteRow {
    pub site_id: u32,
    pub opcode: String,
    /// §II-C categories of the site's forward slice.
    pub categories: Vec<String>,
    pub injections: u64,
    pub sdc: u64,
    pub crash: u64,
    /// SDC share of this site's injections, percent.
    pub sdc_rate: f64,
}

/// Site × lane × bit vulnerability surface of one workload.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WorkloadHeatmap {
    pub workload: String,
    /// Grid extents: observed lanes are `0..lanes`, bits `0..bits`.
    pub lanes: u32,
    pub bits: u32,
    /// Sparse grid cells, lane-major; cells that saw no injection are
    /// omitted.
    pub grid: Vec<LaneBitCell>,
    /// Sites ranked by SDC count (then injections, then id).
    pub sites: Vec<SiteRow>,
}

/// Aggregate every trace span into per-workload vulnerability heatmaps.
///
/// Spans deduplicate by `(study, campaign, experiment)` exactly like
/// [`summarize`], so resumed runs never double-count. Site ranking keeps
/// the `top_sites` most SDC-prone sites per workload.
pub fn heatmaps(store: &TraceStore, top_sites: usize) -> Result<Vec<WorkloadHeatmap>, OrchError> {
    heatmaps_filtered(store, top_sites, None)
}

/// [`heatmaps`] restricted to studies of one fault model
/// (`vulfi report heatmap --model ...`). The filter accepts either a
/// full parameterized name (`multi-bit-burst:2`) or a bare kind
/// (`multi-bit-burst`, matching every width).
pub fn heatmaps_filtered(
    store: &TraceStore,
    top_sites: usize,
    model: Option<&str>,
) -> Result<Vec<WorkloadHeatmap>, OrchError> {
    let mut spans: BTreeMap<(String, usize, usize), (String, vulfi::ExperimentTrace)> =
        BTreeMap::new();
    for key in store.studies()? {
        for shard in store.study(&key).shards()? {
            if let Some(want) = model {
                let kind = shard.model.split(':').next().unwrap_or(&shard.model);
                if shard.model != want && kind != want {
                    continue;
                }
            }
            for t in shard.traces {
                spans.insert(
                    (key.0.clone(), shard.campaign, t.index),
                    (shard.workload.clone(), t),
                );
            }
        }
    }

    // workload → ((lane, bit) → (injections, sdc), site → row)
    type SiteKey = (u32, String);
    type Grid = BTreeMap<(u32, u32), (u64, u64)>;
    type SiteTally = BTreeMap<SiteKey, (Vec<String>, u64, u64, u64)>;
    let mut grids: BTreeMap<String, Grid> = BTreeMap::new();
    let mut sites: BTreeMap<String, SiteTally> = BTreeMap::new();
    for (workload, t) in spans.values() {
        let Some(inj) = &t.injection else { continue };
        let cell = grids
            .entry(workload.clone())
            .or_default()
            .entry((inj.lane, inj.bit))
            .or_insert((0, 0));
        cell.0 += 1;
        cell.1 += (t.outcome == Outcome::Sdc) as u64;
        let row = sites
            .entry(workload.clone())
            .or_default()
            .entry((inj.site_id, inj.opcode.clone()))
            .or_insert_with(|| (inj.categories.clone(), 0, 0, 0));
        row.1 += 1;
        row.2 += (t.outcome == Outcome::Sdc) as u64;
        row.3 += (t.outcome == Outcome::Crash) as u64;
    }

    let mut out = Vec::new();
    for (workload, grid) in grids {
        let lanes = grid.keys().map(|(l, _)| l + 1).max().unwrap_or(0);
        let bits = grid.keys().map(|(_, b)| b + 1).max().unwrap_or(0);
        let grid: Vec<LaneBitCell> = grid
            .into_iter()
            .map(|((lane, bit), (injections, sdc))| LaneBitCell {
                lane,
                bit,
                injections,
                sdc,
            })
            .collect();
        let mut rows: Vec<SiteRow> = sites
            .remove(&workload)
            .unwrap_or_default()
            .into_iter()
            .map(
                |((site_id, opcode), (categories, injections, sdc, crash))| SiteRow {
                    site_id,
                    opcode,
                    categories,
                    injections,
                    sdc,
                    crash,
                    sdc_rate: if injections == 0 {
                        0.0
                    } else {
                        100.0 * sdc as f64 / injections as f64
                    },
                },
            )
            .collect();
        rows.sort_by(|a, b| {
            b.sdc
                .cmp(&a.sdc)
                .then(b.injections.cmp(&a.injections))
                .then(a.site_id.cmp(&b.site_id))
        });
        rows.truncate(top_sites);
        out.push(WorkloadHeatmap {
            workload,
            lanes,
            bits,
            grid,
            sites: rows,
        });
    }
    Ok(out)
}

/// Render heatmaps as text: a site ranking plus a lane-row density strip.
pub fn render_heatmap_text(maps: &[WorkloadHeatmap]) -> String {
    let mut out = String::new();
    for m in maps {
        out.push_str(&format!(
            "{}: {} grid cell(s) over {} lane(s) x {} bit(s)\n",
            m.workload,
            m.grid.len(),
            m.lanes,
            m.bits
        ));
        for lane in 0..m.lanes {
            let (inj, sdc) = m
                .grid
                .iter()
                .filter(|c| c.lane == lane)
                .fold((0u64, 0u64), |(i, s), c| (i + c.injections, s + c.sdc));
            if inj == 0 {
                continue;
            }
            out.push_str(&format!(
                "  lane {:>2}: {:>5} injection(s), {:>4} SDC ({:.1}%)\n",
                lane,
                inj,
                sdc,
                100.0 * sdc as f64 / inj as f64
            ));
        }
        out.push_str("  most vulnerable sites:\n");
        for s in &m.sites {
            out.push_str(&format!(
                "    site {:>4} {:<12} [{}] SDC {}/{} ({:.1}%), {} crash(es)\n",
                s.site_id,
                s.opcode,
                s.categories.join(","),
                s.sdc,
                s.injections,
                s.sdc_rate,
                s.crash
            ));
        }
    }
    if maps.is_empty() {
        out.push_str("no injected trace spans\n");
    }
    out
}

/// One bucket of the mask-occupancy histogram.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OccupancyBucket {
    pub active_lanes: u32,
    pub insts: u64,
}

/// Lane-occupancy profile of one workload's golden run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OccupancyProfile {
    pub workload: String,
    pub isa: String,
    pub total: u64,
    pub vector: u64,
    pub vector_pct: f64,
    pub lanes_active: u64,
    pub lanes_total: u64,
    pub avg_active_lanes: f64,
    /// Active fraction of all vector lane slots, percent.
    pub lane_utilization_pct: f64,
    pub hist: Vec<OccupancyBucket>,
}

impl OccupancyProfile {
    pub fn from_mix(workload: &str, isa: &str, mix: &vexec::InstMix) -> OccupancyProfile {
        OccupancyProfile {
            workload: workload.to_string(),
            isa: isa.to_string(),
            total: mix.total,
            vector: mix.vector,
            vector_pct: mix.vector_pct(),
            lanes_active: mix.lanes_active,
            lanes_total: mix.lanes_total,
            avg_active_lanes: mix.avg_active_lanes(),
            lane_utilization_pct: 100.0 * mix.lane_utilization(),
            hist: mix
                .occupancy_histogram()
                .into_iter()
                .map(|(active_lanes, insts)| OccupancyBucket {
                    active_lanes,
                    insts,
                })
                .collect(),
        }
    }
}

/// One metrics-snapshot row for the HTML report.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MetricRow {
    pub name: String,
    pub value: f64,
}

/// One site of a workload's static vulnerability report, joined with
/// the observed injection outcomes for the same site id from the trace
/// heatmaps (zeros when tracing never hit the site).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AnalysisSiteRow {
    pub site_id: u32,
    pub value: String,
    pub opcode: String,
    /// Feeding class the analyzer assigned (`store-feeding`, ...).
    pub class: String,
    /// Share of the site's (lane, bit) coordinates proven benign.
    pub predicted_benign_pct: f64,
    pub injections: u64,
    pub sdc: u64,
    /// Observed SDC share of the site's traced injections, percent.
    pub observed_sdc_pct: f64,
}

/// One workload's predicted-vs-observed join for the HTML report.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AnalysisCell {
    pub workload: String,
    pub function: String,
    pub total_bits: u64,
    pub benign_bits: u64,
    pub sites: Vec<AnalysisSiteRow>,
}

/// Join static vulnerability reports (keyed by workload name) with the
/// observed per-site outcomes of the matching trace heatmap. Sites the
/// tracer never injected keep zero counts — a predicted-benign site
/// *should* accumulate injections with no SDCs, which is exactly what
/// the section lets a reader eyeball.
pub fn analysis_cells(
    reports: &[(String, vulfi::VulnReport)],
    heatmaps: &[WorkloadHeatmap],
) -> Vec<AnalysisCell> {
    reports
        .iter()
        .map(|(workload, rep)| {
            let observed: std::collections::HashMap<u32, &SiteRow> = heatmaps
                .iter()
                .filter(|m| &m.workload == workload)
                .flat_map(|m| &m.sites)
                .map(|s| (s.site_id, s))
                .collect();
            AnalysisCell {
                workload: workload.clone(),
                function: rep.function.clone(),
                total_bits: rep.total_bits(),
                benign_bits: rep.benign_bits(),
                sites: rep
                    .sites
                    .iter()
                    .map(|s| {
                        let o = observed.get(&s.id);
                        AnalysisSiteRow {
                            site_id: s.id,
                            value: s.value.clone(),
                            opcode: s.opcode.clone(),
                            class: s.class.clone(),
                            predicted_benign_pct: 100.0 * s.benign_fraction(),
                            injections: o.map(|r| r.injections).unwrap_or(0),
                            sdc: o.map(|r| r.sdc).unwrap_or(0),
                            observed_sdc_pct: o.map(|r| r.sdc_rate).unwrap_or(0.0),
                        }
                    })
                    .collect(),
            }
        })
        .collect()
}

/// Everything [`render_html`] can include. Empty slices and `None`
/// render as explicit "no data" sections rather than disappearing.
pub struct ReportInputs<'a> {
    pub title: &'a str,
    pub cells: &'a [StudyCell],
    pub partial: &'a [String],
    pub diff: Option<&'a DiffReport>,
    pub heatmaps: &'a [WorkloadHeatmap],
    pub occupancy: &'a [OccupancyProfile],
    pub traces: Option<&'a TraceSummary>,
    pub metrics: &'a [MetricRow],
    /// Static-analysis joins (`vulfi report html` over traced studies).
    pub analysis: &'a [AnalysisCell],
    /// Gauntlet verdicts (`vulfi gauntlet report`).
    pub gauntlet: Option<&'a crate::scenario::GauntletReport>,
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// An inline-SVG horizontal bar with a Wilson-interval whisker, scaled
/// to `max` percent.
fn sdc_bar(rate: f64, lo: f64, hi: f64, max: f64) -> String {
    const W: f64 = 260.0;
    let x = |v: f64| (W * (v / max.max(1e-9)).clamp(0.0, 1.0)).round();
    format!(
        "<svg width=\"{W}\" height=\"14\" role=\"img\">\
         <rect x=\"0\" y=\"2\" width=\"{}\" height=\"10\" fill=\"#c0392b\"/>\
         <line x1=\"{}\" y1=\"7\" x2=\"{}\" y2=\"7\" stroke=\"#2c3e50\" stroke-width=\"2\"/>\
         </svg>",
        x(rate),
        x(lo),
        x(hi)
    )
}

fn heatmap_table(m: &WorkloadHeatmap) -> String {
    let mut cells: BTreeMap<(u32, u32), (u64, u64)> = BTreeMap::new();
    for c in &m.grid {
        cells.insert((c.lane, c.bit), (c.injections, c.sdc));
    }
    let peak = m.grid.iter().map(|c| c.sdc).max().unwrap_or(0).max(1) as f64;
    let mut html = String::from("<table class=\"heat\"><tr><th>lane\\bit</th>");
    for b in 0..m.bits {
        html.push_str(&format!("<th>{b}</th>"));
    }
    html.push_str("</tr>");
    for lane in 0..m.lanes {
        html.push_str(&format!("<tr><th>{lane}</th>"));
        for bit in 0..m.bits {
            match cells.get(&(lane, bit)) {
                Some(&(inj, sdc)) => {
                    let alpha = (sdc as f64 / peak * 0.9 + 0.05).min(1.0);
                    html.push_str(&format!(
                        "<td style=\"background:rgba(192,57,43,{alpha:.2})\" \
                         title=\"lane {lane} bit {bit}: {sdc} SDC / {inj} injection(s)\">{sdc}</td>"
                    ));
                }
                None => html.push_str("<td class=\"empty\"></td>"),
            }
        }
        html.push_str("</tr>");
    }
    html.push_str("</table>");
    html
}

/// Render one self-contained HTML report: no scripts, no external
/// stylesheets, no fetches — inline SVG and CSS only.
pub fn render_html(inp: &ReportInputs) -> String {
    let mut h = String::new();
    h.push_str("<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n");
    h.push_str(&format!("<title>{}</title>\n", esc(inp.title)));
    h.push_str(
        "<style>\
         body{font:14px/1.45 system-ui,sans-serif;margin:2em auto;max-width:1080px;color:#222}\
         h1{font-size:1.5em} h2{margin-top:2em;border-bottom:1px solid #ddd}\
         table{border-collapse:collapse;margin:.8em 0} td,th{border:1px solid #ccc;\
         padding:.25em .6em;text-align:right} th{background:#f4f4f4}\
         td:first-child,th:first-child{text-align:left}\
         .heat td{min-width:1.6em;text-align:center} .heat .empty{background:#fafafa}\
         .sig{color:#c0392b;font-weight:bold} .drift{color:#8e44ad;font-weight:bold}\
         .muted{color:#888}\
         </style></head><body>\n",
    );
    h.push_str(&format!("<h1>{}</h1>\n", esc(inp.title)));

    // Fig. 11/12-shaped study table.
    h.push_str("<section id=\"studies\"><h2>Studies</h2>\n");
    if inp.cells.is_empty() {
        h.push_str("<p class=\"muted\">no complete studies in the store</p>\n");
    } else {
        let max = inp.cells.iter().map(|c| c.wilson_hi).fold(1.0f64, f64::max);
        h.push_str(
            "<table><tr><th>workload</th><th>ISA</th><th>category</th><th>SDC</th>\
             <th>n</th><th>SDC %</th><th>Wilson 95%</th><th>mean ± margin</th>\
             <th>detect %</th><th></th></tr>\n",
        );
        for c in inp.cells {
            let det = if c.sdc > 0 && c.detected > 0 {
                format!("{:.1}", 100.0 * c.sdc_detected as f64 / c.sdc as f64)
            } else {
                "–".to_string()
            };
            h.push_str(&format!(
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
                 <td>{:.1}</td><td>[{:.1}, {:.1}]</td><td>{:.1} ± {:.1}{}</td><td>{}</td><td>{}</td></tr>\n",
                esc(&c.workload),
                esc(&c.isa),
                esc(&c.category),
                c.sdc,
                c.experiments,
                c.sdc_rate,
                c.wilson_lo,
                c.wilson_hi,
                c.mean_sdc,
                c.margin_95,
                if c.converged { "" } else { " (capped)" },
                det,
                sdc_bar(c.sdc_rate, c.wilson_lo, c.wilson_hi, max),
            ));
        }
        h.push_str("</table>\n");
    }
    for p in inp.partial {
        h.push_str(&format!(
            "<p class=\"muted\">partial (excluded): {}</p>\n",
            esc(p)
        ));
    }
    h.push_str("</section>\n");

    // Gauntlet verdicts.
    h.push_str("<section id=\"gauntlet\"><h2>Gauntlet verdicts</h2>\n");
    match inp.gauntlet {
        None => h.push_str(
            "<p class=\"muted\">no gauntlet run (render with \
             <code>vulfi gauntlet report</code>)</p>\n",
        ),
        Some(g) => {
            h.push_str(&format!(
                "<p>scenario <strong>{}</strong>: {} cells, {} breaches — \
                 <span class=\"{}\">{}</span></p>\n",
                esc(&g.scenario),
                g.cells.len(),
                g.breaches(),
                if g.passed() { "" } else { "sig" },
                if g.passed() { "PASS" } else { "FAIL" },
            ));
            h.push_str(
                "<table><tr><th>bench</th><th>ISA</th><th>category</th><th>model</th>\
                 <th>n</th><th>SDC %</th><th>crash</th><th>verdict</th></tr>\n",
            );
            for c in &g.cells {
                let verdict = if c.passed() {
                    "PASS".to_string()
                } else {
                    let names: Vec<&str> = c
                        .invariants
                        .iter()
                        .filter(|i| i.breached)
                        .map(|i| i.name.as_str())
                        .collect();
                    format!("<span class=\"sig\">FAIL ({})</span>", names.join(", "))
                };
                h.push_str(&format!(
                    "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
                     <td>{:.1}</td><td>{}</td><td>{}</td></tr>\n",
                    esc(&c.bench),
                    esc(&c.isa),
                    esc(&c.category),
                    esc(&c.model),
                    c.experiments,
                    c.sdc_rate,
                    c.crash,
                    verdict,
                ));
            }
            h.push_str("</table>\n");
            for c in &g.cells {
                for i in c.invariants.iter().filter(|i| i.breached) {
                    h.push_str(&format!(
                        "<p class=\"sig\">breach: {}/{}/{}/{}: {} {} \
                         (observed {:.1}%, 95% CI [{:.1}, {:.1}])</p>\n",
                        esc(&c.bench),
                        esc(&c.isa),
                        esc(&c.category),
                        esc(&c.model),
                        esc(&i.name),
                        i.threshold,
                        i.observed,
                        i.lo,
                        i.hi
                    ));
                }
            }
        }
    }
    h.push_str("</section>\n");

    // Diff section.
    h.push_str("<section id=\"diff\"><h2>Study diff</h2>\n");
    match inp.diff {
        None => h.push_str(
            "<p class=\"muted\">no comparison store given (re-run with \
             <code>--diff-store DIR</code>)</p>\n",
        ),
        Some(d) => {
            h.push_str(&format!(
                "<p>{} cell(s) compared — <span class=\"sig\">{} significant</span> at \
                 p&lt;0.05, <span class=\"drift\">{} drifted</span></p>\n",
                d.cells.len(),
                d.significant,
                d.drift
            ));
            h.push_str(
                "<table><tr><th>workload</th><th>category</th><th>A</th><th>B</th>\
                 <th>A % [95%]</th><th>B % [95%]</th><th>Δpp</th><th>z</th><th>p</th>\
                 <th>verdict</th></tr>\n",
            );
            for c in &d.cells {
                let verdict = if c.drift {
                    "<span class=\"drift\">DRIFT</span>"
                } else if c.significant {
                    "<span class=\"sig\">significant</span>"
                } else {
                    "—"
                };
                h.push_str(&format!(
                    "<tr><td>{}</td><td>{}</td><td>{} ({}/{})</td><td>{} ({}/{})</td>\
                     <td>{:.1} [{:.1}, {:.1}]</td><td>{:.1} [{:.1}, {:.1}]</td>\
                     <td>{:+.1}</td><td>{:.2}</td><td>{:.4}</td><td>{}</td></tr>\n",
                    esc(&c.workload),
                    esc(&c.category),
                    esc(&c.isa_a),
                    c.sdc_a,
                    c.n_a,
                    esc(&c.isa_b),
                    c.sdc_b,
                    c.n_b,
                    c.rate_a,
                    c.lo_a,
                    c.hi_a,
                    c.rate_b,
                    c.lo_b,
                    c.hi_b,
                    c.delta,
                    c.z,
                    c.p,
                    verdict,
                ));
            }
            h.push_str("</table>\n");
            for s in d.only_a.iter() {
                h.push_str(&format!("<p class=\"muted\">only in A: {}</p>\n", esc(s)));
            }
            for s in d.only_b.iter() {
                h.push_str(&format!("<p class=\"muted\">only in B: {}</p>\n", esc(s)));
            }
        }
    }
    h.push_str("</section>\n");

    // Heatmaps.
    h.push_str("<section id=\"heatmap\"><h2>Vulnerability heatmaps</h2>\n");
    if inp.heatmaps.is_empty() {
        h.push_str("<p class=\"muted\">no injected trace spans (run studies with --trace)</p>\n");
    }
    for m in inp.heatmaps {
        h.push_str(&format!(
            "<h3>{} — lane × bit SDC density</h3>\n",
            esc(&m.workload)
        ));
        h.push_str(&heatmap_table(m));
        h.push_str(
            "<table><tr><th>site</th><th>opcode</th><th>categories</th>\
             <th>injections</th><th>SDC</th><th>crash</th><th>SDC %</th></tr>\n",
        );
        for s in &m.sites {
            h.push_str(&format!(
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
                 <td>{}</td><td>{:.1}</td></tr>\n",
                s.site_id,
                esc(&s.opcode),
                esc(&s.categories.join(", ")),
                s.injections,
                s.sdc,
                s.crash,
                s.sdc_rate,
            ));
        }
        h.push_str("</table>\n");
    }
    h.push_str("</section>\n");

    // Static analysis: predicted-benign fraction vs observed SDC.
    h.push_str("<section id=\"analysis\"><h2>Static analysis</h2>\n");
    if inp.analysis.is_empty() {
        h.push_str(
            "<p class=\"muted\">no static analysis (render with \
             <code>vulfi report html --trace DIR</code> over traced studies)</p>\n",
        );
    }
    for a in inp.analysis {
        let benign_pct = if a.total_bits == 0 {
            0.0
        } else {
            100.0 * a.benign_bits as f64 / a.total_bits as f64
        };
        h.push_str(&format!(
            "<h3>{} — predicted vs observed</h3>\
             <p>@{}: {} of {} scalar bits provably benign ({:.1}%)</p>\n",
            esc(&a.workload),
            esc(&a.function),
            a.benign_bits,
            a.total_bits,
            benign_pct,
        ));
        h.push_str(
            "<table><tr><th>site</th><th>value</th><th>opcode</th><th>class</th>\
             <th>predicted benign %</th><th>injections</th><th>SDC</th>\
             <th>observed SDC %</th></tr>\n",
        );
        for s in &a.sites {
            // A site the analyzer called mostly benign that still shows
            // SDCs in traces is flagged loudly — that pairing is the
            // whole point of the join.
            let suspicious = s.predicted_benign_pct >= 99.999 && s.sdc > 0;
            h.push_str(&format!(
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{:.1}</td>\
                 <td>{}</td><td>{}</td><td>{}</td></tr>\n",
                s.site_id,
                esc(&s.value),
                esc(&s.opcode),
                esc(&s.class),
                s.predicted_benign_pct,
                s.injections,
                s.sdc,
                if suspicious {
                    format!("<span class=\"sig\">{:.1}</span>", s.observed_sdc_pct)
                } else {
                    format!("{:.1}", s.observed_sdc_pct)
                },
            ));
        }
        h.push_str("</table>\n");
    }
    h.push_str("</section>\n");

    // Lane occupancy (Fig. 10-shaped dynamic composition + masking).
    h.push_str("<section id=\"occupancy\"><h2>Lane occupancy</h2>\n");
    if inp.occupancy.is_empty() {
        h.push_str("<p class=\"muted\">no occupancy profiles</p>\n");
    }
    for o in inp.occupancy {
        h.push_str(&format!(
            "<h3>{} [{}]</h3>\
             <p>{} dynamic instructions, {:.1}% vector; mean {:.2} active lanes per \
             vector instruction, {:.1}% lane utilization</p>\n",
            esc(&o.workload),
            esc(&o.isa),
            o.total,
            o.vector_pct,
            o.avg_active_lanes,
            o.lane_utilization_pct,
        ));
        let peak = o.hist.iter().map(|b| b.insts).max().unwrap_or(1).max(1) as f64;
        h.push_str("<table><tr><th>active lanes</th><th>vector insts</th><th></th></tr>\n");
        for b in &o.hist {
            let w = (240.0 * b.insts as f64 / peak).round().max(1.0);
            h.push_str(&format!(
                "<tr><td>{}</td><td>{}</td><td><svg width=\"240\" height=\"12\">\
                 <rect x=\"0\" y=\"1\" width=\"{w}\" height=\"10\" fill=\"#2980b9\"/></svg></td></tr>\n",
                b.active_lanes, b.insts
            ));
        }
        h.push_str("</table>\n");
    }
    h.push_str("</section>\n");

    // Propagation percentiles.
    h.push_str("<section id=\"propagation\"><h2>Propagation</h2>\n");
    match inp.traces {
        Some(t) if t.spans > 0 => {
            h.push_str(&format!(
                "<p>{} span(s) across {} stud{}, {} injected</p>\n",
                t.spans,
                t.studies,
                if t.studies == 1 { "y" } else { "ies" },
                t.injected
            ));
            h.push_str(
                "<table><tr><th>category</th><th>spans</th><th>SDC</th><th>benign</th>\
                 <th>crash</th><th>p50</th><th>p90</th><th>p99</th><th>max</th></tr>\n",
            );
            for c in &t.categories {
                let (p50, p90, p99, max) = match &c.propagation {
                    Some(p) => (
                        p.p50.to_string(),
                        p.p90.to_string(),
                        p.p99.to_string(),
                        p.max.to_string(),
                    ),
                    None => ("–".into(), "–".into(), "–".into(), "–".into()),
                };
                h.push_str(&format!(
                    "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
                     <td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>\n",
                    esc(&c.category),
                    c.spans,
                    c.sdc,
                    c.benign,
                    c.crash,
                    p50,
                    p90,
                    p99,
                    max
                ));
            }
            h.push_str("</table>\n");
        }
        _ => h.push_str("<p class=\"muted\">no trace spans</p>\n"),
    }
    h.push_str("</section>\n");

    // Metrics snapshot.
    h.push_str("<section id=\"metrics\"><h2>Metrics snapshot</h2>\n");
    if inp.metrics.is_empty() {
        h.push_str("<p class=\"muted\">no metrics snapshot (pass --metrics-in)</p>\n");
    } else {
        h.push_str("<table><tr><th>metric</th><th>value</th></tr>\n");
        for m in inp.metrics {
            h.push_str(&format!(
                "<tr><td>{}</td><td>{}</td></tr>\n",
                esc(&m.name),
                m.value
            ));
        }
        h.push_str("</table>\n");
    }
    h.push_str("</section>\n</body></html>\n");
    h
}

/// Convenience: build the report straight from stores.
#[allow(clippy::too_many_arguments)]
pub fn html_from_stores(
    title: &str,
    store: Option<&Store>,
    trace: Option<&TraceStore>,
    diff_against: Option<&Store>,
    occupancy: &[OccupancyProfile],
    metrics: &[MetricRow],
    analysis: &[AnalysisCell],
    gauntlet: Option<&crate::scenario::GauntletReport>,
    top_sites: usize,
) -> Result<String, OrchError> {
    let (cells, partial) = match store {
        Some(s) => load_cells(s)?,
        None => (Vec::new(), Vec::new()),
    };
    let diff = match (store, diff_against) {
        (Some(a), Some(b)) => Some(diff_stores(a, b)?),
        _ => None,
    };
    let (maps, traces) = match trace {
        Some(t) => (heatmaps(t, top_sites)?, Some(summarize(t, top_sites)?)),
        None => (Vec::new(), None),
    };
    Ok(render_html(&ReportInputs {
        title,
        cells: &cells,
        partial: &partial,
        diff: diff.as_ref(),
        heatmaps: &maps,
        occupancy,
        traces: traces.as_ref(),
        metrics,
        analysis,
        gauntlet,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(workload: &str, isa: &str, category: &str, key: &str, sdc: u64, n: u64) -> StudyCell {
        let (lo, hi) = wilson_interval_95(sdc, n);
        let rate = if n == 0 {
            0.0
        } else {
            100.0 * sdc as f64 / n as f64
        };
        StudyCell {
            key: key.to_string(),
            workload: workload.to_string(),
            isa: isa.to_string(),
            category: category.to_string(),
            sdc,
            benign: n - sdc,
            crash: 0,
            detected: 0,
            sdc_detected: 0,
            experiments: n,
            sdc_rate: rate,
            wilson_lo: 100.0 * lo,
            wilson_hi: 100.0 * hi,
            mean_sdc: rate,
            margin_95: 1.0,
            campaigns: 4,
            converged: true,
        }
    }

    #[test]
    fn identical_cells_diff_to_zero_significance() {
        let a = vec![
            cell("W", "avx", "pure-data", "k1", 40, 200),
            cell("W", "avx", "control", "k2", 10, 200),
        ];
        let b = a.clone();
        let d = diff_cells(a, b, vec![], vec![]);
        assert_eq!(d.cells.len(), 2);
        assert_eq!(d.significant, 0);
        assert_eq!(d.drift, 0);
        assert!(d.only_a.is_empty() && d.only_b.is_empty());
        for c in &d.cells {
            assert!(!c.significant);
            assert_eq!(c.delta, 0.0);
        }
    }

    #[test]
    fn large_difference_is_significant() {
        let a = vec![cell("W", "avx", "pure-data", "ka", 120, 200)];
        let b = vec![cell("W", "avx", "pure-data", "kb", 40, 200)];
        let d = diff_cells(a, b, vec![], vec![]);
        assert_eq!(d.significant, 1);
        let c = &d.cells[0];
        assert!(c.significant && c.p < 0.001);
        assert!(c.delta < 0.0, "B has the lower rate");
        assert_eq!(d.drift, 0, "different keys cannot drift");
    }

    #[test]
    fn cross_isa_fallback_join_and_only_lists() {
        let a = vec![
            cell("W", "avx", "pure-data", "k1", 50, 200),
            cell("X", "avx", "pure-data", "k3", 5, 200),
        ];
        let b = vec![
            cell("W", "sse", "pure-data", "k2", 48, 200),
            cell("Y", "sse", "control", "k4", 5, 200),
        ];
        let d = diff_cells(a, b, vec![], vec![]);
        assert_eq!(d.cells.len(), 1, "W pairs across ISAs");
        assert_eq!(d.cells[0].isa_a, "avx");
        assert_eq!(d.cells[0].isa_b, "sse");
        assert_eq!(d.only_a, vec!["X [avx] pure-data".to_string()]);
        assert_eq!(d.only_b, vec!["Y [sse] control".to_string()]);
    }

    #[test]
    fn same_key_different_counts_flags_drift() {
        let a = vec![cell("W", "avx", "pure-data", "kk", 50, 200)];
        let b = vec![cell("W", "avx", "pure-data", "kk", 52, 200)];
        let d = diff_cells(a, b, vec![], vec![]);
        assert_eq!(d.drift, 1);
        assert!(d.cells[0].drift);
        let text = render_diff_text(&d);
        assert!(text.contains("DRIFT"), "{text}");
    }

    #[test]
    fn html_report_is_self_contained_with_all_sections() {
        let cells = vec![cell("W", "avx", "pure-data", "k1", 40, 200)];
        let d = diff_cells(cells.clone(), cells.clone(), vec![], vec![]);
        let maps = vec![WorkloadHeatmap {
            workload: "W".to_string(),
            lanes: 2,
            bits: 3,
            grid: vec![LaneBitCell {
                lane: 0,
                bit: 2,
                injections: 5,
                sdc: 3,
            }],
            sites: vec![SiteRow {
                site_id: 1,
                opcode: "fmul".to_string(),
                categories: vec!["pure-data".to_string()],
                injections: 5,
                sdc: 3,
                crash: 0,
                sdc_rate: 60.0,
            }],
        }];
        let occ = vec![OccupancyProfile {
            workload: "W".to_string(),
            isa: "avx".to_string(),
            total: 100,
            vector: 40,
            vector_pct: 40.0,
            lanes_active: 280,
            lanes_total: 320,
            avg_active_lanes: 7.0,
            lane_utilization_pct: 87.5,
            hist: vec![
                OccupancyBucket {
                    active_lanes: 3,
                    insts: 8,
                },
                OccupancyBucket {
                    active_lanes: 8,
                    insts: 32,
                },
            ],
        }];
        let gauntlet = crate::scenario::GauntletReport {
            scenario: "smoke".to_string(),
            cells: vec![crate::scenario::CellVerdict {
                bench: "W".to_string(),
                isa: "avx".to_string(),
                category: "pure-data".to_string(),
                model: "multi-bit-burst:2".to_string(),
                key: "k1".to_string(),
                experiments: 200,
                sdc: 40,
                benign: 150,
                crash: 10,
                sdc_detected: 0,
                sdc_rate: 20.0,
                converged: true,
                invariants: vec![crate::scenario::InvariantVerdict {
                    name: "sdc_rate_max".to_string(),
                    threshold: 10.0,
                    observed: 20.0,
                    lo: 15.0,
                    hi: 26.0,
                    breached: true,
                    vacuous: false,
                }],
            }],
        };
        let html = render_html(&ReportInputs {
            title: "vulfi <report> & test",
            cells: &cells,
            partial: &[],
            diff: Some(&d),
            heatmaps: &maps,
            occupancy: &occ,
            traces: None,
            metrics: &[MetricRow {
                name: "vulfi_experiments_total".to_string(),
                value: 200.0,
            }],
            analysis: &[AnalysisCell {
                workload: "W".to_string(),
                function: "kernel".to_string(),
                total_bits: 1024,
                benign_bits: 256,
                sites: vec![AnalysisSiteRow {
                    site_id: 1,
                    value: "%acc".to_string(),
                    opcode: "fmul".to_string(),
                    class: "pure-data".to_string(),
                    predicted_benign_pct: 100.0,
                    injections: 5,
                    sdc: 3,
                    observed_sdc_pct: 60.0,
                }],
            }],
            gauntlet: Some(&gauntlet),
        });
        for id in [
            "studies",
            "gauntlet",
            "diff",
            "heatmap",
            "analysis",
            "occupancy",
            "propagation",
            "metrics",
        ] {
            assert!(
                html.contains(&format!("id=\"{id}\"")),
                "missing section {id}"
            );
        }
        // Self-contained: no scripts, no external fetches of any kind.
        for needle in ["<script", "http://", "https://", "<link", "@import", "url("] {
            assert!(!html.contains(needle), "external reference: {needle}");
        }
        // Title is escaped, charts are inline SVG.
        assert!(html.contains("vulfi &lt;report&gt; &amp; test"));
        assert!(html.contains("<svg"));
        // The gauntlet section names the breached invariant and model.
        assert!(html.contains("FAIL (sdc_rate_max)"), "{html}");
        assert!(html.contains("multi-bit-burst:2"));
        // A 100%-predicted-benign site with observed SDC is flagged.
        assert!(html.contains("256 of 1024 scalar bits provably benign"));
        assert!(html.contains("<span class=\"sig\">60.0"), "{html}");
    }

    #[test]
    fn heatmap_text_rendering() {
        let maps = vec![WorkloadHeatmap {
            workload: "W".to_string(),
            lanes: 2,
            bits: 8,
            grid: vec![
                LaneBitCell {
                    lane: 0,
                    bit: 1,
                    injections: 4,
                    sdc: 2,
                },
                LaneBitCell {
                    lane: 1,
                    bit: 7,
                    injections: 2,
                    sdc: 0,
                },
            ],
            sites: vec![],
        }];
        let text = render_heatmap_text(&maps);
        assert!(
            text.contains("lane  0:     4 injection(s),    2 SDC"),
            "{text}"
        );
        assert!(render_heatmap_text(&[]).contains("no injected trace spans"));
    }

    // ---- store-backed fixtures ----

    use crate::store::{Manifest, ShardRecord, Store};
    use crate::tracestore::{TraceShard, TraceStore};
    use crate::StudyKey;
    use std::path::PathBuf;
    use vir::analysis::SiteCategory;
    use vulfi::{Experiment, ExperimentTrace, StudyConfig, TraceInjection};

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("vulfi-analytics-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn synth_cfg() -> StudyConfig {
        StudyConfig {
            experiments_per_campaign: 10,
            target_margin: 3.0,
            min_campaigns: 4,
            max_campaigns: 4,
            seed: 1,
            ..StudyConfig::default()
        }
    }

    /// Write one complete 4-campaign study: campaign `c` has
    /// `sdc_per_campaign[c]` SDCs out of 10 experiments.
    fn synth_study(
        store: &Store,
        key: &str,
        workload: &str,
        isa: &str,
        sdc_per_campaign: [usize; 4],
    ) {
        let cfg = synth_cfg();
        let key = StudyKey(key.to_string());
        let study = store.study(&key);
        study
            .write_manifest(&Manifest {
                key: key.clone(),
                workload: workload.to_string(),
                isa: isa.to_string(),
                category: SiteCategory::PureData,
                entry: "f".to_string(),
                cfg,
                total_shards: 4,
                complete: true,
            })
            .unwrap();
        for (c, &sdc) in sdc_per_campaign.iter().enumerate() {
            let experiments = (0..cfg.experiments_per_campaign)
                .map(|i| Experiment {
                    outcome: if i < sdc {
                        Outcome::Sdc
                    } else {
                        Outcome::Benign
                    },
                    detected: false,
                    injection: None,
                    input: 0,
                    dynamic_sites: 1,
                    golden_dyn_insts: 5,
                })
                .collect();
            study
                .append_shard(&ShardRecord {
                    campaign: c,
                    start: 0,
                    end: cfg.experiments_per_campaign,
                    experiments,
                    wall_ns: 0,
                })
                .unwrap();
        }
    }

    #[test]
    fn empty_store_has_no_cells_and_diffs_clean() {
        let da = tmpdir("empty-a");
        let db = tmpdir("empty-b");
        let a = Store::open(&da).unwrap();
        let b = Store::open(&db).unwrap();
        let (cells, partial) = load_cells(&a).unwrap();
        assert!(cells.is_empty() && partial.is_empty());
        let d = diff_stores(&a, &b).unwrap();
        assert!(d.cells.is_empty());
        assert_eq!((d.significant, d.drift), (0, 0));
        let html =
            html_from_stores("empty", Some(&a), None, None, &[], &[], &[], None, 10).unwrap();
        assert!(html.contains("no complete studies"));
        assert!(html.contains("id=\"heatmap\"") && html.contains("id=\"diff\""));
        std::fs::remove_dir_all(&da).unwrap();
        std::fs::remove_dir_all(&db).unwrap();
    }

    #[test]
    fn same_key_same_counts_diff_has_zero_significant_cells() {
        let da = tmpdir("twin-a");
        let db = tmpdir("twin-b");
        let a = Store::open(&da).unwrap();
        let b = Store::open(&db).unwrap();
        // Two stores holding the same study key with identical merged
        // counts — what two resumed runs of one study must produce.
        synth_study(&a, "kAAAA", "stencil", "avx", [3, 4, 3, 4]);
        synth_study(&b, "kAAAA", "stencil", "avx", [3, 4, 3, 4]);
        let d = diff_stores(&a, &b).unwrap();
        assert_eq!(d.cells.len(), 1);
        assert_eq!(d.significant, 0, "identical stores cannot differ");
        assert_eq!(d.drift, 0);
        let c = &d.cells[0];
        assert_eq!((c.sdc_a, c.n_a), (14, 40));
        assert_eq!((c.sdc_b, c.n_b), (14, 40));
        assert!(!c.significant && !c.drift);
        std::fs::remove_dir_all(&da).unwrap();
        std::fs::remove_dir_all(&db).unwrap();
    }

    #[test]
    fn drifted_resume_of_same_key_is_flagged() {
        let da = tmpdir("drift-a");
        let db = tmpdir("drift-b");
        let a = Store::open(&da).unwrap();
        let b = Store::open(&db).unwrap();
        synth_study(&a, "kDDDD", "stencil", "avx", [3, 4, 3, 4]);
        synth_study(&b, "kDDDD", "stencil", "avx", [3, 4, 3, 5]);
        let d = diff_stores(&a, &b).unwrap();
        assert_eq!(
            d.drift, 1,
            "same key, different counts = determinism violation"
        );
        assert!(d.cells[0].drift);
        std::fs::remove_dir_all(&da).unwrap();
        std::fs::remove_dir_all(&db).unwrap();
    }

    #[test]
    fn partial_study_is_excluded_and_named() {
        let dir = tmpdir("partial");
        let store = Store::open(&dir).unwrap();
        let cfg = synth_cfg();
        let key = StudyKey("kPPPP".to_string());
        let study = store.study(&key);
        study
            .write_manifest(&Manifest {
                key: key.clone(),
                workload: "dot".to_string(),
                isa: "sse".to_string(),
                category: SiteCategory::PureData,
                entry: "f".to_string(),
                cfg,
                total_shards: 4,
                complete: false,
            })
            .unwrap();
        // Only campaign 0 of 4 landed: unmergeable.
        study
            .append_shard(&ShardRecord {
                campaign: 0,
                start: 0,
                end: 10,
                experiments: (0..10)
                    .map(|_| Experiment {
                        outcome: Outcome::Benign,
                        detected: false,
                        injection: None,
                        input: 0,
                        dynamic_sites: 1,
                        golden_dyn_insts: 5,
                    })
                    .collect(),
                wall_ns: 0,
            })
            .unwrap();
        let (cells, partial) = load_cells(&store).unwrap();
        assert!(cells.is_empty());
        assert_eq!(partial.len(), 1);
        assert!(
            partial[0].contains("dot") && partial[0].contains("sse"),
            "{partial:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn heat_span(
        index: usize,
        outcome: Outcome,
        site: u32,
        lane: u32,
        bit: u32,
    ) -> ExperimentTrace {
        ExperimentTrace {
            index,
            outcome,
            detected: false,
            input: 0,
            injection: Some(TraceInjection {
                site_id: site,
                opcode: "fmul".to_string(),
                categories: vec!["pure-data".to_string()],
                lane,
                bit,
                occurrence: 1,
                at_dyn_inst: 10,
            }),
            golden_dyn_insts: 100,
            faulty_dyn_insts: 100,
            dyn_inst_delta: 0,
            propagation: None,
            trap: None,
            wall_ns: 1000,
        }
    }

    #[test]
    fn heatmaps_aggregate_and_deduplicate_spans() {
        let dir = tmpdir("heat");
        let store = TraceStore::open(&dir).unwrap();
        let log = store.study(&StudyKey("kH".to_string()));
        let shard = |campaign, start, traces: Vec<ExperimentTrace>| TraceShard {
            campaign,
            start,
            end: start + traces.len(),
            workload: "W".to_string(),
            category: "pure-data".to_string(),
            isa: "avx".to_string(),
            model: "single-bit-flip".to_string(),
            traces,
        };
        log.append_shard(&shard(
            0,
            0,
            vec![
                heat_span(0, Outcome::Sdc, 1, 0, 3),
                heat_span(1, Outcome::Benign, 2, 1, 5),
            ],
        ))
        .unwrap();
        // A resumed run re-appends experiment 0: must not double-count.
        log.append_shard(&shard(0, 0, vec![heat_span(0, Outcome::Sdc, 1, 0, 3)]))
            .unwrap();
        log.append_shard(&shard(1, 0, vec![heat_span(0, Outcome::Crash, 1, 0, 3)]))
            .unwrap();

        let maps = heatmaps(&store, 10).unwrap();
        assert_eq!(maps.len(), 1);
        let m = &maps[0];
        assert_eq!(m.workload, "W");
        assert_eq!((m.lanes, m.bits), (2, 6));
        let cell = m.grid.iter().find(|c| c.lane == 0 && c.bit == 3).unwrap();
        assert_eq!(
            (cell.injections, cell.sdc),
            (2, 1),
            "duplicate span deduplicated; campaign-1 crash counted"
        );
        let top = &m.sites[0];
        assert_eq!(top.site_id, 1);
        assert_eq!((top.injections, top.sdc, top.crash), (2, 1, 1));
        assert_eq!(top.categories, vec!["pure-data".to_string()]);

        // A burst-model study in the same store: the unfiltered view
        // merges it, a model filter separates it (by full name or kind).
        let blog = store.study(&StudyKey("kB".to_string()));
        let mut burst = shard(0, 0, vec![heat_span(0, Outcome::Sdc, 9, 1, 2)]);
        burst.model = "multi-bit-burst:2".to_string();
        blog.append_shard(&burst).unwrap();

        let only_burst = heatmaps_filtered(&store, 10, Some("multi-bit-burst")).unwrap();
        assert_eq!(only_burst.len(), 1);
        assert_eq!(only_burst[0].sites[0].site_id, 9);
        let exact = heatmaps_filtered(&store, 10, Some("multi-bit-burst:2")).unwrap();
        assert_eq!(exact, only_burst);
        let only_default = heatmaps_filtered(&store, 10, Some("single-bit-flip")).unwrap();
        assert!(only_default[0].sites.iter().all(|s| s.site_id != 9));
        assert!(heatmaps_filtered(&store, 10, Some("memory-cell"))
            .unwrap()
            .is_empty());

        // Empty trace store → no heatmaps.
        let empty = tmpdir("heat-empty");
        let es = TraceStore::open(&empty).unwrap();
        assert!(heatmaps(&es, 10).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&empty).unwrap();
    }
}
