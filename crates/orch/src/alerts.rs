//! Declarative alert rules over the telemetry series.
//!
//! A rule names one telemetry series, a threshold, and a sustain
//! window. Rules live in a TOML or JSON file with the same parser
//! discipline as the scenario DSL: unknown fields and unknown kinds are
//! hard errors, never silently ignored — a typo'd rule that evaluates
//! to "never fires" is worse than no rule at all.
//!
//! ```toml
//! [high-sdc]
//! kind = "sdc_rate_above"
//! threshold = 5.0        # percent
//! sustain_secs = 30.0    # must hold this long before firing
//! ```
//!
//! Sustain semantics: a rule fires when the *latest* sample violates
//! its threshold and the contiguous run of violating samples ending at
//! the latest one spans at least `sustain_secs`. Any single
//! non-violating sample resets the streak, so a flapping series never
//! fires; `sustain_secs = 0` fires on the first violating sample.
//!
//! Evaluation is a pure function of the sample window — the same rules
//! file gives the same verdicts offline (`vulfi alerts check` over
//! `<store>/telemetry/`) and live (the daemon's sampler thread, which
//! also turns firing/resolved transitions into ops events).

use crate::telemetry::TelemetrySample;

/// The telemetry series an alert rule can watch, each paired with the
/// direction that counts as a violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum AlertKind {
    /// Cumulative SDC share of all experiments, percent.
    SdcRateAbove,
    /// Experiments/second over the last sampling interval.
    ExpSBelow,
    /// Queue-wait p99, seconds.
    QueueWaitP99Above,
    /// Engine faults/second over the last sampling interval.
    EngineFaultRateAbove,
    /// Lease expirations/second over the last sampling interval.
    LeaseExpiryChurnAbove,
}

/// Every kind, in rule-grammar order (error messages list these).
pub const ALERT_KINDS: [AlertKind; 5] = [
    AlertKind::SdcRateAbove,
    AlertKind::ExpSBelow,
    AlertKind::QueueWaitP99Above,
    AlertKind::EngineFaultRateAbove,
    AlertKind::LeaseExpiryChurnAbove,
];

impl AlertKind {
    /// The grammar-level name used in rule files.
    pub fn name(&self) -> &'static str {
        match self {
            AlertKind::SdcRateAbove => "sdc_rate_above",
            AlertKind::ExpSBelow => "exp_s_below",
            AlertKind::QueueWaitP99Above => "queue_wait_p99_above",
            AlertKind::EngineFaultRateAbove => "engine_fault_rate_above",
            AlertKind::LeaseExpiryChurnAbove => "lease_expiry_churn_above",
        }
    }

    pub fn parse(s: &str) -> Result<AlertKind, String> {
        ALERT_KINDS
            .iter()
            .copied()
            .find(|k| k.name() == s)
            .ok_or_else(|| {
                let valid: Vec<&str> = ALERT_KINDS.iter().map(|k| k.name()).collect();
                format!("unknown alert kind '{s}' (valid: {})", valid.join(", "))
            })
    }

    /// The watched series' value in one sample.
    pub fn value(&self, s: &TelemetrySample) -> f64 {
        match self {
            AlertKind::SdcRateAbove => s.sdc_rate,
            AlertKind::ExpSBelow => s.exp_per_sec,
            AlertKind::QueueWaitP99Above => s.queue_wait_p99_s,
            AlertKind::EngineFaultRateAbove => s.engine_fault_rate,
            AlertKind::LeaseExpiryChurnAbove => s.lease_expiry_churn,
        }
    }

    /// Does `value` violate `threshold` for this kind's direction?
    pub fn violated(&self, value: f64, threshold: f64) -> bool {
        match self {
            AlertKind::ExpSBelow => value < threshold,
            _ => value > threshold,
        }
    }
}

/// One named rule: watch a series, compare against a threshold, demand
/// the violation hold for a sustain window before firing.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AlertRule {
    pub name: String,
    pub kind: AlertKind,
    pub threshold: f64,
    /// Seconds the violation must hold contiguously before the rule
    /// fires. Zero fires on the first violating sample.
    pub sustain_secs: f64,
}

fn rule_from_table(name: &str, table: &serde::Value) -> Result<AlertRule, String> {
    let obj = table
        .as_object()
        .ok_or_else(|| format!("alert rule '{name}' must be a table of key = value pairs"))?;
    let mut kind: Option<AlertKind> = None;
    let mut threshold: Option<f64> = None;
    let mut sustain_secs = 0.0f64;
    for (key, value) in obj {
        match key.as_str() {
            "kind" => {
                let s = value
                    .as_str()
                    .ok_or_else(|| format!("alert rule '{name}': kind must be a string"))?;
                kind = Some(AlertKind::parse(s).map_err(|e| format!("alert rule '{name}': {e}"))?);
            }
            "threshold" => {
                threshold =
                    Some(value.as_f64().ok_or_else(|| {
                        format!("alert rule '{name}': threshold must be a number")
                    })?);
            }
            "sustain_secs" => {
                sustain_secs = value
                    .as_f64()
                    .ok_or_else(|| format!("alert rule '{name}': sustain_secs must be a number"))?;
                if sustain_secs < 0.0 {
                    return Err(format!("alert rule '{name}': sustain_secs must be >= 0"));
                }
            }
            other => {
                return Err(format!(
                    "alert rule '{name}': unknown field '{other}' \
                     (valid: kind, threshold, sustain_secs)"
                ))
            }
        }
    }
    Ok(AlertRule {
        name: name.to_string(),
        kind: kind.ok_or_else(|| format!("alert rule '{name}': missing required field 'kind'"))?,
        threshold: threshold
            .ok_or_else(|| format!("alert rule '{name}': missing required field 'threshold'"))?,
        sustain_secs,
    })
}

/// Parse a rules file. TOML: one flat `[rule-name]` table per rule.
/// JSON: one object keyed by rule name. Auto-detected like the
/// scenario DSL; unknown fields rejected either way.
pub fn parse_alert_rules(text: &str) -> Result<Vec<AlertRule>, String> {
    let doc = if text.trim_start().starts_with('{') {
        serde_json::from_str::<serde::Value>(text).map_err(|e| format!("alert rules JSON: {e}"))?
    } else {
        crate::scenario::parse_toml(text)?
    };
    let obj = doc
        .as_object()
        .ok_or_else(|| "alert rules must be a table of named rules".to_string())?;
    let mut rules = Vec::new();
    for (name, table) in obj {
        if !matches!(table, serde::Value::Object(_)) {
            return Err(format!(
                "top-level key '{name}' must be a [table] defining a rule, not a bare value"
            ));
        }
        rules.push(rule_from_table(name, table)?);
    }
    if rules.is_empty() {
        return Err("alert rules file defines no rules".to_string());
    }
    Ok(rules)
}

/// One rule's verdict over a sample window.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AlertState {
    pub rule: AlertRule,
    pub firing: bool,
    /// The watched series' latest value (0 when the window is empty).
    pub value: f64,
    /// When firing: unix_ms of the first sample in the violating
    /// streak.
    pub since_unix_ms: Option<u64>,
}

/// Evaluate one rule over an oldest-first sample window.
pub fn evaluate_rule(rule: &AlertRule, samples: &[TelemetrySample]) -> AlertState {
    let latest = match samples.last() {
        Some(s) => s,
        None => {
            return AlertState {
                rule: rule.clone(),
                firing: false,
                value: 0.0,
                since_unix_ms: None,
            }
        }
    };
    let value = rule.kind.value(latest);
    // Walk backward through the contiguous violating streak ending at
    // the latest sample; the first non-violating sample breaks it.
    let mut streak_start: Option<u64> = None;
    for s in samples.iter().rev() {
        if rule.kind.violated(rule.kind.value(s), rule.threshold) {
            streak_start = Some(s.unix_ms);
        } else {
            break;
        }
    }
    let firing = match streak_start {
        Some(start) => {
            let held_ms = latest.unix_ms.saturating_sub(start);
            held_ms as f64 >= rule.sustain_secs * 1000.0
        }
        None => false,
    };
    AlertState {
        rule: rule.clone(),
        firing,
        value,
        since_unix_ms: if firing { streak_start } else { None },
    }
}

/// A firing-state transition, for logging as an ops event.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertTransition {
    pub rule: String,
    pub firing: bool,
    pub value: f64,
}

/// Stateful evaluator: remembers each rule's previous firing state so
/// the daemon can log only the *transitions* (firing → resolved and
/// back), not every sample tick.
#[derive(Debug, Default)]
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    prev_firing: Vec<bool>,
}

impl AlertEngine {
    pub fn new(rules: Vec<AlertRule>) -> AlertEngine {
        let prev_firing = vec![false; rules.len()];
        AlertEngine { rules, prev_firing }
    }

    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// Evaluate every rule over the window; the second return lists
    /// rules whose firing state changed since the previous call.
    pub fn evaluate(
        &mut self,
        samples: &[TelemetrySample],
    ) -> (Vec<AlertState>, Vec<AlertTransition>) {
        let mut states = Vec::with_capacity(self.rules.len());
        let mut transitions = Vec::new();
        for (i, rule) in self.rules.iter().enumerate() {
            let state = evaluate_rule(rule, samples);
            if state.firing != self.prev_firing[i] {
                transitions.push(AlertTransition {
                    rule: rule.name.clone(),
                    firing: state.firing,
                    value: state.value,
                });
                self.prev_firing[i] = state.firing;
            }
            states.push(state);
        }
        (states, transitions)
    }
}

/// Render verdicts as the `vulfi alerts check` text report.
pub fn render_alerts_text(states: &[AlertState]) -> String {
    let mut out = String::new();
    for s in states {
        let status = if s.firing { "FIRING  " } else { "ok      " };
        let since = match s.since_unix_ms {
            Some(ms) => format!("  since unix_ms {ms}"),
            None => String::new(),
        };
        out.push_str(&format!(
            "{status}{:<24} {} threshold {}  sustain {}s  value {:.4}{since}\n",
            s.rule.name,
            s.rule.kind.name(),
            s.rule.threshold,
            s.rule.sustain_secs,
            s.value
        ));
    }
    out
}

/// Render verdicts as JSON (the `GET /alerts` body and `--json` form).
pub fn render_alerts_json(states: &[AlertState]) -> Result<String, crate::OrchError> {
    use serde::Serialize as _;
    let items: Vec<serde_json::Value> = states
        .iter()
        .map(|s| {
            serde_json::json!({
                "rule": s.rule.name.clone(),
                "kind": s.rule.kind.name(),
                "threshold": s.rule.threshold,
                "sustain_secs": s.rule.sustain_secs,
                "firing": s.firing,
                "value": s.value,
                "since_unix_ms": s.since_unix_ms.to_value(),
            })
        })
        .collect();
    let firing = states.iter().filter(|s| s.firing).count() as u64;
    serde_json::to_string_pretty(&serde_json::json!({
        "firing": firing,
        "alerts": items,
    }))
    .map_err(|e| crate::OrchError(format!("encode alerts: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(unix_ms: u64, sdc_rate: f64, exp_per_sec: f64) -> TelemetrySample {
        TelemetrySample {
            unix_ms,
            experiments_total: 100,
            sdc: 10,
            benign: 90,
            crash: 0,
            exp_per_sec,
            sdc_rate,
            queue_depth: 0,
            active_leases: 0,
            lease_expired: 0,
            lease_expiry_churn: 0.0,
            engine_faults: 0,
            engine_fault_rate: 0.0,
            store_retries: 0,
            shard_p50_s: 0.0,
            shard_p99_s: 0.0,
            queue_wait_p50_s: 0.0,
            queue_wait_p99_s: 0.0,
        }
    }

    fn rule(kind: AlertKind, threshold: f64, sustain_secs: f64) -> AlertRule {
        AlertRule {
            name: "r".to_string(),
            kind,
            threshold,
            sustain_secs,
        }
    }

    #[test]
    fn toml_rules_parse_with_defaults_and_reject_unknowns() {
        let rules = parse_alert_rules(
            "# production tripwires\n\
             [high-sdc]\n\
             kind = \"sdc_rate_above\"\n\
             threshold = 5.0\n\
             sustain_secs = 30.0\n\
             \n\
             [stalled]\n\
             kind = \"exp_s_below\"\n\
             threshold = 100\n",
        )
        .unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].name, "high-sdc");
        assert_eq!(rules[0].kind, AlertKind::SdcRateAbove);
        assert_eq!(rules[0].sustain_secs, 30.0);
        assert_eq!(rules[1].kind, AlertKind::ExpSBelow);
        assert_eq!(rules[1].threshold, 100.0);
        assert_eq!(rules[1].sustain_secs, 0.0, "sustain defaults to 0");

        let err = parse_alert_rules("[r]\nkind = \"sdc_rate_above\"\nthreshold = 1\nfoo = 2\n")
            .unwrap_err();
        assert!(err.contains("unknown field 'foo'"), "{err}");
        let err =
            parse_alert_rules("[r]\nkind = \"sdc_rate_way_above\"\nthreshold = 1\n").unwrap_err();
        assert!(err.contains("unknown alert kind"), "{err}");
        assert!(err.contains("lease_expiry_churn_above"), "{err}");
        let err = parse_alert_rules("[r]\nkind = \"sdc_rate_above\"\n").unwrap_err();
        assert!(err.contains("missing required field 'threshold'"), "{err}");
        let err = parse_alert_rules("loose = 1\n").unwrap_err();
        assert!(err.contains("must be a [table]"), "{err}");
        assert!(parse_alert_rules("").is_err(), "empty file is an error");
    }

    #[test]
    fn json_rules_parse_like_toml() {
        let rules = parse_alert_rules(
            "{\"high-sdc\": {\"kind\": \"sdc_rate_above\", \"threshold\": 5.0, \
             \"sustain_secs\": 30.0}}",
        )
        .unwrap();
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].kind, AlertKind::SdcRateAbove);
        let err = parse_alert_rules(
            "{\"r\": {\"kind\": \"sdc_rate_above\", \"threshold\": 1, \
             \"nope\": true}}",
        )
        .unwrap_err();
        assert!(err.contains("unknown field 'nope'"), "{err}");
    }

    #[test]
    fn sustain_zero_fires_on_first_violation() {
        let r = rule(AlertKind::SdcRateAbove, 5.0, 0.0);
        let window = [sample(1000, 2.0, 10.0), sample(2000, 9.0, 10.0)];
        let state = evaluate_rule(&r, &window);
        assert!(state.firing);
        assert_eq!(state.since_unix_ms, Some(2000));
        assert_eq!(state.value, 9.0);
    }

    #[test]
    fn sustain_window_requires_contiguous_violation() {
        let r = rule(AlertKind::SdcRateAbove, 5.0, 2.0);
        // Violating for only 1 s of a 2 s sustain: not firing.
        let short = [sample(1000, 9.0, 10.0), sample(2000, 9.0, 10.0)];
        assert!(!evaluate_rule(&r, &short).firing);
        // Violating for the full window: fires, anchored at streak
        // start.
        let held = [
            sample(1000, 2.0, 10.0),
            sample(2000, 9.0, 10.0),
            sample(3000, 9.0, 10.0),
            sample(4000, 9.0, 10.0),
        ];
        let state = evaluate_rule(&r, &held);
        assert!(state.firing);
        assert_eq!(state.since_unix_ms, Some(2000));
    }

    #[test]
    fn flapping_series_never_fires() {
        let r = rule(AlertKind::SdcRateAbove, 5.0, 2.0);
        // Alternating violate/recover for 10 s: every recovery resets
        // the streak, so a 2 s sustain is never met.
        let window: Vec<TelemetrySample> = (0..10)
            .map(|i| {
                let v = if i % 2 == 0 { 9.0 } else { 2.0 };
                sample(1000 * (i + 1), v, 10.0)
            })
            .collect();
        assert!(!evaluate_rule(&r, &window).firing);
        // And when the latest sample itself is healthy, never firing
        // regardless of history.
        let mut recovered = window;
        recovered.push(sample(60_000, 2.0, 10.0));
        assert!(!evaluate_rule(&r, &recovered).firing);
    }

    #[test]
    fn below_kind_inverts_direction_and_empty_window_is_quiet() {
        let r = rule(AlertKind::ExpSBelow, 100.0, 0.0);
        assert!(evaluate_rule(&r, &[sample(1000, 0.0, 50.0)]).firing);
        assert!(!evaluate_rule(&r, &[sample(1000, 0.0, 200.0)]).firing);
        assert!(!evaluate_rule(&r, &[]).firing, "no samples, no alert");
    }

    #[test]
    fn engine_reports_only_transitions() {
        let rules = vec![rule(AlertKind::SdcRateAbove, 5.0, 0.0)];
        let mut engine = AlertEngine::new(rules);
        let quiet = [sample(1000, 2.0, 10.0)];
        let loud = [sample(1000, 2.0, 10.0), sample(2000, 9.0, 10.0)];

        let (_, t) = engine.evaluate(&quiet);
        assert!(t.is_empty(), "no transition while quiet");
        let (states, t) = engine.evaluate(&loud);
        assert!(states[0].firing);
        assert_eq!(t.len(), 1);
        assert!(t[0].firing);
        let (_, t) = engine.evaluate(&loud);
        assert!(t.is_empty(), "still firing is not a transition");
        let (_, t) = engine.evaluate(&quiet);
        assert_eq!(t.len(), 1);
        assert!(!t[0].firing, "resolution is a transition");
    }

    #[test]
    fn renderers_cover_firing_and_quiet() {
        let r = rule(AlertKind::SdcRateAbove, 5.0, 0.0);
        let states = vec![
            evaluate_rule(&r, &[sample(1000, 9.0, 10.0)]),
            evaluate_rule(&r, &[sample(1000, 2.0, 10.0)]),
        ];
        let text = render_alerts_text(&states);
        assert!(text.contains("FIRING"), "{text}");
        assert!(text.contains("ok"), "{text}");
        let json = render_alerts_json(&states).unwrap();
        let doc: serde::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(doc.get("firing").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(
            doc.get("alerts").and_then(|v| v.as_array()).unwrap().len(),
            2
        );
    }
}
