//! Causal span export: stitch ops events and per-experiment traces
//! into a parent/child span tree and emit Chrome trace-event JSON.
//!
//! The tree has four layers, one per orchestration layer:
//!
//! ```text
//! request     submit → terminal      (one per job, from the ops log)
//! └─ job      start → merge          (the active-study window)
//!    └─ shard lease → durable append (one per ShardDone event)
//!       └─ experiment               (spans from the trace store)
//! ```
//!
//! Two sources, same output shape:
//!
//! - **Served campaigns** have an ops log: spans carry real wall-clock
//!   timestamps, shards land on per-worker tracks, and experiment spans
//!   from a trace store (when one is given) are laid out inside their
//!   shard's window.
//! - **Local traced studies** have no ops log, only trace shards. The
//!   exporter synthesizes the request/job scaffolding on a relative
//!   timeline starting at 0 — the causal nesting is real (it is how the
//!   runner executed), only the absolute clock is absent.
//!
//! Output is the Chrome trace-event format (`{"traceEvents": [...]}`,
//! complete `"ph": "X"` duration events, microsecond timestamps),
//! loadable in Perfetto or chrome://tracing. [`validate_chrome`]
//! re-parses an export and proves the per-layer counts and the
//! parent/child containment — `vulfi trace export` runs it on its own
//! output before reporting success.

use serde::Serialize as _;

use crate::events::{OpsEvent, OpsKind};
use crate::key::StudyKey;
use crate::tracestore::{TraceShard, TraceStore};
use crate::OrchError;
use vulfi::Outcome;

/// One complete (`ph = "X"`) span. Timestamps and durations are
/// microseconds, as the trace-event format specifies.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeSpan {
    pub name: String,
    /// Layer: `request`, `job`, `shard`, or `experiment`.
    pub cat: String,
    pub ts_us: f64,
    pub dur_us: f64,
    /// Process track: one per job (served) or per study (local).
    pub pid: u64,
    /// Thread track: 0 for request/job scaffolding, 1+N for worker N.
    pub tid: u64,
    pub args: serde_json::Value,
}

fn outcome_name(o: Outcome) -> &'static str {
    match o {
        Outcome::Sdc => "sdc",
        Outcome::Benign => "benign",
        Outcome::Crash => "crash",
    }
}

fn short_key(k: &str) -> &str {
    &k[..12.min(k.len())]
}

/// Lay one shard's experiment spans back-to-back inside the shard's
/// window, compressing uniformly if their summed wall time exceeds it
/// (tracing overhead can make the parts exceed the measured whole;
/// containment is the invariant worth keeping).
fn experiment_spans(
    shard: &TraceShard,
    shard_ts_us: f64,
    shard_dur_us: f64,
    pid: u64,
    tid: u64,
    out: &mut Vec<ChromeSpan>,
) {
    let sum_us: f64 = shard
        .traces
        .iter()
        .map(|t| (t.wall_ns as f64 / 1000.0).max(0.001))
        .sum();
    let scale = if sum_us > shard_dur_us && sum_us > 0.0 {
        shard_dur_us / sum_us
    } else {
        1.0
    };
    let mut cursor = shard_ts_us;
    for t in &shard.traces {
        let dur = (t.wall_ns as f64 / 1000.0).max(0.001) * scale;
        out.push(ChromeSpan {
            name: format!("exp {}", t.index),
            cat: "experiment".to_string(),
            ts_us: cursor,
            dur_us: dur,
            pid,
            tid,
            args: serde_json::json!({
                "outcome": outcome_name(t.outcome),
                "campaign": shard.campaign as u64,
                "index": t.index as u64,
            }),
        });
        cursor += dur;
    }
}

/// Build the span tree from an ops log, attaching experiment spans from
/// `traces` where a traced shard matches a `ShardDone` event's
/// coordinates.
pub fn spans_from_ops(
    events: &[OpsEvent],
    traces: Option<&TraceStore>,
) -> Result<Vec<ChromeSpan>, OrchError> {
    let mut spans = Vec::new();
    let mut jobs: Vec<u64> = events.iter().filter_map(|e| e.job).collect();
    jobs.sort_unstable();
    jobs.dedup();
    // Stable worker → thread-track mapping across the whole log.
    let mut workers: Vec<String> = events.iter().filter_map(|e| e.worker.clone()).collect();
    workers.sort();
    workers.dedup();
    let worker_tid = |w: &Option<String>| match w
        .as_deref()
        .and_then(|w| workers.iter().position(|x| x == w))
    {
        Some(i) => i as u64 + 1,
        None => 1,
    };

    for job in jobs {
        let evs: Vec<&OpsEvent> = events.iter().filter(|e| e.job == Some(job)).collect();
        let key = evs.iter().find_map(|e| e.key.clone());
        let pid = job + 1; // pid 0 renders oddly in viewers
        let first_ms = evs.iter().map(|e| e.unix_ms).min().unwrap_or(0);
        let last_ms = evs.iter().map(|e| e.unix_ms).max().unwrap_or(first_ms);
        let submitted_ms = evs
            .iter()
            .find(|e| e.kind == OpsKind::Submitted)
            .map(|e| e.unix_ms)
            .unwrap_or(first_ms);
        let terminal_ms = evs
            .iter()
            .find(|e| matches!(e.kind, OpsKind::Completed | OpsKind::Failed))
            .map(|e| e.unix_ms)
            .unwrap_or(last_ms);
        let req_ts = submitted_ms as f64 * 1000.0;
        let req_dur = ((terminal_ms.saturating_sub(submitted_ms)) as f64 * 1000.0).max(4.0);
        spans.push(ChromeSpan {
            name: match &key {
                Some(k) => format!("request job {job} ({})", short_key(k)),
                None => format!("request job {job}"),
            },
            cat: "request".to_string(),
            ts_us: req_ts,
            dur_us: req_dur,
            pid,
            tid: 0,
            args: serde_json::json!({"job": job, "key": key.to_value()}),
        });

        let started_ms = evs
            .iter()
            .find(|e| e.kind == OpsKind::Started)
            .map(|e| e.unix_ms)
            .unwrap_or(submitted_ms);
        let merged_ms = evs
            .iter()
            .find(|e| e.kind == OpsKind::Merged)
            .map(|e| e.unix_ms)
            .unwrap_or(terminal_ms);
        // Keep the job window strictly inside the request window.
        let job_ts = (started_ms as f64 * 1000.0).max(req_ts + 1.0);
        let job_end = (merged_ms as f64 * 1000.0).min(req_ts + req_dur - 1.0);
        let job_dur = (job_end - job_ts).max(2.0);
        spans.push(ChromeSpan {
            name: format!("job {job}"),
            cat: "job".to_string(),
            ts_us: job_ts,
            dur_us: job_dur,
            pid,
            tid: 0,
            args: serde_json::json!({"job": job}),
        });

        let shards = traces
            .zip(key.as_ref())
            .map(|(store, k)| store.study(&StudyKey(k.clone())))
            .filter(|log| log.exists())
            .map(|log| log.shards())
            .transpose()?
            .unwrap_or_default();
        for ev in evs.iter().filter(|e| e.kind == OpsKind::ShardDone) {
            let (Some(c), Some(a), Some(b)) = (ev.campaign, ev.start, ev.end) else {
                continue;
            };
            let end_us = ev.unix_ms as f64 * 1000.0;
            let dur_us = (ev.wall_ns.unwrap_or(0) as f64 / 1000.0).max(1.0);
            let ts_us = end_us - dur_us;
            let tid = worker_tid(&ev.worker);
            spans.push(ChromeSpan {
                name: format!("shard {c}:{a}..{b}"),
                cat: "shard".to_string(),
                ts_us,
                dur_us,
                pid,
                tid,
                args: serde_json::json!({
                    "campaign": c, "start": a, "end": b,
                    "worker": ev.worker.to_value(),
                }),
            });
            if let Some(shard) = shards
                .iter()
                .find(|s| s.campaign as u64 == c && s.start as u64 == a && s.end as u64 == b)
            {
                experiment_spans(shard, ts_us, dur_us, pid, tid, &mut spans);
            }
        }
    }
    Ok(spans)
}

/// Build the span tree from a trace store alone (a local traced study,
/// no ops log). Timestamps are synthetic — a relative timeline from 0,
/// one process track per study — but the request → job → shard →
/// experiment nesting mirrors how the runner executed.
pub fn spans_from_traces(store: &TraceStore) -> Result<Vec<ChromeSpan>, OrchError> {
    let mut spans = Vec::new();
    for (i, key) in store.studies()?.iter().enumerate() {
        let log = store.study(key);
        if !log.exists() {
            continue;
        }
        let mut shards = log.shards()?;
        shards.sort_by_key(|s| (s.campaign, s.start));
        if shards.is_empty() {
            continue;
        }
        let pid = i as u64 + 1;
        let req_ts = 0.0;
        let job_ts = 1.0;
        let mut cursor = 2.0f64;
        let mut shard_spans = Vec::new();
        for shard in &shards {
            let dur_us: f64 = shard
                .traces
                .iter()
                .map(|t| (t.wall_ns as f64 / 1000.0).max(0.001))
                .sum::<f64>()
                .max(1.0);
            shard_spans.push(ChromeSpan {
                name: format!("shard {}:{}..{}", shard.campaign, shard.start, shard.end),
                cat: "shard".to_string(),
                ts_us: cursor,
                dur_us,
                pid,
                tid: 0,
                args: serde_json::json!({
                    "campaign": shard.campaign as u64,
                    "start": shard.start as u64,
                    "end": shard.end as u64,
                }),
            });
            experiment_spans(shard, cursor, dur_us, pid, 0, &mut spans);
            cursor += dur_us + 1.0;
        }
        let job_dur = cursor - job_ts;
        let first = &shards[0];
        spans.push(ChromeSpan {
            name: format!(
                "request {} ({} {} {})",
                short_key(&key.0),
                first.workload,
                first.isa,
                first.model
            ),
            cat: "request".to_string(),
            ts_us: req_ts,
            dur_us: job_dur + 2.0,
            pid,
            tid: 0,
            args: serde_json::json!({"key": key.0.clone()}),
        });
        spans.push(ChromeSpan {
            name: format!("job {}", short_key(&key.0)),
            cat: "job".to_string(),
            ts_us: job_ts,
            dur_us: job_dur,
            pid,
            tid: 0,
            args: serde_json::json!({"key": key.0.clone()}),
        });
        spans.extend(shard_spans);
    }
    Ok(spans)
}

/// Render spans as Chrome trace-event JSON: an object with a
/// `traceEvents` array of complete (`ph = "X"`) duration events.
pub fn render_chrome(spans: &[ChromeSpan]) -> Result<String, OrchError> {
    let events: Vec<serde_json::Value> = spans
        .iter()
        .map(|s| {
            serde_json::json!({
                "name": s.name.clone(),
                "cat": s.cat.clone(),
                "ph": "X",
                "ts": s.ts_us,
                "dur": s.dur_us,
                "pid": s.pid,
                "tid": s.tid,
                "args": s.args.clone(),
            })
        })
        .collect();
    serde_json::to_string_pretty(&serde_json::json!({
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }))
    .map_err(|e| OrchError(format!("encode chrome trace: {e}")))
}

/// Per-layer span counts of a validated export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LayerCounts {
    pub request: u64,
    pub job: u64,
    pub shard: u64,
    pub experiment: u64,
}

impl LayerCounts {
    /// Does every layer have at least one complete span?
    pub fn complete(&self) -> bool {
        self.request > 0 && self.job > 0 && self.shard > 0 && self.experiment > 0
    }
}

/// Re-parse an export and prove the tree: every `job` span must nest
/// (by time containment, same pid) inside a `request` span, every
/// `shard` inside a `job`, every `experiment` inside a `shard`.
/// Returns the per-layer counts on success.
pub fn validate_chrome(text: &str) -> Result<LayerCounts, String> {
    let doc: serde::Value =
        serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or_else(|| "missing traceEvents array".to_string())?;
    struct Ev {
        cat: String,
        ts: f64,
        end: f64,
        pid: u64,
    }
    let mut parsed = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let field = |k: &str| {
            ev.get(k)
                .ok_or_else(|| format!("traceEvents[{i}]: missing '{k}'"))
        };
        if field("ph")?.as_str() != Some("X") {
            return Err(format!("traceEvents[{i}]: expected complete event ph=X"));
        }
        let ts = field("ts")?
            .as_f64()
            .ok_or_else(|| format!("traceEvents[{i}]: ts not a number"))?;
        let dur = field("dur")?
            .as_f64()
            .ok_or_else(|| format!("traceEvents[{i}]: dur not a number"))?;
        parsed.push(Ev {
            cat: field("cat")?
                .as_str()
                .ok_or_else(|| format!("traceEvents[{i}]: cat not a string"))?
                .to_string(),
            ts,
            end: ts + dur,
            pid: field("pid")?
                .as_u64()
                .ok_or_else(|| format!("traceEvents[{i}]: pid not a number"))?,
        });
    }
    let mut counts = LayerCounts::default();
    for ev in &parsed {
        match ev.cat.as_str() {
            "request" => counts.request += 1,
            "job" => counts.job += 1,
            "shard" => counts.shard += 1,
            "experiment" => counts.experiment += 1,
            other => return Err(format!("unknown span layer '{other}'")),
        }
    }
    const EPS: f64 = 1e-6;
    for (child, parent) in [
        ("job", "request"),
        ("shard", "job"),
        ("experiment", "shard"),
    ] {
        for c in parsed.iter().filter(|e| e.cat == child) {
            let nested = parsed.iter().any(|p| {
                p.cat == parent && p.pid == c.pid && p.ts <= c.ts + EPS && c.end <= p.end + EPS
            });
            if !nested {
                return Err(format!(
                    "{child} span at ts={} (pid {}) nests inside no {parent} span",
                    c.ts, c.pid
                ));
            }
        }
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{OpsEvent, OpsKind};
    use std::path::PathBuf;
    use vulfi::ExperimentTrace;

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("vulfi_traceexport_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn trace(index: usize, wall_ns: u64) -> ExperimentTrace {
        ExperimentTrace {
            index,
            outcome: Outcome::Benign,
            detected: false,
            input: 0,
            injection: None,
            golden_dyn_insts: 100,
            faulty_dyn_insts: 100,
            dyn_inst_delta: 0,
            propagation: None,
            trap: None,
            wall_ns,
        }
    }

    fn shard(campaign: usize, start: usize, end: usize) -> TraceShard {
        TraceShard {
            campaign,
            start,
            end,
            workload: "W".to_string(),
            category: "pure-data".to_string(),
            isa: "avx".to_string(),
            model: "single-bit-flip".to_string(),
            traces: (start..end).map(|i| trace(i, 2000)).collect(),
        }
    }

    #[test]
    fn synthetic_export_from_traces_alone_has_all_four_layers() {
        let dir = tmpdir("synthetic");
        let store = TraceStore::open(&dir).unwrap();
        let log = store.study(&StudyKey("k1".to_string()));
        log.append_shard(&shard(0, 0, 3)).unwrap();
        log.append_shard(&shard(0, 3, 6)).unwrap();
        log.append_shard(&shard(1, 0, 3)).unwrap();

        let spans = spans_from_traces(&store).unwrap();
        let json = render_chrome(&spans).unwrap();
        let counts = validate_chrome(&json).unwrap();
        assert_eq!(counts.request, 1);
        assert_eq!(counts.job, 1);
        assert_eq!(counts.shard, 3);
        assert_eq!(counts.experiment, 9);
        assert!(counts.complete());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ops_export_nests_real_timestamps_and_attaches_experiments() {
        let dir = tmpdir("ops");
        let store = TraceStore::open(&dir).unwrap();
        store
            .study(&StudyKey("deadbeef".to_string()))
            .append_shard(&shard(0, 0, 5))
            .unwrap();

        let mk = |kind, ms: u64| {
            let mut e = OpsEvent::new(kind).job(3).key("deadbeef");
            e.unix_ms = ms;
            e
        };
        let mut done = mk(OpsKind::ShardDone, 1_500).worker("w0").shard(0, 0, 5);
        done.wall_ns = Some(400_000_000); // 400 ms shard
        let events = vec![
            mk(OpsKind::Submitted, 1_000),
            mk(OpsKind::Started, 1_050),
            mk(OpsKind::LeaseGranted, 1_060).worker("w0").shard(0, 0, 5),
            done,
            mk(OpsKind::Merged, 1_600),
            mk(OpsKind::Completed, 1_700),
        ];
        let spans = spans_from_ops(&events, Some(&store)).unwrap();
        let json = render_chrome(&spans).unwrap();
        let counts = validate_chrome(&json).unwrap();
        assert_eq!((counts.request, counts.job), (1, 1));
        assert_eq!(counts.shard, 1);
        assert_eq!(counts.experiment, 5);

        // Real clock: the request span starts at submit time in µs.
        let req = spans.iter().find(|s| s.cat == "request").unwrap();
        assert_eq!(req.ts_us, 1_000_000.0);
        // The shard lands on worker w0's thread track.
        let sh = spans.iter().find(|s| s.cat == "shard").unwrap();
        assert_eq!(sh.tid, 1);
        assert_eq!(sh.dur_us, 400_000.0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ops_export_without_traces_still_yields_three_layers() {
        let mk = |kind, ms: u64| {
            let mut e = OpsEvent::new(kind).job(1).key("cafe");
            e.unix_ms = ms;
            e
        };
        let mut done = mk(OpsKind::ShardDone, 2_000).worker("w1").shard(0, 0, 4);
        done.wall_ns = Some(100_000_000);
        let events = vec![
            mk(OpsKind::Submitted, 1_000),
            mk(OpsKind::Started, 1_100),
            done,
            mk(OpsKind::Completed, 2_100),
        ];
        let spans = spans_from_ops(&events, None).unwrap();
        let json = render_chrome(&spans).unwrap();
        let counts = validate_chrome(&json).unwrap();
        assert_eq!((counts.request, counts.job, counts.shard), (1, 1, 1));
        assert_eq!(counts.experiment, 0);
        assert!(!counts.complete(), "no trace store, no experiment layer");
    }

    #[test]
    fn oversubscribed_experiments_are_compressed_into_their_shard() {
        // Experiments totalling 10 ms inside a 1 ms shard window must
        // scale down, not spill out.
        let mut s = shard(0, 0, 5);
        for t in &mut s.traces {
            t.wall_ns = 2_000_000;
        }
        let mut spans = vec![ChromeSpan {
            name: "shard 0:0..5".to_string(),
            cat: "shard".to_string(),
            ts_us: 100.0,
            dur_us: 1000.0,
            pid: 1,
            tid: 0,
            args: serde_json::json!({}),
        }];
        experiment_spans(&s, 100.0, 1000.0, 1, 0, &mut spans);
        // Wrap in request/job so validation passes.
        for (cat, ts, dur) in [("request", 0.0, 2000.0), ("job", 50.0, 1900.0)] {
            spans.push(ChromeSpan {
                name: cat.to_string(),
                cat: cat.to_string(),
                ts_us: ts,
                dur_us: dur,
                pid: 1,
                tid: 0,
                args: serde_json::json!({}),
            });
        }
        let counts = validate_chrome(&render_chrome(&spans).unwrap()).unwrap();
        assert_eq!(counts.experiment, 5);
    }

    #[test]
    fn validator_rejects_broken_nesting_and_garbage() {
        assert!(validate_chrome("not json").is_err());
        assert!(validate_chrome("{}").is_err());
        // A shard with no containing job span fails containment.
        let orphan = render_chrome(&[ChromeSpan {
            name: "shard".to_string(),
            cat: "shard".to_string(),
            ts_us: 0.0,
            dur_us: 10.0,
            pid: 1,
            tid: 0,
            args: serde_json::json!({}),
        }])
        .unwrap();
        let err = validate_chrome(&orphan).unwrap_err();
        assert!(err.contains("nests inside no job"), "{err}");
    }
}
