//! # vulfi-orch — persistent, resumable campaign orchestration
//!
//! `vulfi::run_study` answers "what is this workload's SDC rate?" in one
//! blocking call. This crate wraps the same experiment machinery in the
//! operational layer a long evaluation needs:
//!
//! - **Content-addressed studies** ([`key`]): a study's identity is the
//!   hash of its instrumented IR, category, ISA, seed, and full
//!   configuration, so re-running a finished study is a cache hit and
//!   changing any input lands in a fresh directory.
//! - **Crash-tolerant persistence** ([`store`]): shards append to a
//!   checksummed JSONL log; the manifest is replaced atomically. Killing
//!   a run loses at most the in-flight shards, a flipped byte is detected
//!   rather than merged, and [`Store::fsck`] quarantines a damaged log
//!   and salvages every intact record.
//! - **Deterministic sharding** ([`plan`]): every experiment's RNG
//!   derives from its `(campaign, index)` coordinates, so any partition
//!   into shards, on any thread count, merges to the bit-identical
//!   result of an uninterrupted sequential run.
//! - **Live observability** ([`observe`]): experiments/sec, ETA, and
//!   running SDC/Benign/Crash counts after every shard.
//! - **Offline analytics** ([`analytics`]): read-only reports over the
//!   stores — study diffing with Wilson intervals and two-proportion
//!   z-tests, site × lane × bit vulnerability heatmaps, lane-occupancy
//!   profiles, and a self-contained HTML report renderer.
//!
//! ```no_run
//! # use vulfi_orch::{run_study_persistent, RunOptions, Store};
//! # fn demo(prog: &vulfi::Prepared, w: &dyn vulfi::Workload) -> Result<(), vulfi_orch::OrchError> {
//! let store = Store::open("results/store")?;
//! let cfg = vulfi::StudyConfig::default();
//! let out = run_study_persistent(prog, w, "Stencil", "avx", &cfg, &store, RunOptions::default())?;
//! if let Some(result) = out.result {
//!     println!("SDC {:.1}% ± {:.1}", result.summary.mean, result.summary.margin_95);
//! }
//! # Ok(()) }
//! ```

pub mod alerts;
pub mod analytics;
pub mod crc;
pub mod events;
pub mod key;
pub mod lease;
pub mod metrics;
pub mod observe;
pub mod plan;
pub mod queue;
pub mod run;
pub mod scenario;
pub mod store;
pub mod telemetry;
pub mod traceexport;
pub mod tracestore;

pub use alerts::{
    evaluate_rule, parse_alert_rules, render_alerts_json, render_alerts_text, AlertEngine,
    AlertKind, AlertRule, AlertState, AlertTransition, ALERT_KINDS,
};

pub use analytics::{
    analysis_cells, diff_stores, heatmaps, heatmaps_filtered, html_from_stores, load_cells,
    render_diff_text, render_heatmap_text, render_html, AnalysisCell, AnalysisSiteRow, DiffCell,
    DiffReport, LaneBitCell, MetricRow, OccupancyBucket, OccupancyProfile, ReportInputs, SiteRow,
    StudyCell, WorkloadHeatmap,
};
pub use crc::crc32;
pub use events::{summarize_events, JobLifecycle, OpsEvent, OpsKind, OpsLog, OpsSummary};
pub use key::{study_key, StudyKey};
pub use lease::{Lease, LeaseBoard, LeaseStats};
pub use metrics::{
    parse_prometheus, render_json, render_prometheus, Metrics, MetricsSnapshot, PromSample,
};
pub use observe::{humanize, Progress, ProgressSnapshot};
pub use plan::{covered_experiments, merge, merged_dyn_insts, missing_jobs, plan_shards, ShardJob};
pub use queue::{JobQueue, JobRecord, JobState};
pub use run::{
    run_shard, run_study_persistent, set_jobs, verify_soundness, ProgressFn, RunOptions, RunOutcome,
};
pub use scenario::{
    cell_verdict, check_invariant, parse_scenario, render_verdicts, render_verdicts_json,
    CellVerdict, GauntletReport, Invariant, InvariantVerdict, Scenario,
};
pub use store::{FsckReport, Manifest, ShardRecord, Store, StudyFsck, StudyStore};
pub use telemetry::{
    histogram_quantile, now_unix_ms, sparkline_svg, Sampler, SamplerInputs, TelemetryLog,
    TelemetryRing, TelemetrySample, DEFAULT_RING_CAPACITY,
};
pub use traceexport::{
    render_chrome, spans_from_ops, spans_from_traces, validate_chrome, ChromeSpan, LayerCounts,
};
pub use tracestore::{
    summarize, CategorySummary, PropagationPercentiles, SiteSdcSummary, TraceLog, TraceShard,
    TraceStore, TraceSummary,
};

/// Orchestration-layer error (I/O, storage corruption, or a campaign
/// failure bubbled up from the experiment runner).
#[derive(Debug, Clone, PartialEq)]
pub struct OrchError(pub String);

impl std::fmt::Display for OrchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "orchestration error: {}", self.0)
    }
}

impl std::error::Error for OrchError {}
