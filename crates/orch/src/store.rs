//! Append-only, crash-tolerant persistence for study shards.
//!
//! Layout under the store root:
//!
//! ```text
//! results/store/<study-key>/
//!   manifest.json    # study identity + config (atomic tmp+rename writes)
//!   shards.jsonl     # one JSON line per completed shard, append-only
//! ```
//!
//! A killed run leaves at worst one truncated trailing line in
//! `shards.jsonl`; the reader skips unparsable lines, so resume sees
//! exactly the shards whose writes completed. The manifest is only ever
//! replaced via write-to-temp + `rename`, which is atomic on POSIX.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use vir::analysis::SiteCategory;
use vulfi::{Experiment, StudyConfig};

use crate::key::StudyKey;
use crate::OrchError;

/// Study identity + configuration, persisted next to the shard log.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Manifest {
    pub key: StudyKey,
    pub workload: String,
    pub isa: String,
    pub category: SiteCategory,
    pub entry: String,
    pub cfg: StudyConfig,
    /// Shards in the current plan (informational; the plan is recomputed
    /// deterministically from `cfg` and the shard size).
    pub total_shards: u64,
    /// All campaigns covered and merged at least once.
    pub complete: bool,
}

/// One completed shard: a contiguous run of experiments of one campaign.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ShardRecord {
    pub campaign: usize,
    /// Experiment index range `[start, end)` within the campaign.
    pub start: usize,
    pub end: usize,
    pub experiments: Vec<Experiment>,
    /// Wall time this shard took when first executed (informational; not
    /// part of the deterministic result).
    pub wall_ns: u64,
}

/// A directory of studies, each under its content-addressed key.
pub struct Store {
    root: PathBuf,
}

impl Store {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Store, OrchError> {
        let root = root.into();
        fs::create_dir_all(&root)
            .map_err(|e| OrchError(format!("create store {}: {e}", root.display())))?;
        Ok(Store { root })
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    pub fn study(&self, key: &StudyKey) -> StudyStore {
        StudyStore {
            dir: self.root.join(&key.0),
        }
    }

    /// Keys of every study directory containing a manifest.
    pub fn studies(&self) -> Result<Vec<StudyKey>, OrchError> {
        let mut keys = Vec::new();
        let entries = fs::read_dir(&self.root)
            .map_err(|e| OrchError(format!("read store {}: {e}", self.root.display())))?;
        for entry in entries {
            let entry = entry.map_err(|e| OrchError(format!("read store entry: {e}")))?;
            if entry.path().join("manifest.json").is_file() {
                keys.push(StudyKey(entry.file_name().to_string_lossy().into_owned()));
            }
        }
        keys.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(keys)
    }
}

/// One study's directory.
pub struct StudyStore {
    dir: PathBuf,
}

impl StudyStore {
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join("manifest.json")
    }

    fn shards_path(&self) -> PathBuf {
        self.dir.join("shards.jsonl")
    }

    pub fn exists(&self) -> bool {
        self.manifest_path().is_file()
    }

    /// Atomically replace the manifest (write temp file, then rename).
    pub fn write_manifest(&self, m: &Manifest) -> Result<(), OrchError> {
        fs::create_dir_all(&self.dir)
            .map_err(|e| OrchError(format!("create {}: {e}", self.dir.display())))?;
        let text = serde_json::to_string_pretty(m)
            .map_err(|e| OrchError(format!("encode manifest: {e}")))?;
        let tmp = self.dir.join("manifest.json.tmp");
        fs::write(&tmp, text.as_bytes())
            .map_err(|e| OrchError(format!("write {}: {e}", tmp.display())))?;
        fs::rename(&tmp, self.manifest_path())
            .map_err(|e| OrchError(format!("rename manifest: {e}")))?;
        Ok(())
    }

    pub fn read_manifest(&self) -> Result<Manifest, OrchError> {
        let path = self.manifest_path();
        let text = fs::read_to_string(&path)
            .map_err(|e| OrchError(format!("read {}: {e}", path.display())))?;
        serde_json::from_str(&text).map_err(|e| OrchError(format!("parse manifest: {e}")))
    }

    /// Append one shard record as a single JSONL line.
    ///
    /// The record is written with a *leading* newline so that a
    /// truncated line left by a killed writer (which has no trailing
    /// newline) is terminated rather than concatenated with this
    /// record; the reader skips the resulting blank lines.
    pub fn append_shard(&self, rec: &ShardRecord) -> Result<(), OrchError> {
        let line =
            serde_json::to_string(rec).map_err(|e| OrchError(format!("encode shard: {e}")))?;
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.shards_path())
            .map_err(|e| OrchError(format!("open shard log: {e}")))?;
        writeln!(f, "\n{line}").map_err(|e| OrchError(format!("append shard: {e}")))?;
        f.flush()
            .map_err(|e| OrchError(format!("flush shard log: {e}")))?;
        Ok(())
    }

    /// All fully-written shard records. A truncated trailing line (from a
    /// killed run) is skipped, not an error.
    pub fn shards(&self) -> Result<Vec<ShardRecord>, OrchError> {
        let path = self.shards_path();
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(OrchError(format!("read {}: {e}", path.display()))),
        };
        let mut out = Vec::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            if let Ok(rec) = serde_json::from_str::<ShardRecord>(line) {
                out.push(rec);
            }
        }
        Ok(out)
    }
}
