//! Append-only, crash-tolerant, self-checking persistence for study
//! shards.
//!
//! Layout under the store root:
//!
//! ```text
//! results/store/<study-key>/
//!   manifest.json       # study identity + config (atomic tmp+rename)
//!   shards.jsonl        # one checksummed JSON line per completed shard
//!   shards.quarantine/  # corrupt logs moved aside by fsck --repair
//! ```
//!
//! Every shard line carries a CRC-32 suffix (`{json}\tcrc32=xxxxxxxx`),
//! so corruption is *detected*, never silently merged. The failure
//! contract of [`StudyStore::shards`]:
//!
//! - A torn **trailing** line (killed writer) is skipped: resume sees
//!   exactly the shards whose writes completed.
//! - Corruption anywhere **earlier** is an error pointing at
//!   `vulfi store fsck`, which quarantines the damaged log, salvages
//!   every checksum-valid record, and lets the scheduler re-run the
//!   lost jobs.
//!
//! The manifest is only ever replaced via write-to-temp + `rename`,
//! which is atomic on POSIX. Appends retry transient I/O errors with
//! capped exponential backoff, rolling the file back to its pre-append
//! length between attempts so a partial write is never left mid-file.
//!
//! The line format, torn-tail handling, quarantine, and retry machinery
//! live in the record-generic [`CheckedLog`], which the trace store
//! ([`crate::tracestore`]) reuses verbatim — one implementation, one
//! failure contract, two record types.

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::time::Duration;

use vir::analysis::SiteCategory;
use vulfi::{Experiment, StudyConfig};

use crate::crc::crc32;
use crate::key::StudyKey;
use crate::OrchError;

/// Study identity + configuration, persisted next to the shard log.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Manifest {
    pub key: StudyKey,
    pub workload: String,
    pub isa: String,
    pub category: SiteCategory,
    pub entry: String,
    pub cfg: StudyConfig,
    /// Shards in the current plan (informational; the plan is recomputed
    /// deterministically from `cfg` and the shard size).
    pub total_shards: u64,
    /// All campaigns covered and merged at least once.
    pub complete: bool,
}

/// One completed shard: a contiguous run of experiments of one campaign.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ShardRecord {
    pub campaign: usize,
    /// Experiment index range `[start, end)` within the campaign.
    pub start: usize,
    pub end: usize,
    pub experiments: Vec<Experiment>,
    /// Wall time this shard took when first executed (informational; not
    /// part of the deterministic result).
    pub wall_ns: u64,
}

/// Result of classifying every non-blank line of a checksummed log.
#[derive(Debug)]
pub(crate) struct LogScan<T> {
    /// Non-blank lines inspected.
    pub lines: usize,
    /// Checksum-valid, parseable records, in file order.
    pub records: Vec<T>,
    /// The last non-blank line is torn (killed writer).
    pub torn_tail: bool,
    /// Corrupt non-tail lines as `(1-based line number, reason)`.
    pub corrupt: Vec<(usize, String)>,
}

impl<T> Default for LogScan<T> {
    fn default() -> LogScan<T> {
        LogScan {
            lines: 0,
            records: Vec::new(),
            torn_tail: false,
            corrupt: Vec::new(),
        }
    }
}

/// Health report for one study's checksummed log (see
/// [`StudyStore::fsck`] / `TraceLog::fsck`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StudyFsck {
    pub key: StudyKey,
    /// Non-blank lines inspected.
    pub lines: usize,
    /// Checksum-valid, parseable records.
    pub valid: usize,
    /// A torn trailing line (killed writer) — recoverable by re-running.
    pub torn_tail: bool,
    /// Corrupt non-tail lines as `(1-based line number, reason)`.
    pub corrupt: Vec<(usize, String)>,
    /// Where the damaged log was moved, when repair ran.
    pub quarantined: Option<PathBuf>,
}

impl StudyFsck {
    /// Anything wrong at all (including a recoverable torn tail)?
    pub fn dirty(&self) -> bool {
        self.torn_tail || !self.corrupt.is_empty()
    }

    /// Corruption that [`StudyStore::shards`] refuses to read past.
    pub fn needs_repair(&self) -> bool {
        !self.corrupt.is_empty()
    }
}

/// Store-wide fsck report: one entry per study.
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    pub studies: Vec<StudyFsck>,
}

impl FsckReport {
    pub fn needs_repair(&self) -> bool {
        self.studies.iter().any(StudyFsck::needs_repair)
    }

    pub fn dirty(&self) -> bool {
        self.studies.iter().any(StudyFsck::dirty)
    }
}

/// A directory of studies, each under its content-addressed key.
pub struct Store {
    root: PathBuf,
}

impl Store {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Store, OrchError> {
        let root = root.into();
        fs::create_dir_all(&root)
            .map_err(|e| OrchError(format!("create store {}: {e}", root.display())))?;
        Ok(Store { root })
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    pub fn study(&self, key: &StudyKey) -> StudyStore {
        StudyStore::at(self.root.join(&key.0))
    }

    /// Keys of every study directory containing a manifest.
    pub fn studies(&self) -> Result<Vec<StudyKey>, OrchError> {
        let mut keys = Vec::new();
        let entries = fs::read_dir(&self.root)
            .map_err(|e| OrchError(format!("read store {}: {e}", self.root.display())))?;
        for entry in entries {
            let entry = entry.map_err(|e| OrchError(format!("read store entry: {e}")))?;
            if entry.path().join("manifest.json").is_file() {
                keys.push(StudyKey(entry.file_name().to_string_lossy().into_owned()));
            }
        }
        keys.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(keys)
    }

    /// Check (and with `repair`, heal) every study's shard log.
    pub fn fsck(&self, repair: bool) -> Result<FsckReport, OrchError> {
        let mut report = FsckReport::default();
        for key in self.studies()? {
            report.studies.push(self.study(&key).fsck(repair)?);
        }
        Ok(report)
    }
}

/// Transient I/O error kinds worth retrying.
fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Retry `op` on transient I/O errors with capped exponential backoff
/// (1 ms doubling to 50 ms, at most 5 retries). `op` must be safe to
/// re-run wholesale — callers roll back partial effects at the top of
/// the closure. Every retry increments the store-retry counter of the
/// global metrics registry.
fn with_io_retry<T>(mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    let mut delay = Duration::from_millis(1);
    let mut retries = 0;
    loop {
        match op() {
            Err(e) if is_transient(&e) && retries < 5 => {
                retries += 1;
                crate::metrics::global().inc_store_retries();
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(50));
            }
            other => return other,
        }
    }
}

/// Render one checksummed log line (no newlines).
pub(crate) fn encode_record_line<T: serde::Serialize>(rec: &T) -> Result<String, OrchError> {
    let json = serde_json::to_string(rec).map_err(|e| OrchError(format!("encode record: {e}")))?;
    let crc = crc32(json.as_bytes());
    Ok(format!("{json}\tcrc32={crc:08x}"))
}

/// Parse one checksummed log line: verify the CRC suffix (when present —
/// lines from older stores have none and parse unchecked), then decode.
pub(crate) fn parse_record_line<T: serde::Deserialize>(line: &str) -> Result<T, String> {
    let json = match line.rsplit_once('\t') {
        Some((json, tail)) if tail.starts_with("crc32=") => {
            let want = u32::from_str_radix(&tail["crc32=".len()..], 16)
                .map_err(|_| format!("malformed checksum suffix {tail:?}"))?;
            let got = crc32(json.as_bytes());
            if got != want {
                return Err(format!(
                    "checksum mismatch (recorded {want:08x}, computed {got:08x})"
                ));
            }
            json
        }
        _ => line,
    };
    serde_json::from_str(json).map_err(|e| format!("unparseable record: {e}"))
}

/// A checksummed, append-only JSONL log with torn-tail recovery and
/// quarantine — the shared persistence engine behind both the result
/// shard log and the trace shard log.
pub(crate) struct CheckedLog {
    /// The log file (e.g. `<study>/shards.jsonl`).
    path: PathBuf,
    /// Quarantine directory for damaged logs.
    qdir: PathBuf,
    /// Remediation hint appended to corruption errors (the command that
    /// repairs this log).
    repair_hint: &'static str,
}

impl CheckedLog {
    pub(crate) fn new(path: PathBuf, qdir: PathBuf, repair_hint: &'static str) -> CheckedLog {
        CheckedLog {
            path,
            qdir,
            repair_hint,
        }
    }

    pub(crate) fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record as a single checksummed JSONL line.
    ///
    /// The record is written with a *leading* newline so that a
    /// truncated line left by a killed writer (which has no trailing
    /// newline) is terminated rather than concatenated with this
    /// record; the reader skips the resulting blank lines. Transient
    /// I/O errors are retried with backoff; between attempts the file
    /// is rolled back to its pre-append length so a partial write can
    /// never end up mid-file.
    pub(crate) fn append<T: serde::Serialize>(&self, rec: &T) -> Result<(), OrchError> {
        if let Some(dir) = self.path.parent() {
            fs::create_dir_all(dir)
                .map_err(|e| OrchError(format!("create {}: {e}", dir.display())))?;
        }
        let line = encode_record_line(rec)?;
        let payload = format!("\n{line}\n");
        let mut f = with_io_retry(|| {
            fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&self.path)
        })
        .map_err(|e| OrchError(format!("open {}: {e}", self.path.display())))?;
        let before = f
            .metadata()
            .map_err(|e| OrchError(format!("stat {}: {e}", self.path.display())))?
            .len();
        with_io_retry(|| {
            f.set_len(before)?;
            f.write_all(payload.as_bytes())?;
            f.flush()
        })
        .map_err(|e| OrchError(format!("append to {}: {e}", self.path.display())))?;
        Ok(())
    }

    /// Classify every non-blank line of the log.
    pub(crate) fn scan<T: serde::Deserialize>(&self) -> Result<LogScan<T>, OrchError> {
        let bytes = match fs::read(&self.path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(LogScan::default()),
            Err(e) => return Err(OrchError(format!("read {}: {e}", self.path.display()))),
        };
        // Corruption can hit any byte, including one that breaks UTF-8;
        // decode lossily so the damage surfaces as a checksum-failing
        // line (fsck's department), not an unreadable store.
        let text = String::from_utf8_lossy(&bytes);
        let lines: Vec<(usize, &str)> = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty())
            .collect();
        let mut scan = LogScan {
            lines: lines.len(),
            ..LogScan::default()
        };
        for (pos, (lineno, line)) in lines.iter().enumerate() {
            match parse_record_line(line) {
                Ok(rec) => scan.records.push(rec),
                // Only the final line can be a torn write from a kill.
                Err(_) if pos == lines.len() - 1 => scan.torn_tail = true,
                Err(reason) => scan.corrupt.push((lineno + 1, reason)),
            }
        }
        Ok(scan)
    }

    /// All fully-written records.
    ///
    /// A torn **trailing** line (from a killed run) is skipped, not an
    /// error. Corruption anywhere earlier — a failed checksum or an
    /// unparseable record that further appends have since buried — is an
    /// error: silently dropping it would skew whatever is derived from
    /// this log without a trace.
    pub(crate) fn records<T: serde::Deserialize>(&self) -> Result<Vec<T>, OrchError> {
        let scan = self.scan()?;
        if let Some((lineno, reason)) = scan.corrupt.first() {
            return Err(OrchError(format!(
                "corrupt log {} at line {lineno}: {reason}; run `{}` to quarantine and recover",
                self.path.display(),
                self.repair_hint,
            )));
        }
        Ok(scan.records)
    }

    /// Heal the one failure a kill is *expected* to leave: a torn
    /// trailing line. The log is atomically rewritten (temp + rename)
    /// from its valid records so that subsequent appends cannot bury the
    /// torn fragment mid-file, where it would read as corruption.
    /// Returns whether a trim happened. Mid-file corruption is *not*
    /// healed here — that is fsck's job.
    pub(crate) fn trim_torn_tail<T: serde::Serialize + serde::Deserialize>(
        &self,
    ) -> Result<bool, OrchError> {
        let scan = self.scan::<T>()?;
        if !scan.corrupt.is_empty() {
            return Err(OrchError(format!(
                "corrupt log {}: run `{}`",
                self.path.display(),
                self.repair_hint,
            )));
        }
        if !scan.torn_tail {
            return Ok(false);
        }
        self.rewrite(&scan.records)?;
        Ok(true)
    }

    /// Atomically replace the log with exactly `records`.
    pub(crate) fn rewrite<T: serde::Serialize>(&self, records: &[T]) -> Result<(), OrchError> {
        let mut text = String::new();
        for rec in records {
            text.push_str(&encode_record_line(rec)?);
            text.push('\n');
        }
        let tmp = self.path.with_extension("jsonl.tmp");
        fs::write(&tmp, text.as_bytes())
            .map_err(|e| OrchError(format!("write {}: {e}", tmp.display())))?;
        fs::rename(&tmp, &self.path)
            .map_err(|e| OrchError(format!("replace {}: {e}", self.path.display())))?;
        Ok(())
    }

    /// Check this log; with `repair`, heal it (quarantine the damaged
    /// file, salvage every checksum-valid record into a fresh log).
    /// Returns the report *without* the owner-specific follow-up (e.g.
    /// clearing a manifest's `complete` flag) — callers layer that on.
    pub(crate) fn fsck<T: serde::Serialize + serde::Deserialize>(
        &self,
        key: StudyKey,
        repair: bool,
    ) -> Result<StudyFsck, OrchError> {
        let scan = self.scan::<T>()?;
        let mut report = StudyFsck {
            key,
            lines: scan.lines,
            valid: scan.records.len(),
            torn_tail: scan.torn_tail,
            corrupt: scan.corrupt,
            quarantined: None,
        };
        if repair && report.dirty() {
            report.quarantined = Some(self.quarantine()?);
            // Rebuild the log from the salvaged records (all re-encoded
            // with checksums, which also upgrades legacy lines).
            self.rewrite(&scan.records)?;
        }
        Ok(report)
    }

    /// Move the current log into the quarantine directory under a fresh
    /// numbered name; returns the destination.
    fn quarantine(&self) -> Result<PathBuf, OrchError> {
        fs::create_dir_all(&self.qdir)
            .map_err(|e| OrchError(format!("create {}: {e}", self.qdir.display())))?;
        let stem = self
            .path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "log".to_string());
        let mut n = 0;
        let dest = loop {
            let candidate = self.qdir.join(format!("{stem}.{n}.jsonl"));
            if !candidate.exists() {
                break candidate;
            }
            n += 1;
        };
        fs::rename(&self.path, &dest)
            .map_err(|e| OrchError(format!("quarantine {}: {e}", self.path.display())))?;
        Ok(dest)
    }
}

/// One study's directory.
pub struct StudyStore {
    dir: PathBuf,
}

impl StudyStore {
    fn at(dir: PathBuf) -> StudyStore {
        StudyStore { dir }
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join("manifest.json")
    }

    fn log(&self) -> CheckedLog {
        CheckedLog::new(
            self.dir.join("shards.jsonl"),
            self.dir.join("shards.quarantine"),
            "vulfi store fsck --repair",
        )
    }

    pub fn exists(&self) -> bool {
        self.manifest_path().is_file()
    }

    /// Atomically replace the manifest (write temp file, then rename).
    pub fn write_manifest(&self, m: &Manifest) -> Result<(), OrchError> {
        fs::create_dir_all(&self.dir)
            .map_err(|e| OrchError(format!("create {}: {e}", self.dir.display())))?;
        let text = serde_json::to_string_pretty(m)
            .map_err(|e| OrchError(format!("encode manifest: {e}")))?;
        let tmp = self.dir.join("manifest.json.tmp");
        fs::write(&tmp, text.as_bytes())
            .map_err(|e| OrchError(format!("write {}: {e}", tmp.display())))?;
        fs::rename(&tmp, self.manifest_path())
            .map_err(|e| OrchError(format!("rename manifest: {e}")))?;
        Ok(())
    }

    pub fn read_manifest(&self) -> Result<Manifest, OrchError> {
        let path = self.manifest_path();
        let text = fs::read_to_string(&path)
            .map_err(|e| OrchError(format!("read {}: {e}", path.display())))?;
        serde_json::from_str(&text).map_err(|e| OrchError(format!("parse manifest: {e}")))
    }

    /// Append one shard record as a single checksummed JSONL line (see
    /// [`CheckedLog::append`] for the crash-safety contract).
    pub fn append_shard(&self, rec: &ShardRecord) -> Result<(), OrchError> {
        self.log().append(rec)
    }

    /// All fully-written shard records.
    ///
    /// A torn **trailing** line (from a killed run) is skipped, not an
    /// error. Corruption anywhere earlier is an error: silently dropping
    /// it would change merged results without a trace. Run
    /// `vulfi store fsck` to quarantine and recover.
    pub fn shards(&self) -> Result<Vec<ShardRecord>, OrchError> {
        self.log().records()
    }

    /// Heal a torn trailing line left by a killed writer; called by the
    /// runner on every resume. Returns whether a trim happened.
    pub fn trim_torn_tail(&self) -> Result<bool, OrchError> {
        self.log().trim_torn_tail::<ShardRecord>()
    }

    /// Check this study's shard log; with `repair`, heal it.
    ///
    /// - Clean log (possibly empty/missing): nothing to do.
    /// - Torn trailing line only: recoverable — a resumed run simply
    ///   re-executes the unfinished shard. With `repair` the tail is
    ///   trimmed (via the same quarantine path, so no byte is destroyed).
    /// - Corrupt earlier lines: the log is unsafe to merge. With
    ///   `repair`, the damaged file moves to `shards.quarantine/`, every
    ///   checksum-valid record is salvaged into a fresh `shards.jsonl`,
    ///   and the manifest's `complete` flag is cleared so the scheduler
    ///   re-runs the lost jobs.
    pub fn fsck(&self, repair: bool) -> Result<StudyFsck, OrchError> {
        let key = StudyKey(
            self.dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default(),
        );
        let report = self.log().fsck::<ShardRecord>(key, repair)?;
        if repair && report.dirty() && self.exists() {
            // Records may have been lost: force the scheduler to re-plan.
            let mut manifest = self.read_manifest()?;
            if manifest.complete {
                manifest.complete = false;
                self.write_manifest(&manifest)?;
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_retry_survives_transient_errors() {
        let mut attempts = 0;
        let result: io::Result<u32> = with_io_retry(|| {
            attempts += 1;
            if attempts < 3 {
                Err(io::Error::new(io::ErrorKind::Interrupted, "flaky"))
            } else {
                Ok(7)
            }
        });
        assert_eq!(result.unwrap(), 7);
        assert_eq!(attempts, 3);
    }

    #[test]
    fn io_retry_gives_up_on_persistent_and_hard_errors() {
        let mut attempts = 0;
        let result: io::Result<()> = with_io_retry(|| {
            attempts += 1;
            Err(io::Error::new(io::ErrorKind::WouldBlock, "always busy"))
        });
        assert!(result.is_err());
        assert_eq!(attempts, 6, "initial try + 5 retries");

        let mut attempts = 0;
        let result: io::Result<()> = with_io_retry(|| {
            attempts += 1;
            Err(io::Error::new(io::ErrorKind::PermissionDenied, "nope"))
        });
        assert!(result.is_err());
        assert_eq!(attempts, 1, "hard errors must not be retried");
    }

    #[test]
    fn shard_lines_roundtrip_and_reject_flips() {
        let rec = ShardRecord {
            campaign: 2,
            start: 5,
            end: 9,
            experiments: Vec::new(),
            wall_ns: 123,
        };
        let line = encode_record_line(&rec).unwrap();
        assert!(line.contains("\tcrc32="));
        let back: ShardRecord = parse_record_line(&line).unwrap();
        assert_eq!(back.campaign, 2);
        assert_eq!((back.start, back.end), (5, 9));

        // Flip one byte of the JSON body: the checksum must catch it.
        let mut bytes = line.clone().into_bytes();
        bytes[10] ^= 0x01;
        let tampered = String::from_utf8(bytes).unwrap();
        let err = parse_record_line::<ShardRecord>(&tampered).unwrap_err();
        assert!(err.contains("checksum"), "{err}");
    }

    #[test]
    fn legacy_lines_without_checksum_still_parse() {
        let rec = ShardRecord {
            campaign: 0,
            start: 0,
            end: 1,
            experiments: Vec::new(),
            wall_ns: 0,
        };
        let json = serde_json::to_string(&rec).unwrap();
        let back: ShardRecord = parse_record_line(&json).unwrap();
        assert_eq!(back.end, 1);
    }
}
