//! Persistent job queue for the injection service, layered on the store
//! directory.
//!
//! The queue is an append-only event log (`<store>/queue/events.jsonl`)
//! sharing the CRC'd [`CheckedLog`](crate::store) machinery with the
//! shard and trace stores: every state change appends one checksummed
//! line, the current job table is a pure fold over the log, and a torn
//! trailing line (killed daemon) is healed on open exactly like a torn
//! shard. Nothing is ever rewritten in place, so a queue that survived a
//! `kill -9` replays to exactly the state its last completed append
//! described.
//!
//! Recovery contract: a job observed in `Running` state at daemon
//! startup was owned by a dead incarnation; [`JobQueue::recover`]
//! re-queues it. This is always safe — shards the dead daemon persisted
//! are reused via the content-addressed store, and the deterministic
//! scheduler re-runs only what is missing.

use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

use vulfi::StudySpec;

use crate::store::CheckedLog;
use crate::OrchError;

/// Lifecycle states of a submitted study job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum JobState {
    /// Waiting for workers.
    Queued,
    /// Workers are executing (or a dead daemon never finished — see
    /// [`JobQueue::recover`]).
    Running,
    Completed,
    Failed,
}

impl JobState {
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Failed => "failed",
        }
    }
}

/// One checksummed line of the queue log.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct QueueEvent {
    job: u64,
    kind: EventKind,
    /// Full spec (on `Submitted` events only).
    spec: Option<StudySpec>,
    /// Content-addressed study key (on `Started` events, once the
    /// worker has compiled the workload and derived it).
    key: Option<String>,
    /// Failure reason (on `Failed` events).
    error: Option<String>,
    /// Submitting tenant (on `Submitted` events; informational).
    tenant: Option<String>,
    /// Wall-clock milliseconds since the Unix epoch (informational).
    unix_ms: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
enum EventKind {
    Submitted,
    Started,
    Completed,
    Failed,
    /// A dead daemon's `Running` job pushed back to `Queued`.
    Requeued,
}

/// Folded view of one job.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct JobRecord {
    pub id: u64,
    pub spec: StudySpec,
    pub state: JobState,
    /// Known once a worker has started (and on completed/failed jobs).
    pub key: Option<String>,
    pub error: Option<String>,
    pub tenant: Option<String>,
    pub submitted_unix_ms: u64,
    pub updated_unix_ms: u64,
}

fn now_unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// The persistent queue. Stateless over its log: every mutation is one
/// durable append, every read is a replay (the log stays small — a
/// handful of events per job). Callers serialize access (the daemon
/// holds it under a mutex).
pub struct JobQueue {
    log: CheckedLog,
}

impl JobQueue {
    /// Open (creating if needed) the queue under `store_root/queue`,
    /// healing a torn tail left by a killed daemon.
    pub fn open(store_root: impl AsRef<Path>) -> Result<JobQueue, OrchError> {
        let dir = store_root.as_ref().join("queue");
        std::fs::create_dir_all(&dir)
            .map_err(|e| OrchError(format!("create {}: {e}", dir.display())))?;
        let q = JobQueue {
            log: CheckedLog::new(
                dir.join("events.jsonl"),
                dir.join("events.quarantine"),
                "vulfi store fsck --repair",
            ),
        };
        q.log.trim_torn_tail::<QueueEvent>()?;
        Ok(q)
    }

    pub fn path(&self) -> PathBuf {
        self.log_path()
    }

    fn log_path(&self) -> PathBuf {
        // CheckedLog keeps its path private; reconstructing it here
        // would duplicate knowledge, so expose via the log itself.
        self.log.path().to_path_buf()
    }

    /// Durably enqueue `spec` under its content-addressed study key;
    /// returns the new job id.
    pub fn submit(
        &self,
        spec: &StudySpec,
        key: &str,
        tenant: Option<&str>,
    ) -> Result<u64, OrchError> {
        let id = self.next_id()?;
        self.append(QueueEvent {
            job: id,
            kind: EventKind::Submitted,
            spec: Some(spec.clone()),
            key: Some(key.to_string()),
            error: None,
            tenant: tenant.map(str::to_string),
            unix_ms: now_unix_ms(),
        })?;
        Ok(id)
    }

    /// A worker began executing `job` under the given study key.
    pub fn started(&self, job: u64, key: &str) -> Result<(), OrchError> {
        self.append_kind(job, EventKind::Started, Some(key.to_string()), None)
    }

    pub fn completed(&self, job: u64) -> Result<(), OrchError> {
        self.append_kind(job, EventKind::Completed, None, None)
    }

    pub fn failed(&self, job: u64, error: &str) -> Result<(), OrchError> {
        self.append_kind(job, EventKind::Failed, None, Some(error.to_string()))
    }

    /// Re-queue every `Running` job (dead-daemon recovery). Returns the
    /// ids pushed back to `Queued`.
    pub fn recover(&self) -> Result<Vec<u64>, OrchError> {
        let orphans: Vec<u64> = self
            .jobs()?
            .into_iter()
            .filter(|j| j.state == JobState::Running)
            .map(|j| j.id)
            .collect();
        for &id in &orphans {
            self.append_kind(id, EventKind::Requeued, None, None)?;
        }
        Ok(orphans)
    }

    /// The folded job table, in submission order.
    pub fn jobs(&self) -> Result<Vec<JobRecord>, OrchError> {
        let events: Vec<QueueEvent> = self.log.records()?;
        let mut jobs: Vec<JobRecord> = Vec::new();
        for ev in events {
            match ev.kind {
                EventKind::Submitted => {
                    let Some(spec) = ev.spec else { continue };
                    jobs.push(JobRecord {
                        id: ev.job,
                        spec,
                        state: JobState::Queued,
                        key: ev.key,
                        error: None,
                        tenant: ev.tenant,
                        submitted_unix_ms: ev.unix_ms,
                        updated_unix_ms: ev.unix_ms,
                    });
                }
                kind => {
                    let Some(job) = jobs.iter_mut().find(|j| j.id == ev.job) else {
                        continue;
                    };
                    job.updated_unix_ms = ev.unix_ms;
                    match kind {
                        EventKind::Started => {
                            job.state = JobState::Running;
                            if ev.key.is_some() {
                                job.key = ev.key;
                            }
                        }
                        EventKind::Completed => job.state = JobState::Completed,
                        EventKind::Failed => {
                            job.state = JobState::Failed;
                            job.error = ev.error;
                        }
                        EventKind::Requeued => job.state = JobState::Queued,
                        EventKind::Submitted => unreachable!("handled above"),
                    }
                }
            }
        }
        Ok(jobs)
    }

    /// Oldest queued job, if any.
    pub fn next_queued(&self) -> Result<Option<JobRecord>, OrchError> {
        Ok(self
            .jobs()?
            .into_iter()
            .find(|j| j.state == JobState::Queued))
    }

    fn next_id(&self) -> Result<u64, OrchError> {
        Ok(self.jobs()?.iter().map(|j| j.id + 1).max().unwrap_or(1))
    }

    fn append_kind(
        &self,
        job: u64,
        kind: EventKind,
        key: Option<String>,
        error: Option<String>,
    ) -> Result<(), OrchError> {
        self.append(QueueEvent {
            job,
            kind,
            spec: None,
            key,
            error,
            tenant: None,
            unix_ms: now_unix_ms(),
        })
    }

    fn append(&self, ev: QueueEvent) -> Result<(), OrchError> {
        self.log.append(&ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vulfi_queue_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec(bench: &str) -> StudySpec {
        StudySpec {
            bench: bench.to_string(),
            ..StudySpec::default()
        }
    }

    #[test]
    fn submit_run_complete_lifecycle() {
        let root = temp_root("lifecycle");
        let q = JobQueue::open(&root).unwrap();
        assert!(q.jobs().unwrap().is_empty());
        assert!(q.next_queued().unwrap().is_none());

        let a = q
            .submit(&spec("vector sum"), "aaaa", Some("alice"))
            .unwrap();
        let b = q.submit(&spec("dot product"), "bbbb", Some("bob")).unwrap();
        assert_ne!(a, b);
        assert_eq!(q.next_queued().unwrap().unwrap().id, a, "FIFO");

        q.started(a, "deadbeef").unwrap();
        assert_eq!(q.next_queued().unwrap().unwrap().id, b);
        q.completed(a).unwrap();
        q.started(b, "cafef00d").unwrap();
        q.failed(b, "boom").unwrap();

        let jobs = q.jobs().unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].state, JobState::Completed);
        assert_eq!(jobs[0].key.as_deref(), Some("deadbeef"));
        assert_eq!(jobs[0].tenant.as_deref(), Some("alice"));
        assert_eq!(jobs[1].state, JobState::Failed);
        assert_eq!(jobs[1].error.as_deref(), Some("boom"));
    }

    #[test]
    fn queue_survives_reopen_and_recovers_orphans() {
        let root = temp_root("reopen");
        let id = {
            let q = JobQueue::open(&root).unwrap();
            let id = q.submit(&spec("vector sum"), "deadbeef", None).unwrap();
            q.started(id, "deadbeef").unwrap();
            id
        };
        // "Daemon restart": the running job must be re-queued, with its
        // spec intact.
        let q = JobQueue::open(&root).unwrap();
        assert_eq!(q.recover().unwrap(), vec![id]);
        let job = q.next_queued().unwrap().unwrap();
        assert_eq!(job.id, id);
        assert_eq!(job.spec.bench, "vector sum");
        // Ids keep advancing after a reopen.
        let next = q.submit(&spec("dot product"), "cafef00d", None).unwrap();
        assert!(next > id);
        // Recovery is idempotent: nothing running now.
        assert!(q.recover().unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_healed_on_open() {
        let root = temp_root("torn");
        let path = {
            let q = JobQueue::open(&root).unwrap();
            q.submit(&spec("vector sum"), "deadbeef", None).unwrap();
            q.path()
        };
        // Simulate a killed writer: append half a line.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"{\"job\":2,\"kind\":\"Subm");
        std::fs::write(&path, &bytes).unwrap();

        let q = JobQueue::open(&root).unwrap();
        let jobs = q.jobs().unwrap();
        assert_eq!(jobs.len(), 1, "torn event dropped, intact one kept");
        assert_eq!(jobs[0].spec.bench, "vector sum");
    }
}
