//! The shard runner: fan missing shards out over rayon, persist each as
//! it completes, and merge the store back into a study result.

use std::sync::Mutex;
use std::time::Instant;

use rayon::prelude::*;
use vulfi::{campaign_seed, run_experiment_range, Prepared, StudyConfig, StudyResult, Workload};

use crate::key::{study_key, StudyKey};
use crate::observe::{Progress, ProgressSnapshot};
use crate::plan::{covered_experiments, merge, merged_dyn_insts, missing_jobs, plan_shards};
use crate::store::{Manifest, ShardRecord, Store};
use crate::OrchError;

/// Callback invoked (serialized, under the runner's lock) after every
/// completed shard.
pub type ProgressFn = Box<dyn Fn(&ProgressSnapshot) + Send + Sync>;

pub struct RunOptions {
    /// Experiments per shard.
    pub shard_size: usize,
    /// Stop after executing this many shards in this invocation, leaving
    /// the rest pending in the store (tests use this to simulate a killed
    /// run; incremental batch jobs can use it as a work quantum).
    pub max_shards: Option<usize>,
    pub progress: Option<ProgressFn>,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            shard_size: 25,
            max_shards: None,
            progress: None,
        }
    }
}

/// What a [`run_study_persistent`] invocation did.
pub struct RunOutcome {
    pub key: StudyKey,
    pub total_shards: usize,
    /// Shards already in the store, skipped by this invocation.
    pub reused_shards: usize,
    pub executed_shards: usize,
    /// Shards still missing (nonzero only under `max_shards` cutoffs).
    pub pending_shards: usize,
    /// `Some` once every campaign the stopping rule needs is stored.
    pub result: Option<StudyResult>,
    /// Wall time of this invocation.
    pub wall_ns: u64,
    /// Golden-run dynamic instructions over the campaigns the merged
    /// result used (0 while partial).
    pub dyn_insts: u64,
    pub progress: ProgressSnapshot,
}

/// Run (or resume) a study through `store`.
///
/// Experiments already persisted under this study's content key are
/// never re-executed; everything else fans out over rayon in shard
/// units, each appended to the store the moment it completes. Results
/// are bit-identical to `vulfi::run_study` with the same config
/// regardless of shard size, thread count, or how many times the run
/// was interrupted and resumed.
pub fn run_study_persistent(
    prog: &Prepared,
    workload: &dyn Workload,
    workload_name: &str,
    isa: &str,
    cfg: &StudyConfig,
    store: &Store,
    opts: RunOptions,
) -> Result<RunOutcome, OrchError> {
    let started = Instant::now();
    let key = study_key(prog, workload_name, isa, cfg);
    let study = store.study(&key);
    let plan = plan_shards(cfg, opts.shard_size);

    if !study.exists() {
        study.write_manifest(&Manifest {
            key: key.clone(),
            workload: workload_name.to_string(),
            isa: isa.to_string(),
            category: prog.category,
            entry: prog.entry.clone(),
            cfg: *cfg,
            total_shards: plan.len() as u64,
            complete: false,
        })?;
    }

    let done = study.shards()?;
    // Heal the expected kill artifact (a torn trailing line) now, so the
    // appends below cannot bury it mid-file where it would read as
    // corruption. Real corruption errored out of `shards()` above.
    study.trim_torn_tail()?;
    let mut missing = missing_jobs(&plan, &done, cfg);
    let reused_shards = plan.len() - missing.len();
    if let Some(cap) = opts.max_shards {
        missing.truncate(cap);
    }

    let mut progress = Progress::start((cfg.max_campaigns * cfg.experiments_per_campaign) as u64);
    progress.resumed = covered_experiments(&done, cfg) as u64;
    for rec in &done {
        for e in &rec.experiments {
            progress.counts.add(e);
            progress.dyn_insts += e.golden_dyn_insts;
        }
    }

    // One lock serializes the append-only log, the progress counters,
    // and the user's callback; experiment execution itself runs outside
    // it.
    let sink = Mutex::new((&study, progress));
    let executed_shards = missing.len();
    let results: Result<Vec<()>, OrchError> = missing
        .into_par_iter()
        .map(|job| {
            let shard_start = Instant::now();
            let experiments = run_experiment_range(
                prog,
                workload,
                campaign_seed(cfg.seed, job.campaign),
                job.start..job.end,
            )
            .map_err(|e| OrchError(e.to_string()))?;
            let rec = ShardRecord {
                campaign: job.campaign,
                start: job.start,
                end: job.end,
                experiments,
                wall_ns: shard_start.elapsed().as_nanos() as u64,
            };
            // Recover the guard on poison: a panic in another worker (or
            // in a user callback) must not cascade into losing this
            // shard's append — the counters it protects stay coherent
            // because every mutation below is completed before unlock.
            let mut guard = sink
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let (study, progress) = &mut *guard;
            study.append_shard(&rec)?;
            progress.executed += rec.experiments.len() as u64;
            for e in &rec.experiments {
                progress.counts.add(e);
                progress.dyn_insts += e.golden_dyn_insts;
            }
            if let Some(cb) = &opts.progress {
                // A panicking observer must not kill the study: the
                // shard is already persisted; reporting is best-effort.
                let snap = progress.snapshot();
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cb(&snap)));
            }
            Ok(())
        })
        .collect();
    results?;

    let (_, progress) = sink
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let done = study.shards()?;
    let result = merge(cfg, prog.category, &done);
    let pending_shards = missing_jobs(&plan, &done, cfg).len();
    let dyn_insts = result
        .as_ref()
        .map(|r| merged_dyn_insts(cfg, r, &done))
        .unwrap_or(0);
    if result.is_some() {
        let mut manifest = study.read_manifest()?;
        if !manifest.complete {
            manifest.complete = true;
            study.write_manifest(&manifest)?;
        }
    }
    Ok(RunOutcome {
        key,
        total_shards: plan.len(),
        reused_shards,
        executed_shards,
        pending_shards,
        result,
        wall_ns: started.elapsed().as_nanos() as u64,
        dyn_insts,
        progress: progress.snapshot(),
    })
}

/// Set the global worker count (`--jobs N`; 0 = all cores).
pub fn set_jobs(n: usize) {
    let _ = rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global();
}
