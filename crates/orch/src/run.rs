//! The shard runner: fan missing shards out over rayon, persist each as
//! it completes, and merge the store back into a study result.

use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;

use rayon::prelude::*;
use vulfi::{
    build_prune_context, campaign_seed, run_experiment_range, run_experiment_range_pruned,
    run_experiment_range_traced, Prepared, PruneContext, SoundnessReport, StudyConfig, StudyResult,
    Workload,
};

use crate::key::{study_key, StudyKey};
use crate::observe::{Progress, ProgressSnapshot};
use crate::plan::{
    covered_experiments, merge, merged_dyn_insts, missing_jobs, plan_shards, ShardJob,
};
use crate::store::{Manifest, ShardRecord, Store};
use crate::tracestore::{TraceShard, TraceStore};
use crate::OrchError;

/// Callback invoked (serialized, under the runner's lock) after every
/// completed shard, and once more with the final state before the
/// runner returns — consumers always observe the finished snapshot
/// (`done == total` on a completed study) even if the last shard's
/// callback was lost or no shard ran at all.
pub type ProgressFn = Box<dyn Fn(&ProgressSnapshot) + Send + Sync>;

pub struct RunOptions {
    /// Experiments per shard.
    pub shard_size: usize,
    /// Stop after executing this many shards in this invocation, leaving
    /// the rest pending in the store (tests use this to simulate a killed
    /// run; incremental batch jobs can use it as a work quantum).
    pub max_shards: Option<usize>,
    pub progress: Option<ProgressFn>,
    /// Record per-experiment trace spans under this trace-store root
    /// (`vulfi study --trace <dir>`). Tracing is observational: the
    /// persisted results and the study key are bit-identical with or
    /// without it.
    pub trace: Option<PathBuf>,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            shard_size: 25,
            max_shards: None,
            progress: None,
            trace: None,
        }
    }
}

/// What a [`run_study_persistent`] invocation did.
pub struct RunOutcome {
    pub key: StudyKey,
    pub total_shards: usize,
    /// Shards already in the store, skipped by this invocation.
    pub reused_shards: usize,
    pub executed_shards: usize,
    /// Shards still missing (nonzero only under `max_shards` cutoffs).
    pub pending_shards: usize,
    /// `Some` once every campaign the stopping rule needs is stored.
    pub result: Option<StudyResult>,
    /// Wall time of this invocation.
    pub wall_ns: u64,
    /// Golden-run dynamic instructions over the campaigns the merged
    /// result used (0 while partial).
    pub dyn_insts: u64,
    pub progress: ProgressSnapshot,
}

/// Execute one shard of a study: derive the campaign seed, run the
/// experiment range (traced when asked), and bump the global metrics —
/// the single execution path shared by the in-process runner below and
/// the `vulfi serve` worker pool. Callers append the returned record to
/// the store themselves (the runner under its sink lock; a service
/// worker after its lease).
///
/// Determinism contract: the record depends only on
/// `(prog, workload, cfg.seed, job)` — never on who ran it, when, or
/// how many times (`wall_ns` is informational and excluded from result
/// merging).
pub fn run_shard(
    prog: &Prepared,
    workload: &dyn Workload,
    cfg: &StudyConfig,
    job: ShardJob,
    traced: bool,
    prune: Option<&PruneContext>,
) -> Result<(ShardRecord, Vec<vulfi::ExperimentTrace>), OrchError> {
    if prog.model != cfg.model {
        return Err(OrchError(format!(
            "prepared program injects '{}' but the study config says '{}'",
            prog.model, cfg.model
        )));
    }
    let shard_start = Instant::now();
    let seed = campaign_seed(cfg.seed, job.campaign);
    let (experiments, spans) = if let Some(ctx) = prune {
        if traced {
            return Err(OrchError(
                "tracing and pruning are mutually exclusive (a discharged experiment \
                 has no execution to trace)"
                    .to_string(),
            ));
        }
        run_experiment_range_pruned(prog, workload, ctx, seed, job.start..job.end)
            .map(|e| (e, Vec::new()))
    } else if traced {
        run_experiment_range_traced(prog, workload, seed, job.start..job.end)
    } else {
        run_experiment_range(prog, workload, seed, job.start..job.end).map(|e| (e, Vec::new()))
    }
    .map_err(|e| OrchError(e.to_string()))?;
    let metrics = crate::metrics::global();
    for e in &experiments {
        metrics.inc_experiment(prog.category, e.outcome);
        metrics.inc_experiment_model(prog.model, e.outcome);
    }
    for s in &spans {
        if let Some(p) = s.propagation {
            metrics.observe_propagation(prog.category, p);
        }
    }
    Ok((
        ShardRecord {
            campaign: job.campaign,
            start: job.start,
            end: job.end,
            experiments,
            wall_ns: shard_start.elapsed().as_nanos() as u64,
        },
        spans,
    ))
}

/// Run (or resume) a study through `store`.
///
/// Experiments already persisted under this study's content key are
/// never re-executed; everything else fans out over rayon in shard
/// units, each appended to the store the moment it completes. Results
/// are bit-identical to `vulfi::run_study` with the same config
/// regardless of shard size, thread count, or how many times the run
/// was interrupted and resumed.
pub fn run_study_persistent(
    prog: &Prepared,
    workload: &dyn Workload,
    workload_name: &str,
    isa: &str,
    cfg: &StudyConfig,
    store: &Store,
    opts: RunOptions,
) -> Result<RunOutcome, OrchError> {
    let started = Instant::now();
    if prog.model != cfg.model {
        // The model rides on both the prepared program (the injector
        // reads it) and the config (the key hashes it); letting them
        // diverge would cache results under the wrong key.
        return Err(OrchError(format!(
            "prepared program injects '{}' but the study config says '{}'",
            prog.model, cfg.model
        )));
    }
    if cfg.prune && opts.trace.is_some() {
        return Err(OrchError(
            "--trace and --prune are mutually exclusive: a statically discharged \
             experiment has no execution to trace"
                .to_string(),
        ));
    }
    let key = study_key(prog, workload_name, isa, cfg);
    let study = store.study(&key);
    let plan = plan_shards(cfg, opts.shard_size);

    if !study.exists() {
        study.write_manifest(&Manifest {
            key: key.clone(),
            workload: workload_name.to_string(),
            isa: isa.to_string(),
            category: prog.category,
            entry: prog.entry.clone(),
            cfg: *cfg,
            total_shards: plan.len() as u64,
            complete: false,
        })?;
    }

    // Open the trace sidecar first so a bad --trace path fails before
    // any work, and heal its own kill artifact the same way as the
    // result log below.
    let trace_log = match &opts.trace {
        Some(root) => {
            let tstore = TraceStore::open(root)?;
            let tlog = tstore.study(&key);
            tlog.trim_torn_tail()?;
            Some(tlog)
        }
        None => None,
    };

    let done = study.shards()?;
    // Heal the expected kill artifact (a torn trailing line) now, so the
    // appends below cannot bury it mid-file where it would read as
    // corruption. Real corruption errored out of `shards()` above.
    study.trim_torn_tail()?;
    let mut missing = missing_jobs(&plan, &done, cfg);
    let reused_shards = plan.len() - missing.len();
    if let Some(cap) = opts.max_shards {
        missing.truncate(cap);
    }

    // The prune context (static analysis + per-input active-lane census)
    // is shared by every shard, and only needed when something will
    // actually execute — a fully cached study resumes without it.
    let prune_ctx = if cfg.prune && !missing.is_empty() {
        Some(build_prune_context(prog, workload).map_err(|e| OrchError(e.to_string()))?)
    } else {
        None
    };

    let mut progress = Progress::start((cfg.max_campaigns * cfg.experiments_per_campaign) as u64);
    progress.resumed = covered_experiments(&done, cfg) as u64;
    for rec in &done {
        for e in &rec.experiments {
            progress.counts.add(e);
            progress.dyn_insts += e.golden_dyn_insts;
        }
    }

    // One lock serializes the append-only logs, the progress counters,
    // and the user's callback; experiment execution itself runs outside
    // it.
    let sink = Mutex::new((&study, progress));
    let executed_shards = missing.len();
    let metrics = crate::metrics::global();
    let faults_before = vulfi::engine_faults().len() as u64;
    let results: Result<Vec<()>, OrchError> = missing
        .into_par_iter()
        .map(|job| {
            let (rec, spans) = run_shard(
                prog,
                workload,
                cfg,
                job,
                trace_log.is_some(),
                prune_ctx.as_ref(),
            )?;
            // Recover the guard on poison: a panic in another worker (or
            // in a user callback) must not cascade into losing this
            // shard's append — the counters it protects stay coherent
            // because every mutation below is completed before unlock.
            let mut guard = sink
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let (study, progress) = &mut *guard;
            let append_start = Instant::now();
            study.append_shard(&rec)?;
            metrics.observe_shard_append(append_start.elapsed().as_nanos() as u64);
            if let Some(tlog) = &trace_log {
                // The result shard is already durable; the trace append
                // rides in the same critical section so a kill tears at
                // most the trace line (which resume trims) and never
                // interleaves two writers.
                tlog.append_shard(&TraceShard {
                    campaign: job.campaign,
                    start: job.start,
                    end: job.end,
                    workload: workload_name.to_string(),
                    category: prog.category.name().to_string(),
                    isa: isa.to_string(),
                    model: prog.model.name(),
                    traces: spans,
                })?;
            }
            progress.note_shard(rec.experiments.len() as u64);
            for e in &rec.experiments {
                progress.counts.add(e);
                progress.dyn_insts += e.golden_dyn_insts;
            }
            if let Some(cb) = &opts.progress {
                // A panicking observer must not kill the study: the
                // shard is already persisted; reporting is best-effort.
                let snap = progress.snapshot();
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cb(&snap)));
            }
            Ok(())
        })
        .collect();
    results?;
    metrics.add_engine_faults((vulfi::engine_faults().len() as u64).saturating_sub(faults_before));

    let (_, progress) = sink
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let done = study.shards()?;
    let result = merge(cfg, prog.category, &done);
    let pending_shards = missing_jobs(&plan, &done, cfg).len();
    let dyn_insts = result
        .as_ref()
        .map(|r| merged_dyn_insts(cfg, r, &done))
        .unwrap_or(0);
    if result.is_some() {
        let mut manifest = study.read_manifest()?;
        if !manifest.complete {
            manifest.complete = true;
            study.write_manifest(&manifest)?;
        }
    }
    let final_snapshot = progress.snapshot();
    if let Some(cb) = &opts.progress {
        // Always emit the final state, even when every shard was reused
        // (the per-shard callback never fired) — consumers of the stream
        // can rely on the last snapshot reporting `done == total` for a
        // completed study.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cb(&final_snapshot)));
    }
    Ok(RunOutcome {
        key,
        total_shards: plan.len(),
        reused_shards,
        executed_shards,
        pending_shards,
        result,
        wall_ns: started.elapsed().as_nanos() as u64,
        dyn_insts,
        progress: final_snapshot,
    })
}

/// Cross-validate the static analyzer against a fully-executed study
/// (`--prune=verify`): re-run the analysis on the workload, then check
/// every stored single-bit-flip injection record against the benign
/// predictions. The executed study shares its key with an unpruned run,
/// so verification is free on a warm store; any violation means the
/// analyzer predicted "provably benign" for a flip that misbehaved —
/// an analyzer bug, never sampling noise.
pub fn verify_soundness(
    workload: &dyn Workload,
    done: &[ShardRecord],
) -> Result<SoundnessReport, OrchError> {
    let report = vulfi::analyze_module(workload.module(), workload.entry()).map_err(OrchError)?;
    let plan = vulfi::PrunePlan::from_report(&report);
    Ok(vulfi::check_soundness(
        &plan,
        done.iter().flat_map(|s| &s.experiments),
    ))
}

/// Set the global worker count (`--jobs N`; 0 = all cores).
pub fn set_jobs(n: usize) {
    let _ = rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global();
}
