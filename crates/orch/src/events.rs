//! Operational event log for the injection service.
//!
//! Where the job queue (`queue.rs`) is the *authoritative* state machine
//! the daemon folds its job table from, the ops log is the *narrative*:
//! one append-only, CRC-checksummed JSONL stream
//! (`<store>/events/ops.jsonl`, sharing the [`CheckedLog`] machinery
//! with the shard, trace, and queue logs) recording everything the
//! service did and when — job lifecycle, lease grants, per-shard
//! durations, merges, fsck actions, engine faults. Every event carries
//! its correlation IDs (job id, study key, worker id, shard range) so
//! the full submit → lease → shards → merge lifecycle of any job can be
//! reconstructed from the log alone (`vulfi events summarize`), long
//! after the daemon and its TTY output are gone.
//!
//! The log is observability, not state: nothing replays it to make
//! decisions, so a quarantined ops log never blocks a study. It heals
//! torn tails on open like every other `CheckedLog` and gets its own
//! `vulfi events fsck`.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::key::StudyKey;
use crate::store::{CheckedLog, StudyFsck};
use crate::OrchError;

/// What happened. Unit variants only — everything else is correlation
/// payload on [`OpsEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum OpsKind {
    /// A study was submitted (job + key + tenant in `detail`).
    Submitted,
    /// The daemon promoted the job to the active study.
    Started,
    /// A worker leased a shard range.
    LeaseGranted,
    /// A lease expired or a dead daemon's job went back to the queue.
    Requeued,
    /// A worker durably appended one executed shard (`wall_ns` is the
    /// shard's execution time).
    ShardDone,
    /// All shards landed and merged into the study result.
    Merged,
    Completed,
    Failed,
    /// An fsck pass ran (`detail` says what it found/repaired).
    Fsck,
    /// An engine panic was absorbed during this study.
    EngineFault,
    /// An alert rule's sustained violation crossed into firing
    /// (`detail` names the rule and the offending value).
    AlertFiring,
    /// A firing alert rule's series recovered.
    AlertResolved,
}

impl OpsKind {
    pub fn name(&self) -> &'static str {
        match self {
            OpsKind::Submitted => "submitted",
            OpsKind::Started => "started",
            OpsKind::LeaseGranted => "lease-granted",
            OpsKind::Requeued => "requeued",
            OpsKind::ShardDone => "shard-done",
            OpsKind::Merged => "merged",
            OpsKind::Completed => "completed",
            OpsKind::Failed => "failed",
            OpsKind::Fsck => "fsck",
            OpsKind::EngineFault => "engine-fault",
            OpsKind::AlertFiring => "alert-firing",
            OpsKind::AlertResolved => "alert-resolved",
        }
    }
}

/// One checksummed line of the ops log. Correlation fields are optional
/// because not every event has every coordinate; an event carries all
/// the IDs known at its emit site.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct OpsEvent {
    /// Wall-clock milliseconds since the Unix epoch.
    pub unix_ms: u64,
    pub kind: OpsKind,
    /// Queue job id.
    pub job: Option<u64>,
    /// Content-addressed study key.
    pub key: Option<String>,
    /// Worker id (`w0`, `w1`, …) within its daemon.
    pub worker: Option<String>,
    /// Shard coordinates (`ShardDone` / `LeaseGranted`).
    pub campaign: Option<u64>,
    pub start: Option<u64>,
    pub end: Option<u64>,
    /// Event duration where one is meaningful: shard execution time on
    /// `ShardDone`, queue wait on `Started`.
    pub wall_ns: Option<u64>,
    /// Free-form context (tenant, error text, fsck findings).
    pub detail: Option<String>,
}

impl OpsEvent {
    pub fn new(kind: OpsKind) -> OpsEvent {
        OpsEvent {
            unix_ms: now_unix_ms(),
            kind,
            job: None,
            key: None,
            worker: None,
            campaign: None,
            start: None,
            end: None,
            wall_ns: None,
            detail: None,
        }
    }

    pub fn job(mut self, id: u64) -> OpsEvent {
        self.job = Some(id);
        self
    }

    pub fn key(mut self, key: &str) -> OpsEvent {
        self.key = Some(key.to_string());
        self
    }

    pub fn worker(mut self, worker: &str) -> OpsEvent {
        self.worker = Some(worker.to_string());
        self
    }

    pub fn shard(mut self, campaign: u64, start: u64, end: u64) -> OpsEvent {
        self.campaign = Some(campaign);
        self.start = Some(start);
        self.end = Some(end);
        self
    }

    pub fn wall_ns(mut self, ns: u64) -> OpsEvent {
        self.wall_ns = Some(ns);
        self
    }

    pub fn detail(mut self, detail: impl Into<String>) -> OpsEvent {
        self.detail = Some(detail.into());
        self
    }

    /// One human-readable line (for `vulfi events tail`).
    pub fn render_line(&self) -> String {
        let mut s = format!("{:>13}  {:13}", self.unix_ms, self.kind.name());
        if let Some(j) = self.job {
            s.push_str(&format!("  job {j}"));
        }
        if let Some(k) = &self.key {
            s.push_str(&format!("  {}", &k[..12.min(k.len())]));
        }
        if let Some(w) = &self.worker {
            s.push_str(&format!("  {w}"));
        }
        if let (Some(c), Some(a), Some(b)) = (self.campaign, self.start, self.end) {
            s.push_str(&format!("  shard {c}:{a}..{b}"));
        }
        if let Some(ns) = self.wall_ns {
            s.push_str(&format!("  {:.2}ms", ns as f64 / 1e6));
        }
        if let Some(d) = &self.detail {
            s.push_str(&format!("  ({d})"));
        }
        s
    }
}

fn now_unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// The operational event log, layered on a store directory.
pub struct OpsLog {
    log: CheckedLog,
}

impl OpsLog {
    /// Open (creating if needed) the ops log under `store_root/events`,
    /// healing a torn tail left by a killed daemon.
    pub fn open(store_root: impl AsRef<Path>) -> Result<OpsLog, OrchError> {
        let dir = store_root.as_ref().join("events");
        std::fs::create_dir_all(&dir)
            .map_err(|e| OrchError(format!("create {}: {e}", dir.display())))?;
        let log = OpsLog {
            log: CheckedLog::new(
                dir.join("ops.jsonl"),
                dir.join("ops.quarantine"),
                "vulfi events fsck --repair",
            ),
        };
        // Mid-file corruption must not make the log unopenable — the
        // daemon still has to start, and `vulfi events fsck` repairs
        // through this same handle. Reads stay loud and point at fsck.
        let _ = log.log.trim_torn_tail::<OpsEvent>();
        Ok(log)
    }

    pub fn path(&self) -> PathBuf {
        self.log.path().to_path_buf()
    }

    /// Durably append one event.
    pub fn append(&self, ev: OpsEvent) -> Result<(), OrchError> {
        self.log.append(&ev)
    }

    /// Every event, oldest first.
    pub fn events(&self) -> Result<Vec<OpsEvent>, OrchError> {
        self.log.records()
    }

    /// The most recent `n` events, oldest of them first.
    pub fn tail(&self, n: usize) -> Result<Vec<OpsEvent>, OrchError> {
        let mut evs = self.events()?;
        let skip = evs.len().saturating_sub(n);
        Ok(evs.split_off(skip))
    }

    /// Fold the log into per-job lifecycles.
    pub fn summarize(&self) -> Result<OpsSummary, OrchError> {
        Ok(summarize_events(&self.events()?))
    }

    /// Integrity-check the ops log; with `repair`, quarantine a corrupt
    /// log and salvage the intact lines.
    pub fn fsck(&self, repair: bool) -> Result<StudyFsck, OrchError> {
        self.log
            .fsck::<OpsEvent>(StudyKey("ops".to_string()), repair)
    }
}

/// Reconstructed lifecycle of one job, folded from the ops log alone.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct JobLifecycle {
    pub job: u64,
    pub key: Option<String>,
    /// Tenant, when the submit event carried one.
    pub tenant: Option<String>,
    pub submitted_unix_ms: u64,
    /// Queue wait (submit → start), when both events are present.
    pub queue_wait_ms: Option<u64>,
    pub leases: u64,
    pub requeues: u64,
    pub shards: u64,
    /// Experiments covered by this job's `ShardDone` events.
    pub experiments: u64,
    /// Total shard execution time (sum of `ShardDone.wall_ns`).
    pub shard_wall_ns: u64,
    /// Distinct workers that executed shards for this job.
    pub workers: Vec<String>,
    pub engine_faults: u64,
    pub merged: bool,
    /// Terminal state as told by the log: "completed", "failed", or
    /// "in-flight" when no terminal event has landed (yet).
    pub outcome: String,
    pub error: Option<String>,
    pub finished_unix_ms: Option<u64>,
}

/// Whole-log rollup.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct OpsSummary {
    pub events: u64,
    pub jobs: Vec<JobLifecycle>,
    /// Fsck events are store-wide, not per-job.
    pub fsck_actions: u64,
    /// Alert firing/resolved transitions (store-wide, like fsck).
    pub alert_transitions: u64,
}

/// Pure fold: the summary is a function of the event list, nothing else.
pub fn summarize_events(events: &[OpsEvent]) -> OpsSummary {
    let mut jobs: Vec<JobLifecycle> = Vec::new();
    let mut fsck_actions = 0u64;
    let mut alert_transitions = 0u64;
    for ev in events {
        if ev.kind == OpsKind::Fsck {
            fsck_actions += 1;
            continue;
        }
        if matches!(ev.kind, OpsKind::AlertFiring | OpsKind::AlertResolved) {
            alert_transitions += 1;
            continue;
        }
        let Some(id) = ev.job else { continue };
        let job = match jobs.iter_mut().find(|j| j.job == id) {
            Some(j) => j,
            None => {
                jobs.push(JobLifecycle {
                    job: id,
                    key: None,
                    tenant: None,
                    submitted_unix_ms: ev.unix_ms,
                    queue_wait_ms: None,
                    leases: 0,
                    requeues: 0,
                    shards: 0,
                    experiments: 0,
                    shard_wall_ns: 0,
                    workers: Vec::new(),
                    engine_faults: 0,
                    merged: false,
                    outcome: "in-flight".to_string(),
                    error: None,
                    finished_unix_ms: None,
                });
                jobs.last_mut().expect("just pushed")
            }
        };
        if job.key.is_none() {
            job.key = ev.key.clone();
        }
        match ev.kind {
            OpsKind::Submitted => {
                job.submitted_unix_ms = ev.unix_ms;
                job.tenant = ev.detail.clone();
            }
            OpsKind::Started => {
                job.queue_wait_ms = Some(ev.unix_ms.saturating_sub(job.submitted_unix_ms));
            }
            OpsKind::LeaseGranted => job.leases += 1,
            OpsKind::Requeued => job.requeues += 1,
            OpsKind::ShardDone => {
                job.shards += 1;
                if let (Some(s), Some(e)) = (ev.start, ev.end) {
                    job.experiments += e.saturating_sub(s);
                }
                job.shard_wall_ns += ev.wall_ns.unwrap_or(0);
                if let Some(w) = &ev.worker {
                    if !job.workers.contains(w) {
                        job.workers.push(w.clone());
                    }
                }
            }
            OpsKind::Merged => job.merged = true,
            OpsKind::Completed => {
                job.outcome = "completed".to_string();
                job.finished_unix_ms = Some(ev.unix_ms);
            }
            OpsKind::Failed => {
                job.outcome = "failed".to_string();
                job.error = ev.detail.clone();
                job.finished_unix_ms = Some(ev.unix_ms);
            }
            OpsKind::EngineFault => job.engine_faults += 1,
            OpsKind::Fsck | OpsKind::AlertFiring | OpsKind::AlertResolved => {
                unreachable!("handled above")
            }
        }
    }
    OpsSummary {
        events: events.len() as u64,
        jobs,
        fsck_actions,
        alert_transitions,
    }
}

impl OpsSummary {
    /// Distinct workers across every job.
    pub fn workers(&self) -> Vec<String> {
        let set: BTreeSet<&String> = self.jobs.iter().flat_map(|j| &j.workers).collect();
        set.into_iter().cloned().collect()
    }
}

impl JobLifecycle {
    /// Multi-line human rendering of one lifecycle.
    pub fn render(&self) -> String {
        let key = self
            .key
            .as_deref()
            .map(|k| k[..12.min(k.len())].to_string())
            .unwrap_or_else(|| "?".to_string());
        let wait = match self.queue_wait_ms {
            Some(ms) => format!("{ms}ms"),
            None => "?".to_string(),
        };
        let mut s = format!(
            "job {:>3}  {}  {}  queue-wait {}  {} lease(s), {} shard(s) / {} experiment(s) \
             on {} worker(s), {:.1}ms shard time",
            self.job,
            key,
            self.outcome,
            wait,
            self.leases,
            self.shards,
            self.experiments,
            self.workers.len(),
            self.shard_wall_ns as f64 / 1e6,
        );
        if self.merged {
            s.push_str(", merged");
        }
        if self.requeues > 0 {
            s.push_str(&format!(", {} requeue(s)", self.requeues));
        }
        if self.engine_faults > 0 {
            s.push_str(&format!(", {} engine fault(s)", self.engine_faults));
        }
        if let Some(e) = &self.error {
            s.push_str(&format!("\n         error: {e}"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vulfi_ops_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn full_lifecycle(log: &OpsLog) {
        log.append(
            OpsEvent::new(OpsKind::Submitted)
                .job(1)
                .key("deadbeef")
                .detail("alice"),
        )
        .unwrap();
        log.append(OpsEvent::new(OpsKind::Started).job(1).key("deadbeef"))
            .unwrap();
        for (i, w) in ["w0", "w1", "w0"].iter().enumerate() {
            log.append(
                OpsEvent::new(OpsKind::LeaseGranted)
                    .job(1)
                    .key("deadbeef")
                    .worker(w)
                    .shard(0, i as u64 * 5, (i as u64 + 1) * 5),
            )
            .unwrap();
            log.append(
                OpsEvent::new(OpsKind::ShardDone)
                    .job(1)
                    .key("deadbeef")
                    .worker(w)
                    .shard(0, i as u64 * 5, (i as u64 + 1) * 5)
                    .wall_ns(1_000_000),
            )
            .unwrap();
        }
        log.append(OpsEvent::new(OpsKind::Merged).job(1).key("deadbeef"))
            .unwrap();
        log.append(OpsEvent::new(OpsKind::Completed).job(1).key("deadbeef"))
            .unwrap();
    }

    #[test]
    fn summarize_reconstructs_the_full_lifecycle() {
        let root = temp_root("lifecycle");
        let log = OpsLog::open(&root).unwrap();
        full_lifecycle(&log);

        let s = log.summarize().unwrap();
        assert_eq!(s.events, 10);
        assert_eq!(s.jobs.len(), 1);
        let j = &s.jobs[0];
        assert_eq!(j.job, 1);
        assert_eq!(j.key.as_deref(), Some("deadbeef"));
        assert_eq!(j.tenant.as_deref(), Some("alice"));
        assert!(j.queue_wait_ms.is_some(), "submit → start wait known");
        assert_eq!((j.leases, j.shards, j.experiments), (3, 3, 15));
        assert_eq!(j.shard_wall_ns, 3_000_000);
        assert_eq!(j.workers, vec!["w0".to_string(), "w1".to_string()]);
        assert!(j.merged);
        assert_eq!(j.outcome, "completed");
        assert!(j.finished_unix_ms.is_some());
        assert_eq!(s.workers(), vec!["w0".to_string(), "w1".to_string()]);

        let line = j.render();
        assert!(line.contains("3 shard(s) / 15 experiment(s)"), "{line}");
        assert!(line.contains("merged"), "{line}");
    }

    #[test]
    fn tail_returns_most_recent_events() {
        let root = temp_root("tail");
        let log = OpsLog::open(&root).unwrap();
        full_lifecycle(&log);
        let t = log.tail(2).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].kind, OpsKind::Merged);
        assert_eq!(t[1].kind, OpsKind::Completed);
        assert!(t[1].render_line().contains("completed"));
        // Asking for more than exists returns everything.
        assert_eq!(log.tail(1000).unwrap().len(), 10);
    }

    #[test]
    fn failed_job_and_fsck_actions_are_summarized() {
        let root = temp_root("failed");
        let log = OpsLog::open(&root).unwrap();
        log.append(OpsEvent::new(OpsKind::Submitted).job(7).key("cafe"))
            .unwrap();
        log.append(
            OpsEvent::new(OpsKind::Failed)
                .job(7)
                .key("cafe")
                .detail("boom"),
        )
        .unwrap();
        log.append(OpsEvent::new(OpsKind::Fsck).detail("quarantined 1 log"))
            .unwrap();
        log.append(OpsEvent::new(OpsKind::EngineFault).job(7).detail("panic"))
            .unwrap();
        log.append(OpsEvent::new(OpsKind::AlertFiring).detail("high-sdc value 9.1"))
            .unwrap();
        log.append(OpsEvent::new(OpsKind::AlertResolved).detail("high-sdc value 1.2"))
            .unwrap();
        let s = log.summarize().unwrap();
        assert_eq!(s.fsck_actions, 1);
        assert_eq!(s.alert_transitions, 2, "alert events are store-wide");
        let j = &s.jobs[0];
        assert_eq!(j.outcome, "failed");
        assert_eq!(j.error.as_deref(), Some("boom"));
        assert_eq!(j.engine_faults, 1);
        assert!(j.render().contains("error: boom"));
    }

    #[test]
    fn torn_tail_is_healed_on_open_and_fsck_reports_corruption() {
        let root = temp_root("torn");
        let path = {
            let log = OpsLog::open(&root).unwrap();
            full_lifecycle(&log);
            log.path()
        };
        // Killed writer: half a trailing line vanishes on reopen.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"{\"unix_ms\":1,\"kind\":\"Shar");
        std::fs::write(&path, &bytes).unwrap();
        let log = OpsLog::open(&root).unwrap();
        assert_eq!(log.events().unwrap().len(), 10);

        // Mid-file corruption: loud until repaired, then salvaged.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        let err = log.events().unwrap_err();
        assert!(err.0.contains("vulfi events fsck"), "{err}");
        let report = log.fsck(true).unwrap();
        assert!(report.quarantined.is_some());
        assert!(log.events().unwrap().len() < 10, "corrupt line dropped");
    }
}
