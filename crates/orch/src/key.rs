//! Content-addressed study identity.
//!
//! A study is identified by everything that determines its results: the
//! instrumented module's printed IR (which embeds the ISA lowering and
//! the injection category's instrumentation), the entry function, the
//! fault-site category, the workload and ISA names, and the full
//! [`StudyConfig`] including the seed. Two invocations with the same key
//! are bit-identical experiments, so the store can cache and resume them
//! freely; changing any ingredient changes the key and lands in a fresh
//! directory.

use vulfi::{Prepared, StudyConfig};

/// A 128-bit content hash, rendered as 32 hex chars (the store directory
/// name).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StudyKey(pub String);

impl serde::Serialize for StudyKey {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.0.clone())
    }
}

impl serde::Deserialize for StudyKey {
    fn from_value(v: &serde::Value) -> Result<StudyKey, serde::DeError> {
        String::from_value(v).map(StudyKey)
    }
}

impl std::fmt::Display for StudyKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv1a(basis: u64, bytes: &[u8]) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Compute the study key of a prepared program under a configuration.
pub fn study_key(prog: &Prepared, workload_name: &str, isa: &str, cfg: &StudyConfig) -> StudyKey {
    let module_text = vir::printer::print_module(&prog.module);
    let mut canon = String::new();
    for part in [
        "vulfi-orch-study-v1",
        workload_name,
        isa,
        prog.category.name(),
        &prog.entry,
        &cfg.experiments_per_campaign.to_string(),
        &format!("{:016x}", cfg.target_margin.to_bits()),
        &cfg.min_campaigns.to_string(),
        &cfg.max_campaigns.to_string(),
        &cfg.seed.to_string(),
        &module_text,
    ] {
        canon.push_str(part);
        canon.push('\0');
    }
    // The fault model joined the config after stores full of
    // single-bit-flip studies already existed; appending it only when
    // non-default keeps every pre-existing key (and cached study) valid
    // while guaranteeing a different model never collides with one.
    if cfg.model != vulfi::FaultModel::default() {
        canon.push_str(&format!("fault-model:{}", cfg.model.name()));
        canon.push('\0');
    }
    // Same pattern for pruning: a pruned study stores synthetic records
    // for discharged experiments, so it must never share a directory
    // with a full run — but unpruned keys stay byte-identical to every
    // key minted before pruning existed.
    if cfg.prune {
        canon.push_str("prune:on");
        canon.push('\0');
    }
    // Two independent FNV-1a streams (distinct offset bases) give 128
    // bits — ample for a results cache keyed by experiment content.
    let lo = fnv1a(0xcbf2_9ce4_8422_2325, canon.as_bytes());
    let hi = fnv1a(0x6c62_272e_07bb_0142, canon.as_bytes());
    StudyKey(format!("{hi:016x}{lo:016x}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vir::analysis::SiteCategory;
    use vulfi::prepare;

    fn prep(category: SiteCategory) -> Prepared {
        let w = vbench::micro_benchmark("vector sum", spmdc_isa(), vbench::Scale::Test).unwrap();
        prepare(&w, category).unwrap()
    }

    fn spmdc_isa() -> spmdc::VectorIsa {
        spmdc::VectorIsa::Avx
    }

    #[test]
    fn key_is_stable_and_sensitive() {
        let cfg = StudyConfig::default();
        let a = study_key(&prep(SiteCategory::PureData), "vector sum", "avx", &cfg);
        let b = study_key(&prep(SiteCategory::PureData), "vector sum", "avx", &cfg);
        assert_eq!(a, b, "same ingredients → same key");
        assert_eq!(a.0.len(), 32);

        let other_cat = study_key(&prep(SiteCategory::Control), "vector sum", "avx", &cfg);
        assert_ne!(a, other_cat, "category must change the key");

        let mut cfg2 = cfg;
        cfg2.seed ^= 1;
        let other_seed = study_key(&prep(SiteCategory::PureData), "vector sum", "avx", &cfg2);
        assert_ne!(a, other_seed, "seed must change the key");
    }

    #[test]
    fn fault_model_changes_key_but_default_is_legacy_stable() {
        let cfg = StudyConfig::default();
        let base = study_key(&prep(SiteCategory::PureData), "vector sum", "avx", &cfg);

        let mut burst = cfg;
        burst.model = vulfi::FaultModel::MultiBitBurst { width: 2 };
        let burst_key = study_key(&prep(SiteCategory::PureData), "vector sum", "avx", &burst);
        assert_ne!(base, burst_key, "fault model must change the key");

        let mut stuck = cfg;
        stuck.model = vulfi::FaultModel::StuckAt {
            bit: 0,
            value: false,
        };
        let stuck_key = study_key(&prep(SiteCategory::PureData), "vector sum", "avx", &stuck);
        assert_ne!(burst_key, stuck_key, "distinct models must not collide");

        // The default model appends nothing to the canon, so keys of
        // stores written before the model existed still resolve.
        let mut explicit = cfg;
        explicit.model = vulfi::FaultModel::SingleBitFlip;
        let explicit_key = study_key(
            &prep(SiteCategory::PureData),
            "vector sum",
            "avx",
            &explicit,
        );
        assert_eq!(base, explicit_key);
    }

    #[test]
    fn prune_changes_key_but_off_is_legacy_stable() {
        let cfg = StudyConfig::default();
        let base = study_key(&prep(SiteCategory::PureData), "vector sum", "avx", &cfg);

        let mut pruned = cfg;
        pruned.prune = true;
        let pruned_key = study_key(&prep(SiteCategory::PureData), "vector sum", "avx", &pruned);
        assert_ne!(base, pruned_key, "pruning must change the key");

        // prune=false appends nothing: pre-pruning keys still resolve.
        let mut explicit = cfg;
        explicit.prune = false;
        let off_key = study_key(
            &prep(SiteCategory::PureData),
            "vector sum",
            "avx",
            &explicit,
        );
        assert_eq!(base, off_key);
    }
}
