//! The gauntlet scenario DSL: a declarative fault-model × workload
//! matrix with named resiliency invariants.
//!
//! A scenario file (TOML subset, or plain JSON) names the axes of an
//! adversarial certification run — fault models, benchmarks, §II-C
//! categories, ISAs — plus the invariants every expanded cell must
//! hold:
//!
//! ```toml
//! name = "smoke"
//! models = ["single-bit-flip", "multi-bit-burst:2"]
//! isas = ["avx", "sse"]
//! benches = ["vector sum"]
//! categories = ["pure-data"]
//! experiments = 10
//! campaigns = 4
//! seed = 7
//!
//! [invariants]
//! crash_rate_max = 60.0
//! benign_floor = 1.0
//! ```
//!
//! `vulfi gauntlet run` expands the matrix into ordinary studies (each
//! with a content-addressed key, so reruns are cache hits and a killed
//! gauntlet resumes), evaluates the invariants per cell, and exits
//! non-zero on any breach.
//!
//! Invariant thresholds are **Wilson-interval aware**: a `*_max` bound
//! breaches only when the *lower* 95% confidence bound exceeds it, and
//! a `*_min`/`*_floor` bound only when the *upper* bound falls short —
//! a small campaign cannot fail certification on sampling noise alone.
//!
//! Both parsers reject unknown fields: a typo'd `expermients` must not
//! silently run a default-sized gauntlet.

use vulfi::{wilson_interval_95, FaultModel, SoundnessReport, StudyResult, StudySpec};

use crate::OrchError;

/// One named threshold a gauntlet cell must satisfy. Rates are in
/// percent (0–100), matching the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Invariant {
    /// SDC rate must stay at or below this (95% lower bound decides).
    SdcRateMax(f64),
    /// Crash rate must stay at or below this (95% lower bound decides).
    CrashRateMax(f64),
    /// Of the SDC experiments, at least this share must be flagged by a
    /// detector (95% upper bound decides; vacuous with zero SDCs).
    DetectorCoverageMin(f64),
    /// Benign rate must reach at least this (95% upper bound decides).
    BenignFloor(f64),
    /// Of the injections the static analyzer predicted benign, at most
    /// this share may actually misbehave (non-benign outcome or detector
    /// fire). Checked **exactly**, not via a Wilson interval: the
    /// analyzer claims a proof, so a single counterexample at threshold
    /// 0.0 is a breach. Requires a `prune = "verify"` cell; vacuous when
    /// no soundness data exists or nothing was predicted benign.
    PredictionSoundness(f64),
}

impl Invariant {
    pub fn name(&self) -> &'static str {
        match self {
            Invariant::SdcRateMax(_) => "sdc_rate_max",
            Invariant::CrashRateMax(_) => "crash_rate_max",
            Invariant::DetectorCoverageMin(_) => "detector_coverage_min",
            Invariant::BenignFloor(_) => "benign_floor",
            Invariant::PredictionSoundness(_) => "prediction_soundness",
        }
    }

    pub fn threshold(&self) -> f64 {
        match self {
            Invariant::SdcRateMax(t)
            | Invariant::CrashRateMax(t)
            | Invariant::DetectorCoverageMin(t)
            | Invariant::BenignFloor(t)
            | Invariant::PredictionSoundness(t) => *t,
        }
    }
}

/// A parsed, validated scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    pub name: String,
    /// Fault-model names ([`FaultModel::parse`] forms).
    pub models: Vec<String>,
    pub isas: Vec<String>,
    pub benches: Vec<String>,
    pub categories: Vec<String>,
    pub scale: String,
    pub experiments: usize,
    pub campaigns: usize,
    pub seed: u64,
    pub shard_size: usize,
    pub detectors: bool,
    /// Static-pruning mode: `"off"` (default), `"on"` (discharge
    /// provably-benign injections without executing them), or `"verify"`
    /// (execute everything, cross-validate predictions post-hoc — feeds
    /// the `prediction_soundness` invariant).
    pub prune: String,
    pub invariants: Vec<Invariant>,
}

impl Scenario {
    /// Expand the matrix into one [`StudySpec`] per cell, in the
    /// deterministic order models → benches → categories → ISAs (the
    /// order the verdict table prints).
    pub fn expand(&self) -> Vec<StudySpec> {
        let mut cells = Vec::new();
        for model in &self.models {
            for bench in &self.benches {
                for category in &self.categories {
                    for isa in &self.isas {
                        cells.push(StudySpec {
                            bench: bench.clone(),
                            isa: isa.clone(),
                            category: category.clone(),
                            scale: self.scale.clone(),
                            experiments: self.experiments,
                            campaigns: self.campaigns,
                            seed: self.seed,
                            shard_size: self.shard_size,
                            detectors: self.detectors,
                            model: model.clone(),
                            prune: self.prune == "on",
                        });
                    }
                }
            }
        }
        cells
    }

    /// Reject anything the gauntlet could not execute, with errors that
    /// name the offending axis value. Every expanded cell must be a
    /// valid [`StudySpec`].
    pub fn validate(&self) -> Result<(), String> {
        if self.name.trim().is_empty() {
            return Err("scenario.name must be non-empty".to_string());
        }
        for (axis, values) in [
            ("models", &self.models),
            ("isas", &self.isas),
            ("benches", &self.benches),
            ("categories", &self.categories),
        ] {
            if values.is_empty() {
                return Err(format!("scenario.{axis} must list at least one value"));
            }
        }
        if !["off", "on", "verify"].contains(&self.prune.as_str()) {
            return Err(format!(
                "scenario.prune '{}' not in [\"off\", \"on\", \"verify\"]",
                self.prune
            ));
        }
        if self.prune != "off" && self.models.iter().any(|m| m != "single-bit-flip") {
            return Err(format!(
                "scenario.prune = \"{}\" requires models = [\"single-bit-flip\"]: static \
                 discharge proofs only cover the single-bit-flip model",
                self.prune
            ));
        }
        for spec in self.expand() {
            spec.validate()?;
        }
        Ok(())
    }
}

/// Parse a scenario document — TOML subset or JSON, auto-detected —
/// and validate it.
pub fn parse_scenario(text: &str) -> Result<Scenario, String> {
    let doc = if text.trim_start().starts_with('{') {
        serde_json::from_str::<serde::Value>(text).map_err(|e| format!("scenario JSON: {e}"))?
    } else {
        parse_toml(text)?
    };
    let s = scenario_from_value(&doc)?;
    s.validate()?;
    Ok(s)
}

/// Build a [`Scenario`] from a parsed document, overlaying provided
/// fields onto the defaults and rejecting unknown ones.
fn scenario_from_value(doc: &serde::Value) -> Result<Scenario, String> {
    let obj = doc
        .as_object()
        .ok_or_else(|| "scenario must be a table/object".to_string())?;
    let mut s = Scenario {
        name: String::new(),
        models: vec![FaultModel::default().name()],
        isas: vec!["avx".to_string()],
        benches: Vec::new(),
        categories: vec!["pure-data".to_string()],
        scale: "test".to_string(),
        experiments: 25,
        campaigns: 4,
        seed: 42,
        shard_size: 25,
        detectors: false,
        prune: "off".to_string(),
        invariants: Vec::new(),
    };
    for (k, v) in obj {
        let str_field = || {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("scenario.{k} must be a string"))
        };
        let str_list = || -> Result<Vec<String>, String> {
            let arr = v
                .as_array()
                .ok_or_else(|| format!("scenario.{k} must be an array of strings"))?;
            arr.iter()
                .map(|e| {
                    e.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("scenario.{k} must be an array of strings"))
                })
                .collect()
        };
        let num_field = || {
            v.as_u64()
                .ok_or_else(|| format!("scenario.{k} must be a non-negative integer"))
        };
        match k.as_str() {
            "name" => s.name = str_field()?,
            "models" => s.models = str_list()?,
            "isas" => s.isas = str_list()?,
            "benches" => s.benches = str_list()?,
            "categories" => s.categories = str_list()?,
            "scale" => s.scale = str_field()?,
            "experiments" => s.experiments = num_field()? as usize,
            "campaigns" => s.campaigns = num_field()? as usize,
            "seed" => s.seed = num_field()?,
            "shard_size" => s.shard_size = num_field()? as usize,
            "detectors" => {
                s.detectors = v
                    .as_bool()
                    .ok_or_else(|| format!("scenario.{k} must be a boolean"))?
            }
            "prune" => s.prune = str_field()?,
            "invariants" => s.invariants = invariants_from_value(v)?,
            other => return Err(format!("unknown scenario field '{other}'")),
        }
    }
    Ok(s)
}

fn invariants_from_value(v: &serde::Value) -> Result<Vec<Invariant>, String> {
    let obj = v
        .as_object()
        .ok_or_else(|| "scenario.invariants must be a table/object".to_string())?;
    let mut out = Vec::new();
    for (k, v) in obj {
        let pct = v
            .as_f64()
            .ok_or_else(|| format!("invariant {k} must be a number"))?;
        if !(0.0..=100.0).contains(&pct) {
            return Err(format!("invariant {k} must be a percentage in 0..=100"));
        }
        out.push(match k.as_str() {
            "sdc_rate_max" => Invariant::SdcRateMax(pct),
            "crash_rate_max" => Invariant::CrashRateMax(pct),
            "detector_coverage_min" => Invariant::DetectorCoverageMin(pct),
            "benign_floor" => Invariant::BenignFloor(pct),
            "prediction_soundness" => Invariant::PredictionSoundness(pct),
            other => {
                return Err(format!(
                    "unknown invariant '{other}' (expected sdc_rate_max, crash_rate_max, \
                     detector_coverage_min, benign_floor, or prediction_soundness)"
                ))
            }
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// TOML-subset parser
// ---------------------------------------------------------------------

/// Parse the TOML subset scenarios use into a document tree: top-level
/// `key = value` pairs (strings, integers, floats, booleans, string
/// arrays) and flat `[table]` sections. Anything fancier — nested
/// tables, dates, multi-line strings — is a loud error, not a silent
/// guess.
pub fn parse_toml(text: &str) -> Result<serde::Value, String> {
    let mut root: Vec<(String, serde::Value)> = Vec::new();
    let mut table: Option<usize> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        let err = |m: String| format!("scenario line {}: {m}", lineno + 1);
        if let Some(rest) = line.strip_prefix('[') {
            let name = rest
                .strip_suffix(']')
                .ok_or_else(|| err("unterminated [table] header".to_string()))?
                .trim();
            if name.is_empty() || name.contains(['[', ']', '.']) {
                return Err(err(format!("unsupported table name '{name}'")));
            }
            if root.iter().any(|(k, _)| k == name) {
                return Err(err(format!("duplicate table [{name}]")));
            }
            root.push((name.to_string(), serde::Value::Object(Vec::new())));
            table = Some(root.len() - 1);
            continue;
        }
        let (k, v) = line
            .split_once('=')
            .ok_or_else(|| err("expected `key = value` or `[table]`".to_string()))?;
        let key = k.trim();
        if key.is_empty() {
            return Err(err("empty key".to_string()));
        }
        let value = parse_toml_value(v.trim()).map_err(&err)?;
        let target = match table {
            Some(i) => match &mut root[i].1 {
                serde::Value::Object(o) => o,
                _ => unreachable!("tables are always objects"),
            },
            None => &mut root,
        };
        if target.iter().any(|(existing, _)| existing == key) {
            return Err(err(format!("duplicate key '{key}'")));
        }
        target.push((key.to_string(), value));
    }
    Ok(serde::Value::Object(root))
}

/// Drop a `#` comment, but never one inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn parse_toml_value(s: &str) -> Result<serde::Value, String> {
    if s.is_empty() {
        return Err("missing value".to_string());
    }
    if s.starts_with('"') {
        return parse_toml_string(s).map(serde::Value::Str);
    }
    if let Some(body) = s.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| "unterminated array".to_string())?;
        let mut items = Vec::new();
        for item in split_toml_array(body)? {
            items.push(parse_toml_value(item.trim())?);
        }
        return Ok(serde::Value::Array(items));
    }
    match s {
        "true" => return Ok(serde::Value::Bool(true)),
        "false" => return Ok(serde::Value::Bool(false)),
        _ => {}
    }
    if s.contains(['.', 'e', 'E']) {
        if let Ok(f) = s.parse::<f64>() {
            return Ok(serde::Value::Num(serde::Number::F(f)));
        }
    }
    if let Ok(u) = s.parse::<u64>() {
        return Ok(serde::Value::Num(serde::Number::U(u)));
    }
    if let Ok(i) = s.parse::<i64>() {
        return Ok(serde::Value::Num(serde::Number::I(i)));
    }
    Err(format!("unsupported value {s:?}"))
}

fn parse_toml_string(s: &str) -> Result<String, String> {
    let body = s
        .strip_prefix('"')
        .and_then(|b| b.strip_suffix('"'))
        .ok_or_else(|| format!("unterminated string {s:?}"))?;
    let mut out = String::new();
    let mut chars = body.chars();
    while let Some(c) = chars.next() {
        if c == '"' {
            return Err(format!("stray quote inside string {s:?}"));
        }
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            other => return Err(format!("unsupported escape \\{:?}", other)),
        }
    }
    Ok(out)
}

/// Split a TOML array body on top-level commas, respecting quotes.
fn split_toml_array(body: &str) -> Result<Vec<&str>, String> {
    let mut items = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            ',' if !in_str => {
                items.push(&body[start..i]);
                start = i + 1;
            }
            '[' | ']' if !in_str => return Err("nested arrays are not supported".to_string()),
            _ => {}
        }
        escaped = false;
    }
    if in_str {
        return Err("unterminated string in array".to_string());
    }
    let tail = &body[start..];
    if !tail.trim().is_empty() {
        items.push(tail);
    }
    Ok(items)
}

// ---------------------------------------------------------------------
// Invariant evaluation & verdicts
// ---------------------------------------------------------------------

/// One invariant's evaluation against one cell's counts.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct InvariantVerdict {
    pub name: String,
    /// The scenario's threshold, percent.
    pub threshold: f64,
    /// Point estimate of the governed rate, percent.
    pub observed: f64,
    /// Wilson 95% interval of the governed rate, percent.
    pub lo: f64,
    pub hi: f64,
    pub breached: bool,
    /// True when the invariant had nothing to judge (detector coverage
    /// with zero SDCs); always a pass.
    pub vacuous: bool,
}

/// Evaluate one invariant against a cell's outcome counts (and, for
/// [`Invariant::PredictionSoundness`], its cross-validation report).
pub fn check_invariant(
    inv: Invariant,
    r: &StudyResult,
    soundness: Option<&SoundnessReport>,
) -> InvariantVerdict {
    // Prediction soundness judges a claimed *proof*, not a sampled
    // rate: the misprediction percentage is exact over the verified
    // population, so the interval collapses to the point estimate and
    // a single counterexample breaches a 0.0 threshold. Vacuous when
    // the cell ran without `prune = "verify"` or nothing was predicted
    // benign.
    if let Invariant::PredictionSoundness(t) = inv {
        let (observed, vacuous) = match soundness {
            Some(s) if s.predicted_benign > 0 => (s.misprediction_pct(), false),
            _ => (0.0, true),
        };
        return InvariantVerdict {
            name: inv.name().to_string(),
            threshold: t,
            observed,
            lo: observed,
            hi: observed,
            breached: !vacuous && observed > t,
            vacuous,
        };
    }
    let c = &r.counts;
    let n = c.total();
    let pct = |successes: u64, n: u64| {
        if n == 0 {
            0.0
        } else {
            100.0 * successes as f64 / n as f64
        }
    };
    let (successes, denom, vacuous) = match inv {
        Invariant::SdcRateMax(_) => (c.sdc, n, false),
        Invariant::CrashRateMax(_) => (c.crash, n, false),
        Invariant::BenignFloor(_) => (c.benign, n, false),
        Invariant::DetectorCoverageMin(_) => (c.sdc_detected, c.sdc, c.sdc == 0),
        Invariant::PredictionSoundness(_) => unreachable!("handled above"),
    };
    let (lo, hi) = wilson_interval_95(successes, denom);
    let (lo, hi) = (100.0 * lo, 100.0 * hi);
    let threshold = inv.threshold();
    // *_max bounds breach only when even the optimistic (lower) bound
    // exceeds them; *_min/floor bounds only when even the generous
    // (upper) bound falls short. Sampling noise never fails a cell.
    let breached = if vacuous {
        false
    } else {
        match inv {
            Invariant::SdcRateMax(t) | Invariant::CrashRateMax(t) => lo > t,
            Invariant::DetectorCoverageMin(t) | Invariant::BenignFloor(t) => hi < t,
            Invariant::PredictionSoundness(_) => unreachable!("handled above"),
        }
    };
    InvariantVerdict {
        name: inv.name().to_string(),
        threshold,
        observed: pct(successes, denom),
        lo,
        hi,
        breached,
        vacuous,
    }
}

/// One expanded gauntlet cell with its study result and invariant
/// verdicts.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CellVerdict {
    pub bench: String,
    pub isa: String,
    pub category: String,
    pub model: String,
    /// Content-addressed study key backing this cell.
    pub key: String,
    pub experiments: u64,
    pub sdc: u64,
    pub benign: u64,
    pub crash: u64,
    pub sdc_detected: u64,
    /// SDC point estimate, percent.
    pub sdc_rate: f64,
    /// Whether the ±3 pp stopping rule converged within the campaign cap.
    pub converged: bool,
    pub invariants: Vec<InvariantVerdict>,
}

impl CellVerdict {
    pub fn passed(&self) -> bool {
        self.invariants.iter().all(|i| !i.breached)
    }
}

/// Judge one finished cell against the scenario's invariants. Pass the
/// cell's [`SoundnessReport`] when the scenario ran with
/// `prune = "verify"`; without one, `prediction_soundness` is vacuous.
pub fn cell_verdict(
    spec: &StudySpec,
    key: &str,
    result: &StudyResult,
    invariants: &[Invariant],
    soundness: Option<&SoundnessReport>,
) -> CellVerdict {
    let c = &result.counts;
    let n = c.total();
    CellVerdict {
        bench: spec.bench.clone(),
        isa: spec.isa.clone(),
        category: spec.category.clone(),
        model: spec.model.clone(),
        key: key.to_string(),
        experiments: n,
        sdc: c.sdc,
        benign: c.benign,
        crash: c.crash,
        sdc_detected: c.sdc_detected,
        sdc_rate: if n == 0 {
            0.0
        } else {
            100.0 * c.sdc as f64 / n as f64
        },
        converged: result.converged,
        invariants: invariants
            .iter()
            .map(|inv| check_invariant(*inv, result, soundness))
            .collect(),
    }
}

/// A full gauntlet run's verdicts, in matrix expansion order.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GauntletReport {
    pub scenario: String,
    pub cells: Vec<CellVerdict>,
}

impl GauntletReport {
    pub fn passed(&self) -> bool {
        self.cells.iter().all(CellVerdict::passed)
    }

    pub fn breaches(&self) -> usize {
        self.cells
            .iter()
            .flat_map(|c| &c.invariants)
            .filter(|i| i.breached)
            .count()
    }
}

/// Render the QRES-style verdict table plus one detail line per breach.
pub fn render_verdicts(report: &GauntletReport) -> String {
    let headers = [
        "bench", "isa", "category", "model", "n", "sdc%", "crash%", "verdict",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    for c in &report.cells {
        let verdict = if c.passed() {
            "PASS".to_string()
        } else {
            let names: Vec<&str> = c
                .invariants
                .iter()
                .filter(|i| i.breached)
                .map(|i| i.name.as_str())
                .collect();
            format!("FAIL ({})", names.join(", "))
        };
        rows.push(vec![
            c.bench.clone(),
            c.isa.clone(),
            c.category.clone(),
            c.model.clone(),
            c.experiments.to_string(),
            format!("{:.1}", c.sdc_rate),
            format!(
                "{:.1}",
                if c.experiments == 0 {
                    0.0
                } else {
                    100.0 * c.crash as f64 / c.experiments as f64
                }
            ),
            verdict,
        ]);
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in &rows {
        for (i, cell) in r.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = format!("gauntlet '{}':\n", report.scenario);
    let mut line = String::new();
    for (i, h) in headers.iter().enumerate() {
        line.push_str(&format!("{:w$}  ", h, w = widths[i]));
    }
    out.push_str(line.trim_end());
    out.push('\n');
    for r in &rows {
        let mut line = String::new();
        for (i, cell) in r.iter().enumerate() {
            line.push_str(&format!("{:w$}  ", cell, w = widths[i]));
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    for c in &report.cells {
        for i in c.invariants.iter().filter(|i| i.breached) {
            out.push_str(&format!(
                "breach: {}/{}/{}/{}: {} {} (observed {:.1}%, 95% CI [{:.1}, {:.1}])\n",
                c.bench, c.isa, c.category, c.model, i.name, i.threshold, i.observed, i.lo, i.hi
            ));
        }
    }
    let verdict_word = if report.passed() { "PASS" } else { "FAIL" };
    out.push_str(&format!(
        "{} cells, {} breaches: {}\n",
        report.cells.len(),
        report.breaches(),
        verdict_word
    ));
    out
}

/// Encode a report as JSON (`vulfi gauntlet run --json`).
pub fn render_verdicts_json(report: &GauntletReport) -> Result<String, OrchError> {
    serde_json::to_string_pretty(report)
        .map_err(|e| OrchError(format!("encode gauntlet report: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vir::analysis::SiteCategory;
    use vulfi::{OutcomeCounts, StudySummary};

    const SMOKE: &str = r#"
# A comment with a "quote" and an = sign.
name = "smoke" # trailing comment
models = ["single-bit-flip", "multi-bit-burst:2"]
isas = ["avx", "sse"]
benches = ["vector sum"]
categories = ["pure-data"]
experiments = 10
campaigns = 4
seed = 7
shard_size = 5
detectors = true

[invariants]
crash_rate_max = 60.0
benign_floor = 1.0
"#;

    fn result(sdc: u64, benign: u64, crash: u64, sdc_detected: u64) -> StudyResult {
        StudyResult {
            category: SiteCategory::PureData,
            samples: vec![],
            summary: StudySummary::from_samples(&[0.0]),
            counts: OutcomeCounts {
                sdc,
                benign,
                crash,
                sdc_detected,
                detected: sdc_detected,
            },
            converged: true,
        }
    }

    #[test]
    fn toml_scenario_parses_and_expands_in_order() {
        let s = parse_scenario(SMOKE).unwrap();
        assert_eq!(s.name, "smoke");
        assert_eq!(s.models.len(), 2);
        assert_eq!(s.seed, 7);
        assert!(s.detectors);
        assert_eq!(s.invariants.len(), 2);

        let cells = s.expand();
        assert_eq!(cells.len(), 4, "2 models × 1 bench × 1 category × 2 isas");
        // Models vary slowest, ISAs fastest.
        assert_eq!(cells[0].model, "single-bit-flip");
        assert_eq!(cells[0].isa, "avx");
        assert_eq!(cells[1].isa, "sse");
        assert_eq!(cells[2].model, "multi-bit-burst:2");
        for c in &cells {
            assert_eq!(c.experiments, 10);
            assert_eq!(c.shard_size, 5);
            c.validate().unwrap();
        }
    }

    #[test]
    fn json_scenario_accepted() {
        let s = parse_scenario(
            r#"{"name": "j", "benches": ["vector sum"], "models": ["memory-cell"],
                "invariants": {"sdc_rate_max": 99.0}}"#,
        )
        .unwrap();
        assert_eq!(s.models, vec!["memory-cell".to_string()]);
        assert_eq!(s.invariants, vec![Invariant::SdcRateMax(99.0)]);
        // Unlisted axes fall back to defaults.
        assert_eq!(s.isas, vec!["avx".to_string()]);
    }

    #[test]
    fn unknown_fields_and_bad_values_are_loud() {
        let e = parse_scenario("name = \"x\"\nbenches = [\"vector sum\"]\nexpermients = 3\n")
            .unwrap_err();
        assert!(e.contains("expermients"), "{e}");

        let e = parse_scenario(
            "name = \"x\"\nbenches = [\"vector sum\"]\n[invariants]\nsdc_max = 5.0\n",
        )
        .unwrap_err();
        assert!(e.contains("sdc_max") && e.contains("sdc_rate_max"), "{e}");

        let e =
            parse_scenario("name = \"x\"\nbenches = [\"vector sum\"]\nmodels = [\"warp-core\"]\n")
                .unwrap_err();
        assert!(e.contains("warp-core"), "{e}");

        let e = parse_scenario("name = \"x\"\nbenches = []\n").unwrap_err();
        assert!(e.contains("benches"), "{e}");

        assert!(parse_toml("key value\n").is_err());
        assert!(parse_toml("[unterminated\n").is_err());
        assert!(parse_toml("a = 1\na = 2\n").is_err());
        assert!(parse_toml("a = [1, [2]]\n").is_err());
        assert!(parse_toml("a = \"unterminated\n").is_err());
    }

    #[test]
    fn prune_field_parses_validates_and_expands() {
        let s = parse_scenario(
            "name = \"p\"\nbenches = [\"vector sum\"]\nprune = \"on\"\n\
             [invariants]\nsdc_rate_max = 99.0\n",
        )
        .unwrap();
        assert_eq!(s.prune, "on");
        assert!(
            s.expand().iter().all(|c| c.prune),
            "prune=on marks every cell"
        );

        let s = parse_scenario("name = \"p\"\nbenches = [\"vector sum\"]\nprune = \"verify\"\n")
            .unwrap();
        // verify runs full studies: the expanded specs are unpruned (and
        // keep the unpruned study key); cross-validation is post-hoc.
        assert!(s.expand().iter().all(|c| !c.prune));

        // Default stays off, so pre-existing scenarios parse unchanged.
        let s = parse_scenario(SMOKE).unwrap();
        assert_eq!(s.prune, "off");

        let e = parse_scenario("name = \"p\"\nbenches = [\"vector sum\"]\nprune = \"maybe\"\n")
            .unwrap_err();
        assert!(e.contains("maybe") && e.contains("verify"), "{e}");

        let e = parse_scenario(
            "name = \"p\"\nbenches = [\"vector sum\"]\nprune = \"on\"\n\
             models = [\"multi-bit-burst:2\"]\n",
        )
        .unwrap_err();
        assert!(e.contains("single-bit-flip"), "{e}");

        let e = parse_scenario(
            "name = \"p\"\nbenches = [\"vector sum\"]\n[invariants]\nprediction_soundnes = 1.0\n",
        )
        .unwrap_err();
        assert!(e.contains("prediction_soundness"), "{e}");
    }

    #[test]
    fn prediction_soundness_is_exact_not_wilson() {
        let r = result(0, 100, 0, 0);
        let sound = vulfi::SoundnessReport {
            checked: 80,
            predicted_benign: 20,
            violations: vec![],
        };
        let v = check_invariant(Invariant::PredictionSoundness(0.0), &r, Some(&sound));
        assert!(!v.breached && !v.vacuous, "{v:?}");
        assert_eq!(v.observed, 0.0);

        // One violation out of 20 predictions = 5% — with a Wilson
        // interval a single counterexample could hide inside the CI;
        // exactness means it breaches a 0.0 threshold outright.
        let unsound = vulfi::SoundnessReport {
            checked: 80,
            predicted_benign: 20,
            violations: vec![vulfi::SoundnessViolation {
                site_id: 3,
                lane: 1,
                flip_mask: 0x80,
                outcome: vulfi::Outcome::Sdc,
                detected: false,
            }],
        };
        let v = check_invariant(Invariant::PredictionSoundness(0.0), &r, Some(&unsound));
        assert!(v.breached, "{v:?}");
        assert_eq!(v.observed, 5.0);
        assert_eq!((v.lo, v.hi), (5.0, 5.0), "no interval widening");
        // A generous threshold tolerates it.
        let v = check_invariant(Invariant::PredictionSoundness(10.0), &r, Some(&unsound));
        assert!(!v.breached, "{v:?}");

        // No soundness data (cell did not run with prune=verify) or an
        // empty predicted-benign population → vacuous pass.
        let v = check_invariant(Invariant::PredictionSoundness(0.0), &r, None);
        assert!(v.vacuous && !v.breached, "{v:?}");
        let empty = vulfi::SoundnessReport {
            checked: 10,
            predicted_benign: 0,
            violations: vec![],
        };
        let v = check_invariant(Invariant::PredictionSoundness(0.0), &r, Some(&empty));
        assert!(v.vacuous && !v.breached, "{v:?}");
    }

    #[test]
    fn invariants_are_wilson_aware() {
        // 50/100 SDCs: the 95% interval is roughly [40.4, 59.6].
        let r = result(50, 40, 10, 0);
        let v = check_invariant(Invariant::SdcRateMax(45.0), &r, None);
        assert!(
            !v.breached,
            "point estimate above the threshold is not a breach while the \
             interval still straddles it: {v:?}"
        );
        let v = check_invariant(Invariant::SdcRateMax(40.0), &r, None);
        assert!(v.breached, "{v:?}");
        assert!(v.lo > 40.0 && v.lo < 41.0, "{v:?}");
        assert_eq!(v.observed, 50.0);

        // 0/100 benign: upper bound ≈ 3.7%.
        let r = result(90, 0, 10, 0);
        assert!(check_invariant(Invariant::BenignFloor(5.0), &r, None).breached);
        assert!(!check_invariant(Invariant::BenignFloor(2.0), &r, None).breached);

        // Crash bound works off the crash count.
        let r = result(10, 40, 50, 0);
        assert!(check_invariant(Invariant::CrashRateMax(40.0), &r, None).breached);

        // Detector coverage: 9 of 10 SDCs flagged → CI ≈ [59.6, 98.2].
        let r = result(10, 80, 10, 9);
        assert!(check_invariant(Invariant::DetectorCoverageMin(99.0), &r, None).breached);
        assert!(!check_invariant(Invariant::DetectorCoverageMin(95.0), &r, None).breached);
        // Zero SDCs → vacuous pass no matter the threshold.
        let r = result(0, 100, 0, 0);
        let v = check_invariant(Invariant::DetectorCoverageMin(100.0), &r, None);
        assert!(v.vacuous && !v.breached, "{v:?}");
    }

    #[test]
    fn verdict_table_names_breaches_and_round_trips_json() {
        let spec = StudySpec {
            bench: "vector sum".to_string(),
            ..StudySpec::default()
        };
        let good = cell_verdict(
            &spec,
            "k1",
            &result(5, 90, 5, 0),
            &[Invariant::SdcRateMax(50.0)],
            None,
        );
        let bad = cell_verdict(
            &spec,
            "k2",
            &result(95, 0, 5, 0),
            &[Invariant::SdcRateMax(50.0)],
            None,
        );
        assert!(good.passed());
        assert!(!bad.passed());
        let report = GauntletReport {
            scenario: "t".to_string(),
            cells: vec![good, bad],
        };
        assert!(!report.passed());
        assert_eq!(report.breaches(), 1);
        let text = render_verdicts(&report);
        assert!(text.contains("PASS"), "{text}");
        assert!(text.contains("FAIL (sdc_rate_max)"), "{text}");
        assert!(
            text.contains("breach: vector sum/avx/pure-data/single-bit-flip"),
            "{text}"
        );
        assert!(text.contains("2 cells, 1 breaches: FAIL"), "{text}");

        let json = render_verdicts_json(&report).unwrap();
        let back: GauntletReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn comment_stripping_respects_strings() {
        assert_eq!(strip_comment("a = \"x # y\" # real"), "a = \"x # y\" ");
        assert_eq!(strip_comment("# whole line"), "");
        let v = parse_toml("a = \"x # y\"\n").unwrap();
        assert_eq!(v.get("a").unwrap().as_str().unwrap(), "x # y");
    }
}
