//! Lock-cheap metrics registry aggregated across rayon workers.
//!
//! Every hot-path record is a single relaxed atomic increment — no
//! locks, no allocation — so the registry can sit inside the shard
//! runner and the store's retry loop without perturbing throughput.
//! Label sets are fixed at compile time (the §II-C site categories ×
//! the three outcomes; fixed histogram buckets), which is what makes
//! the lock-free layout possible.
//!
//! Two exports, both rendered from one consistent [`MetricsSnapshot`]:
//!
//! - [`render_prometheus`] — Prometheus text exposition format
//!   (`vulfi_experiments_total{category="pure-data",outcome="sdc"} 42`),
//!   with cumulative histogram buckets and `+Inf`;
//! - [`render_json`] — the same snapshot as JSON, for tooling that
//!   would rather not parse the text format.
//!
//! [`parse_prometheus`] is a minimal exposition-format parser used by
//! the round-trip tests (and available to downstream tooling).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use vir::analysis::SiteCategory;
use vulfi::{FaultModel, Outcome, MODEL_KINDS};

/// Upper bounds (inclusive) for shard-append latency, in nanoseconds:
/// 100µs, 1ms, 10ms, 100ms, 1s, 10s; +Inf implicit.
const LATENCY_BOUNDS_NS: [u64; 6] = [
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// Upper bounds (inclusive) for propagation distance, in dynamic
/// instructions: 1, 10, 100, 1k, 10k, 100k, 1M; +Inf implicit.
const PROPAGATION_BOUNDS: [u64; 7] = [1, 10, 100, 1_000, 10_000, 100_000, 1_000_000];

/// Upper bounds (inclusive) for shard execution time, in nanoseconds:
/// 1ms, 10ms, 100ms, 1s, 10s, 30s; +Inf implicit. Shards are whole
/// experiment batches, so the scale sits well above append latency.
const SHARD_DURATION_BOUNDS_NS: [u64; 6] = [
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
    30_000_000_000,
];

/// Upper bounds (inclusive) for job queue wait, in nanoseconds:
/// 10ms, 100ms, 1s, 10s, 60s, 600s; +Inf implicit.
const QUEUE_WAIT_BOUNDS_NS: [u64; 6] = [
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
    60_000_000_000,
    600_000_000_000,
];

const OUTCOMES: [Outcome; 3] = [Outcome::Sdc, Outcome::Benign, Outcome::Crash];

fn category_index(c: SiteCategory) -> usize {
    SiteCategory::ALL.iter().position(|x| *x == c).unwrap_or(0)
}

fn outcome_index(o: Outcome) -> usize {
    OUTCOMES.iter().position(|x| *x == o).unwrap_or(0)
}

fn outcome_name(o: Outcome) -> &'static str {
    match o {
        Outcome::Sdc => "sdc",
        Outcome::Benign => "benign",
        Outcome::Crash => "crash",
    }
}

/// Fixed-bucket histogram over `u64` observations. One atomic add per
/// observation; bucket counts are per-bucket (cumulated only at render
/// time, as the Prometheus exposition requires).
struct Histogram {
    bounds: &'static [u64],
    /// `bounds.len() + 1` buckets; the last is the +Inf overflow.
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
}

impl Histogram {
    fn new(bounds: &'static [u64]) -> Histogram {
        Histogram {
            bounds,
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    fn observe(&self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| v <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Snapshot with bounds scaled by `scale` (e.g. ns → seconds).
    fn snapshot(&self, scale: f64) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.iter().map(|b| *b as f64 * scale).collect(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed) as f64 * scale,
        }
    }
}

/// The registry. One process-global instance lives behind
/// [`global`]; tests construct their own.
pub struct Metrics {
    /// `[category][outcome]` experiment counts.
    experiments: [[AtomicU64; 3]; 3],
    /// `[fault-model kind][outcome]` experiment counts (gauntlet cells
    /// running different models share one registry, so per-model rows
    /// are what makes `GET /metrics` show which model is progressing).
    by_model: [[AtomicU64; 3]; 7],
    shard_appends: AtomicU64,
    engine_faults: AtomicU64,
    store_retries: AtomicU64,
    append_latency: Histogram,
    /// Per-category propagation-distance histograms.
    propagation: [Histogram; 3],
    /// Whole-shard execution time (lease → durable append).
    shard_duration: Histogram,
    /// Submit → start wait of served jobs.
    queue_wait: Histogram,
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics::new()
    }
}

impl Metrics {
    pub fn new() -> Metrics {
        Metrics {
            experiments: Default::default(),
            by_model: Default::default(),
            shard_appends: AtomicU64::new(0),
            engine_faults: AtomicU64::new(0),
            store_retries: AtomicU64::new(0),
            append_latency: Histogram::new(&LATENCY_BOUNDS_NS),
            propagation: [
                Histogram::new(&PROPAGATION_BOUNDS),
                Histogram::new(&PROPAGATION_BOUNDS),
                Histogram::new(&PROPAGATION_BOUNDS),
            ],
            shard_duration: Histogram::new(&SHARD_DURATION_BOUNDS_NS),
            queue_wait: Histogram::new(&QUEUE_WAIT_BOUNDS_NS),
        }
    }

    /// Count one finished experiment of `category` with `outcome`.
    pub fn inc_experiment(&self, category: SiteCategory, outcome: Outcome) {
        self.experiments[category_index(category)][outcome_index(outcome)]
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Count one finished experiment under `model` with `outcome`.
    pub fn inc_experiment_model(&self, model: FaultModel, outcome: Outcome) {
        self.by_model[model.kind_index()][outcome_index(outcome)].fetch_add(1, Ordering::Relaxed);
    }

    /// Count one shard append and record its latency.
    pub fn observe_shard_append(&self, latency_ns: u64) {
        self.shard_appends.fetch_add(1, Ordering::Relaxed);
        self.append_latency.observe(latency_ns);
    }

    /// Count engine faults (panics contained by the experiment runner).
    pub fn add_engine_faults(&self, n: u64) {
        self.engine_faults.fetch_add(n, Ordering::Relaxed);
    }

    /// Count one retried store I/O operation.
    pub fn inc_store_retries(&self) {
        self.store_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one fault's propagation distance, in dynamic instructions.
    pub fn observe_propagation(&self, category: SiteCategory, distance: u64) {
        self.propagation[category_index(category)].observe(distance);
    }

    /// Record one whole shard's execution time.
    pub fn observe_shard_duration(&self, duration_ns: u64) {
        self.shard_duration.observe(duration_ns);
    }

    /// Record one served job's submit → start queue wait.
    pub fn observe_queue_wait(&self, wait_ns: u64) {
        self.queue_wait.observe(wait_ns);
    }

    /// A consistent-enough copy of every series (individual loads are
    /// relaxed; exactness across concurrent writers is not required for
    /// monitoring output).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut experiments = Vec::new();
        for (ci, cat) in SiteCategory::ALL.iter().enumerate() {
            for (oi, out) in OUTCOMES.iter().enumerate() {
                experiments.push(ExperimentCell {
                    category: cat.name().to_string(),
                    outcome: outcome_name(*out).to_string(),
                    count: self.experiments[ci][oi].load(Ordering::Relaxed),
                });
            }
        }
        let mut by_model = Vec::new();
        for (mi, kind) in MODEL_KINDS.iter().enumerate() {
            for (oi, out) in OUTCOMES.iter().enumerate() {
                by_model.push(ModelCell {
                    model: kind.to_string(),
                    outcome: outcome_name(*out).to_string(),
                    count: self.by_model[mi][oi].load(Ordering::Relaxed),
                });
            }
        }
        MetricsSnapshot {
            experiments,
            by_model,
            shard_appends: self.shard_appends.load(Ordering::Relaxed),
            engine_faults: self.engine_faults.load(Ordering::Relaxed),
            store_retries: self.store_retries.load(Ordering::Relaxed),
            append_latency_seconds: self.append_latency.snapshot(1e-9),
            shard_duration_seconds: self.shard_duration.snapshot(1e-9),
            queue_wait_seconds: self.queue_wait.snapshot(1e-9),
            propagation_insts: SiteCategory::ALL
                .iter()
                .enumerate()
                .map(|(ci, cat)| CategoryHistogram {
                    category: cat.name().to_string(),
                    histogram: self.propagation[ci].snapshot(1.0),
                })
                .collect(),
        }
    }
}

/// The process-global registry shared by the shard runner, the store's
/// retry loop, and the CLI exporter.
pub fn global() -> &'static Metrics {
    static GLOBAL: OnceLock<Metrics> = OnceLock::new();
    GLOBAL.get_or_init(Metrics::new)
}

/// Point-in-time copy of one histogram. `counts` has one more entry
/// than `bounds`: the final +Inf overflow bucket.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HistogramSnapshot {
    pub bounds: Vec<f64>,
    pub counts: Vec<u64>,
    pub sum: f64,
}

impl HistogramSnapshot {
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ExperimentCell {
    pub category: String,
    pub outcome: String,
    pub count: u64,
}

/// One `model × outcome` experiment-count cell.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ModelCell {
    pub model: String,
    pub outcome: String,
    pub count: u64,
}

#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CategoryHistogram {
    pub category: String,
    pub histogram: HistogramSnapshot,
}

/// Point-in-time copy of every series in the registry.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MetricsSnapshot {
    pub experiments: Vec<ExperimentCell>,
    /// Per-fault-model outcome counts (all seven kinds, zeros included,
    /// so series never appear or vanish between scrapes).
    pub by_model: Vec<ModelCell>,
    pub shard_appends: u64,
    pub engine_faults: u64,
    pub store_retries: u64,
    pub append_latency_seconds: HistogramSnapshot,
    pub shard_duration_seconds: HistogramSnapshot,
    pub queue_wait_seconds: HistogramSnapshot,
    pub propagation_insts: Vec<CategoryHistogram>,
}

impl MetricsSnapshot {
    /// Total experiments across every category × outcome cell.
    pub fn experiments_total(&self) -> u64 {
        self.experiments.iter().map(|c| c.count).sum()
    }
}

/// Format a bucket bound the way Prometheus clients expect (no
/// trailing zeros beyond what `{}` prints; `+Inf` handled by caller).
fn fmt_bound(b: f64) -> String {
    format!("{b}")
}

fn push_histogram(out: &mut String, name: &str, labels: &str, h: &HistogramSnapshot) {
    let mut cumulative = 0u64;
    for (i, c) in h.counts.iter().enumerate() {
        cumulative += c;
        let le = if i < h.bounds.len() {
            fmt_bound(h.bounds[i])
        } else {
            "+Inf".to_string()
        };
        let sep = if labels.is_empty() { "" } else { "," };
        out.push_str(&format!(
            "{name}_bucket{{{labels}{sep}le=\"{le}\"}} {cumulative}\n"
        ));
    }
    let brace = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    };
    out.push_str(&format!("{name}_sum{brace} {}\n", h.sum));
    out.push_str(&format!("{name}_count{brace} {cumulative}\n"));
}

/// Render a snapshot in the Prometheus text exposition format.
pub fn render_prometheus(s: &MetricsSnapshot) -> String {
    let mut out = String::new();
    out.push_str("# TYPE vulfi_experiments_total counter\n");
    for cell in &s.experiments {
        out.push_str(&format!(
            "vulfi_experiments_total{{category=\"{}\",outcome=\"{}\"}} {}\n",
            cell.category, cell.outcome, cell.count
        ));
    }
    out.push_str("# TYPE vulfi_experiments_by_model_total counter\n");
    for cell in &s.by_model {
        out.push_str(&format!(
            "vulfi_experiments_by_model_total{{model=\"{}\",outcome=\"{}\"}} {}\n",
            cell.model, cell.outcome, cell.count
        ));
    }
    out.push_str("# TYPE vulfi_shard_appends_total counter\n");
    out.push_str(&format!("vulfi_shard_appends_total {}\n", s.shard_appends));
    out.push_str("# TYPE vulfi_engine_faults_total counter\n");
    out.push_str(&format!("vulfi_engine_faults_total {}\n", s.engine_faults));
    out.push_str("# TYPE vulfi_store_retries_total counter\n");
    out.push_str(&format!("vulfi_store_retries_total {}\n", s.store_retries));
    out.push_str("# TYPE vulfi_shard_append_latency_seconds histogram\n");
    push_histogram(
        &mut out,
        "vulfi_shard_append_latency_seconds",
        "",
        &s.append_latency_seconds,
    );
    out.push_str("# TYPE vulfi_shard_duration_seconds histogram\n");
    push_histogram(
        &mut out,
        "vulfi_shard_duration_seconds",
        "",
        &s.shard_duration_seconds,
    );
    out.push_str("# TYPE vulfi_queue_wait_seconds histogram\n");
    push_histogram(
        &mut out,
        "vulfi_queue_wait_seconds",
        "",
        &s.queue_wait_seconds,
    );
    out.push_str("# TYPE vulfi_propagation_distance_insts histogram\n");
    for ch in &s.propagation_insts {
        push_histogram(
            &mut out,
            "vulfi_propagation_distance_insts",
            &format!("category=\"{}\"", ch.category),
            &ch.histogram,
        );
    }
    out
}

/// Render a snapshot as JSON.
pub fn render_json(s: &MetricsSnapshot) -> Result<String, crate::OrchError> {
    serde_json::to_string_pretty(s).map_err(|e| crate::OrchError(format!("encode metrics: {e}")))
}

/// One sample parsed from the Prometheus text format.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    pub name: String,
    /// Sorted `(label, value)` pairs.
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

impl PromSample {
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Minimal parser for the Prometheus text exposition format: enough to
/// round-trip everything [`render_prometheus`] emits (names, label
/// sets, `+Inf`, float values). Comment (`#`) and blank lines are
/// skipped; anything else malformed is an error.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |m: &str| format!("line {}: {m}: {raw:?}", lineno + 1);
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| err("expected `series value`"))?;
        let value = if value == "+Inf" {
            f64::INFINITY
        } else {
            value.parse::<f64>().map_err(|_| err("bad value"))?
        };
        let (name, labels) = match series.split_once('{') {
            None => (series.to_string(), Vec::new()),
            Some((name, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or_else(|| err("unterminated label set"))?;
                let mut labels = Vec::new();
                for pair in body.split(',').filter(|p| !p.is_empty()) {
                    let (k, v) = pair.split_once('=').ok_or_else(|| err("bad label pair"))?;
                    let v = v
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| err("unquoted label value"))?;
                    labels.push((k.trim().to_string(), v.to_string()));
                }
                labels.sort();
                (name.to_string(), labels)
            }
        };
        samples.push(PromSample {
            name,
            labels,
            value,
        });
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find<'a>(samples: &'a [PromSample], name: &str, labels: &[(&str, &str)]) -> &'a PromSample {
        samples
            .iter()
            .find(|s| {
                s.name == name
                    && labels.iter().all(|(k, v)| s.label(k) == Some(*v))
                    && s.labels.len() == labels.len()
            })
            .unwrap_or_else(|| panic!("no sample {name} {labels:?}"))
    }

    #[test]
    fn counters_and_histograms_land_in_snapshot() {
        let m = Metrics::new();
        m.inc_experiment(SiteCategory::PureData, Outcome::Sdc);
        m.inc_experiment(SiteCategory::PureData, Outcome::Sdc);
        m.inc_experiment(SiteCategory::Control, Outcome::Crash);
        m.observe_shard_append(2_000_000); // 2 ms → second bucket boundary region
        m.add_engine_faults(3);
        m.inc_store_retries();
        m.observe_propagation(SiteCategory::PureData, 5);
        m.observe_propagation(SiteCategory::PureData, 50_000_000); // +Inf bucket

        let s = m.snapshot();
        assert_eq!(s.experiments_total(), 3);
        let sdc = s
            .experiments
            .iter()
            .find(|c| c.category == "pure-data" && c.outcome == "sdc")
            .unwrap();
        assert_eq!(sdc.count, 2);
        assert_eq!(s.shard_appends, 1);
        assert_eq!(s.engine_faults, 3);
        assert_eq!(s.store_retries, 1);
        assert_eq!(s.append_latency_seconds.count(), 1);
        let pd = &s.propagation_insts[0];
        assert_eq!(pd.category, "pure-data");
        assert_eq!(pd.histogram.count(), 2);
        // 5 lands in the `le=10` bucket (index 1); the huge value in +Inf.
        assert_eq!(pd.histogram.counts[1], 1);
        assert_eq!(*pd.histogram.counts.last().unwrap(), 1);
        assert_eq!(pd.histogram.sum, 50_000_005.0);
    }

    #[test]
    fn per_model_counters_label_by_kind() {
        let m = Metrics::new();
        m.inc_experiment_model(FaultModel::SingleBitFlip, Outcome::Sdc);
        m.inc_experiment_model(FaultModel::MultiBitBurst { width: 4 }, Outcome::Crash);
        m.inc_experiment_model(FaultModel::MultiBitBurst { width: 2 }, Outcome::Crash);

        let s = m.snapshot();
        // Every kind × outcome cell is present, zeros included.
        assert_eq!(s.by_model.len(), MODEL_KINDS.len() * 3);
        let cell = |model: &str, outcome: &str| {
            s.by_model
                .iter()
                .find(|c| c.model == model && c.outcome == outcome)
                .unwrap()
                .count
        };
        assert_eq!(cell("single-bit-flip", "sdc"), 1);
        // Parameterized variants of one kind share a row.
        assert_eq!(cell("multi-bit-burst", "crash"), 2);
        assert_eq!(cell("memory-cell", "benign"), 0);

        let samples = parse_prometheus(&render_prometheus(&s)).unwrap();
        let p = find(
            &samples,
            "vulfi_experiments_by_model_total",
            &[("model", "multi-bit-burst"), ("outcome", "crash")],
        );
        assert_eq!(p.value, 2.0);
    }

    #[test]
    fn histogram_buckets_are_inclusive_upper_bounds() {
        let h = Histogram::new(&PROPAGATION_BOUNDS);
        h.observe(10); // exactly on a bound → that bucket
        h.observe(11); // just past → next bucket
        let s = h.snapshot(1.0);
        assert_eq!(s.counts[1], 1);
        assert_eq!(s.counts[2], 1);
    }

    #[test]
    fn prometheus_text_round_trips_through_parser() {
        let m = Metrics::new();
        m.inc_experiment(SiteCategory::PureData, Outcome::Sdc);
        m.inc_experiment(SiteCategory::Address, Outcome::Benign);
        m.observe_shard_append(500_000);
        m.observe_shard_append(3_000_000_000); // 3 s
        m.inc_store_retries();
        m.observe_propagation(SiteCategory::Control, 123);
        m.observe_shard_duration(5_000_000_000); // 5 s shard
        m.observe_queue_wait(50_000_000); // 50 ms wait

        let snap = m.snapshot();
        let text = render_prometheus(&snap);
        let samples = parse_prometheus(&text).unwrap();

        // Counters round-trip exactly.
        let c = find(
            &samples,
            "vulfi_experiments_total",
            &[("category", "pure-data"), ("outcome", "sdc")],
        );
        assert_eq!(c.value, 1.0);
        let c = find(&samples, "vulfi_store_retries_total", &[]);
        assert_eq!(c.value, 1.0);

        // Histogram: buckets are cumulative, +Inf equals _count, _sum in
        // seconds.
        let inf = find(
            &samples,
            "vulfi_shard_append_latency_seconds_bucket",
            &[("le", "+Inf")],
        );
        assert_eq!(inf.value, 2.0);
        let count = find(&samples, "vulfi_shard_append_latency_seconds_count", &[]);
        assert_eq!(count.value, 2.0);
        let sum = find(&samples, "vulfi_shard_append_latency_seconds_sum", &[]);
        assert!((sum.value - 3.0005).abs() < 1e-9, "{}", sum.value);
        // The 3 s observation exceeds the 1 s bound but not 10 s.
        let b1s = find(
            &samples,
            "vulfi_shard_append_latency_seconds_bucket",
            &[("le", "1")],
        );
        assert_eq!(b1s.value, 1.0);

        // The 5 s shard exceeds the 1 s bound but not 10 s; the 50 ms
        // wait lands under 100 ms.
        let d = find(
            &samples,
            "vulfi_shard_duration_seconds_bucket",
            &[("le", "10")],
        );
        assert_eq!(d.value, 1.0);
        let d = find(
            &samples,
            "vulfi_shard_duration_seconds_bucket",
            &[("le", "1")],
        );
        assert_eq!(d.value, 0.0);
        let w = find(
            &samples,
            "vulfi_queue_wait_seconds_bucket",
            &[("le", "0.1")],
        );
        assert_eq!(w.value, 1.0);
        let w = find(&samples, "vulfi_queue_wait_seconds_count", &[]);
        assert_eq!(w.value, 1.0);

        // Per-category propagation histogram carries its label through.
        let p = find(
            &samples,
            "vulfi_propagation_distance_insts_count",
            &[("category", "control")],
        );
        assert_eq!(p.value, 1.0);

        // Every non-comment line parsed (nothing silently skipped).
        let expected = text
            .lines()
            .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
            .count();
        assert_eq!(samples.len(), expected);
    }

    #[test]
    fn json_render_parses_back() {
        let m = Metrics::new();
        m.inc_experiment(SiteCategory::Control, Outcome::Crash);
        let snap = m.snapshot();
        let json = render_json(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_prometheus("metric_no_value\n").is_err());
        assert!(parse_prometheus("m{unterminated 1\n").is_err());
        assert!(parse_prometheus("m{k=unquoted} 1\n").is_err());
        assert!(parse_prometheus("m nanvalue\n").is_err());
    }
}
