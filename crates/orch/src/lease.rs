//! Shard leasing: hand contiguous experiment ranges to workers, reclaim
//! them from workers that die.
//!
//! A [`LeaseBoard`] is built from the missing jobs of one study (the
//! output of [`crate::missing_jobs`]) and hands each [`ShardJob`] to at
//! most one live worker at a time. A worker that finishes calls
//! [`LeaseBoard::complete`]; one that errors calls
//! [`LeaseBoard::abandon`] so the shard is immediately re-queued; one
//! that silently dies is caught by TTL expiry — [`LeaseBoard::reap`]
//! moves every lease past its deadline back to the pending queue.
//!
//! Correctness does not depend on leases at all: every experiment's RNG
//! derives from its `(campaign, index)` coordinates, so a shard that
//! runs twice (original lessee resurfacing after its lease was reaped
//! and re-run) produces byte-identical records, and the store's
//! last-write-wins merge is unaffected. Leasing is purely an efficiency
//! device — it keeps workers off each other's shards in the common case.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use crate::plan::ShardJob;

/// An outstanding lease: which worker holds which shard, until when.
#[derive(Debug, Clone)]
pub struct Lease {
    pub job: ShardJob,
    pub worker: String,
    pub deadline: Instant,
}

/// Lease lifecycle counters (monotonic over the board's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeaseStats {
    pub granted: u64,
    pub completed: u64,
    pub abandoned: u64,
    /// Leases reclaimed by TTL expiry (dead or wedged workers).
    pub expired: u64,
}

/// The shard scheduler for one in-flight study.
#[derive(Debug)]
pub struct LeaseBoard {
    pending: VecDeque<ShardJob>,
    outstanding: Vec<Lease>,
    ttl: Duration,
    stats: LeaseStats,
}

impl LeaseBoard {
    /// A board over `jobs`, granting leases valid for `ttl`.
    pub fn new(jobs: Vec<ShardJob>, ttl: Duration) -> LeaseBoard {
        LeaseBoard {
            pending: jobs.into(),
            outstanding: Vec::new(),
            ttl,
            stats: LeaseStats::default(),
        }
    }

    /// Grant the next pending shard to `worker`, or `None` when nothing
    /// is pending (there may still be outstanding leases — see
    /// [`LeaseBoard::drained`]).
    pub fn lease(&mut self, worker: &str) -> Option<ShardJob> {
        self.reap();
        let job = self.pending.pop_front()?;
        self.outstanding.push(Lease {
            job,
            worker: worker.to_string(),
            deadline: Instant::now() + self.ttl,
        });
        self.stats.granted += 1;
        Some(job)
    }

    /// `worker` finished `job` and durably appended its record. A stale
    /// completion — the lease was already reaped and granted to someone
    /// else — is a no-op: the resurfacing worker no longer owns the
    /// shard (its duplicate append is harmless by determinism).
    pub fn complete(&mut self, worker: &str, job: ShardJob) {
        if self.take_outstanding(worker, job) {
            self.stats.completed += 1;
        }
    }

    /// `worker` failed on `job`; re-queue it for someone else.
    pub fn abandon(&mut self, worker: &str, job: ShardJob) {
        if self.take_outstanding(worker, job) {
            self.stats.abandoned += 1;
            self.pending.push_back(job);
        }
    }

    /// Reclaim every lease past its deadline (dead workers), re-queuing
    /// the shards. Returns how many were reclaimed.
    pub fn reap(&mut self) -> usize {
        let now = Instant::now();
        let mut reclaimed = 0;
        let mut i = 0;
        while i < self.outstanding.len() {
            if self.outstanding[i].deadline <= now {
                let lease = self.outstanding.swap_remove(i);
                self.pending.push_back(lease.job);
                self.stats.expired += 1;
                reclaimed += 1;
            } else {
                i += 1;
            }
        }
        reclaimed
    }

    /// Nothing pending and nothing outstanding: every shard completed.
    pub fn drained(&self) -> bool {
        self.pending.is_empty() && self.outstanding.is_empty()
    }

    /// Nothing pending right now (workers should wait for stragglers or
    /// lease expiry rather than spin).
    pub fn idle(&self) -> bool {
        self.pending.is_empty()
    }

    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    pub fn stats(&self) -> LeaseStats {
        self.stats
    }

    fn take_outstanding(&mut self, worker: &str, job: ShardJob) -> bool {
        match self
            .outstanding
            .iter()
            .position(|l| l.job == job && l.worker == worker)
        {
            Some(i) => {
                self.outstanding.swap_remove(i);
                true
            }
            // A lease that was already reaped (slow worker resurfacing):
            // the job is pending again or owned by a new lessee; either
            // way this worker no longer holds it.
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs(n: usize) -> Vec<ShardJob> {
        (0..n)
            .map(|i| ShardJob {
                campaign: 0,
                start: i * 10,
                end: (i + 1) * 10,
            })
            .collect()
    }

    #[test]
    fn lease_complete_drains() {
        let mut b = LeaseBoard::new(jobs(3), Duration::from_secs(60));
        let mut held = Vec::new();
        while let Some(j) = b.lease("w1") {
            held.push(j);
        }
        assert_eq!(held.len(), 3);
        assert!(b.idle() && !b.drained());
        for j in held {
            b.complete("w1", j);
        }
        assert!(b.drained());
        let s = b.stats();
        assert_eq!((s.granted, s.completed, s.expired), (3, 3, 0));
    }

    #[test]
    fn abandon_requeues_immediately() {
        let mut b = LeaseBoard::new(jobs(1), Duration::from_secs(60));
        let j = b.lease("w1").unwrap();
        b.abandon("w1", j);
        assert_eq!(b.pending(), 1);
        let again = b.lease("w2").unwrap();
        assert_eq!(again, j);
        b.complete("w2", again);
        assert!(b.drained());
    }

    #[test]
    fn expired_leases_are_reaped_and_rerun() {
        let mut b = LeaseBoard::new(jobs(2), Duration::from_millis(1));
        let j1 = b.lease("doomed").unwrap();
        let _j2 = b.lease("doomed").unwrap();
        assert!(b.idle());
        std::thread::sleep(Duration::from_millis(5));
        // A fresh worker picks the reclaimed shards back up.
        let r1 = b.lease("healthy").unwrap();
        let r2 = b.lease("healthy").unwrap();
        assert_eq!(b.stats().expired, 2);
        b.complete("healthy", r1);
        b.complete("healthy", r2);
        assert!(b.drained());
        // The dead worker's stale completion is a no-op.
        b.complete("doomed", j1);
        assert_eq!(b.stats().completed, 2);
    }

    #[test]
    fn duplicate_completion_after_reap_is_harmless() {
        let mut b = LeaseBoard::new(jobs(1), Duration::from_millis(1));
        let j = b.lease("slow").unwrap();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(b.reap(), 1);
        let j2 = b.lease("fast").unwrap();
        assert_eq!(j, j2);
        // Slow worker resurfaces and "completes" a job it no longer owns.
        b.complete("slow", j);
        assert!(!b.drained(), "fast worker's lease must survive");
        b.complete("fast", j2);
        assert!(b.drained());
    }
}
