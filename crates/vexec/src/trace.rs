//! Execution tracing: the zero-cost-when-off hook layer behind the
//! propagation profiler.
//!
//! The interpreter reports **architectural events** — the points where a
//! program's execution becomes externally observable — to an optional
//! [`TraceSink`]:
//!
//! - every memory store (plain or masked), as `(address, value bits)`;
//! - every conditional-branch decision, as the chosen block;
//! - the entry function's return value.
//!
//! When no sink is installed the hook is a single `Option` test on paths
//! that already do memory or control work, and the interpreter's results
//! are bit-identical to an untraced run: the sink only *observes*.
//!
//! [`DivergenceTracer`] is the sink the fault-injection campaign uses: a
//! golden run records the event stream as a sequence of hashes; the
//! faulty run replays against it and notes the first mismatch — the
//! **first architectural divergence**, whose distance from the injection
//! point is the paper-style propagation profile.

/// One architectural event, reported as it retires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A store retired: `bits` folds every written lane (and, for masked
    /// stores, which lanes were active).
    Store { addr: u64, bits: u64 },
    /// A conditional branch chose `block`.
    Branch { block: u32 },
    /// The entry function returned `bits` (folded lanes; 0 for void).
    Ret { bits: u64 },
}

impl TraceEvent {
    /// Stable 64-bit fingerprint of the event (FNV-1a over tag+payload).
    pub fn fingerprint(self) -> u64 {
        let (tag, a, b) = match self {
            TraceEvent::Store { addr, bits } => (1u64, addr, bits),
            TraceEvent::Branch { block } => (2u64, block as u64, 0),
            TraceEvent::Ret { bits } => (3u64, bits, 0),
        };
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for word in [tag, a, b] {
            for byte in word.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x1_0000_01b3);
            }
        }
        h
    }
}

/// Observer of architectural events. Implementations must not affect
/// execution — the interpreter's behaviour is identical with any sink
/// (or none) installed.
pub trait TraceSink {
    /// Called as each architectural event retires. `dyn_index` is the
    /// dynamic instruction count at the event.
    fn event(&mut self, dyn_index: u64, ev: TraceEvent);
}

/// Fold a sequence of lane bit patterns into one 64-bit value (order
/// sensitive), used to summarize vector stores/returns as one event.
pub fn fold_bits(acc: u64, bits: u64) -> u64 {
    // One FNV-1a step per word keeps the fold cheap and well mixed.
    let mut h = acc ^ 0x9e37_79b9_7f4a_7c15;
    for byte in bits.to_le_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// The point where a compared run first left the golden event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Divergence {
    /// Dynamic instruction count at the diverging event.
    pub dyn_index: u64,
    /// Ordinal of the diverging event in this run's event stream.
    pub event_index: u64,
}

enum TracerMode {
    /// Collect the event fingerprint stream (golden run).
    Record,
    /// Replay against a recorded stream, noting the first mismatch
    /// (faulty run).
    Compare { golden: Vec<u64>, cursor: usize },
}

/// A [`TraceSink`] that records a golden run's event stream, then finds
/// where a faulty run first diverges from it.
pub struct DivergenceTracer {
    mode: TracerMode,
    stream: Vec<u64>,
    events: u64,
    divergence: Option<Divergence>,
}

impl DivergenceTracer {
    /// Golden-run mode: record every event fingerprint.
    pub fn record() -> DivergenceTracer {
        DivergenceTracer {
            mode: TracerMode::Record,
            stream: Vec::new(),
            events: 0,
            divergence: None,
        }
    }

    /// Faulty-run mode: compare against `golden` (from
    /// [`DivergenceTracer::into_stream`]).
    pub fn compare(golden: Vec<u64>) -> DivergenceTracer {
        DivergenceTracer {
            mode: TracerMode::Compare { golden, cursor: 0 },
            stream: Vec::new(),
            events: 0,
            divergence: None,
        }
    }

    /// The recorded fingerprint stream (record mode).
    pub fn into_stream(self) -> Vec<u64> {
        self.stream
    }

    /// Events observed so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// First divergence from the golden stream, if any (compare mode).
    ///
    /// A compared run that runs *past* the end of the golden stream, or
    /// ends before consuming all of it, diverged in event count; the
    /// overrun case is caught here, the underrun by
    /// [`DivergenceTracer::finish`].
    pub fn divergence(&self) -> Option<Divergence> {
        self.divergence
    }

    /// Close out a compare-mode run that ended normally: a run that
    /// consumed fewer events than the golden stream diverged by
    /// *omission* at its end. `dyn_index` should be the final dynamic
    /// instruction count.
    pub fn finish(&mut self, dyn_index: u64) {
        if self.divergence.is_some() {
            return;
        }
        if let TracerMode::Compare { golden, cursor } = &self.mode {
            if *cursor < golden.len() {
                self.divergence = Some(Divergence {
                    dyn_index,
                    event_index: self.events,
                });
            }
        }
    }
}

impl TraceSink for DivergenceTracer {
    fn event(&mut self, dyn_index: u64, ev: TraceEvent) {
        let fp = ev.fingerprint();
        self.events += 1;
        match &mut self.mode {
            TracerMode::Record => self.stream.push(fp),
            TracerMode::Compare { golden, cursor } => {
                if self.divergence.is_none() {
                    let matches = golden.get(*cursor) == Some(&fp);
                    *cursor += 1;
                    if !matches {
                        self.divergence = Some(Divergence {
                            dyn_index,
                            event_index: self.events - 1,
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u64) -> TraceEvent {
        TraceEvent::Store { addr: n, bits: n }
    }

    #[test]
    fn identical_streams_do_not_diverge() {
        let mut g = DivergenceTracer::record();
        for i in 0..5 {
            g.event(i * 10, ev(i));
        }
        let stream = g.into_stream();
        assert_eq!(stream.len(), 5);

        let mut c = DivergenceTracer::compare(stream);
        for i in 0..5 {
            c.event(i * 10, ev(i));
        }
        c.finish(50);
        assert_eq!(c.divergence(), None);
    }

    #[test]
    fn first_mismatch_is_reported_once() {
        let mut g = DivergenceTracer::record();
        for i in 0..4 {
            g.event(i, ev(i));
        }
        let mut c = DivergenceTracer::compare(g.into_stream());
        c.event(100, ev(0));
        c.event(101, ev(1));
        c.event(102, ev(99)); // diverges here
        c.event(103, ev(3)); // would match again; must not clear it
        let d = c.divergence().unwrap();
        assert_eq!(d.dyn_index, 102);
        assert_eq!(d.event_index, 2);
    }

    #[test]
    fn extra_events_past_golden_end_diverge() {
        let mut g = DivergenceTracer::record();
        g.event(0, ev(0));
        let mut c = DivergenceTracer::compare(g.into_stream());
        c.event(10, ev(0));
        c.event(20, ev(1)); // golden stream exhausted
        assert_eq!(c.divergence().unwrap().dyn_index, 20);
    }

    #[test]
    fn missing_tail_events_diverge_at_finish() {
        let mut g = DivergenceTracer::record();
        g.event(0, ev(0));
        g.event(1, ev(1));
        let mut c = DivergenceTracer::compare(g.into_stream());
        c.event(10, ev(0));
        assert_eq!(c.divergence(), None, "not yet: run may still catch up");
        c.finish(42);
        let d = c.divergence().unwrap();
        assert_eq!(d.dyn_index, 42);
        assert_eq!(d.event_index, 1);
    }

    #[test]
    fn interp_hooks_observe_without_perturbing() {
        use crate::{Interp, NoHost, RtVal, Scalar};
        let src = r#"
define float @acc(ptr %p, float %x) {
entry:
  %c = fcmp ogt float %x, 0.0
  br i1 %c, label %pos, label %neg
pos:
  store float %x, ptr %p
  br label %done
neg:
  store float 0.0, ptr %p
  br label %done
done:
  %r = load float, ptr %p
  ret float %r
}
"#;
        let m = vir::parser::parse_module(src).unwrap();
        let run = |x: f32, sink: Option<&mut DivergenceTracer>| -> (f32, u64) {
            let mut interp = Interp::new(&m);
            let p = interp.mem.alloc(4).unwrap();
            if let Some(s) = sink {
                interp.set_trace_sink(s);
            }
            let args = [RtVal::Scalar(Scalar::ptr(p)), RtVal::Scalar(Scalar::f32(x))];
            let out = interp.run("acc", &args, &mut NoHost).unwrap();
            (out.ret.unwrap().scalar().as_f32(), out.dyn_insts)
        };

        // Untraced and traced runs agree on result and dynamic count.
        let (r_plain, n_plain) = run(2.5, None);
        let mut golden = DivergenceTracer::record();
        let (r_traced, n_traced) = run(2.5, Some(&mut golden));
        assert_eq!(r_plain, r_traced);
        assert_eq!(n_plain, n_traced);
        // branch + store + ret observed.
        assert_eq!(golden.events(), 3);
        let stream = golden.into_stream();

        // Same input replays cleanly.
        let mut same = DivergenceTracer::compare(stream.clone());
        run(2.5, Some(&mut same));
        same.finish(n_plain);
        assert_eq!(same.divergence(), None);

        // A different input diverges at the branch decision.
        let mut diff = DivergenceTracer::compare(stream);
        run(-1.0, Some(&mut diff));
        diff.finish(n_plain);
        let d = diff.divergence().unwrap();
        assert_eq!(d.event_index, 0, "branch is the first observable event");
    }

    #[test]
    fn fingerprints_separate_kinds_and_payloads() {
        let a = TraceEvent::Store { addr: 1, bits: 2 }.fingerprint();
        let b = TraceEvent::Store { addr: 2, bits: 1 }.fingerprint();
        let c = TraceEvent::Branch { block: 1 }.fingerprint();
        let d = TraceEvent::Ret { bits: 1 }.fingerprint();
        assert_ne!(a, b);
        assert_ne!(c, d);
        assert_ne!(a, c);
    }
}
