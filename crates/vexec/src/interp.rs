//! The VIR interpreter: a virtual vector machine.
//!
//! Executes one module function (plus anything it calls) against the
//! guarded [`Memory`] model. All "crash" conditions of the paper's outcome
//! taxonomy surface as [`Trap`]s: invalid memory references, division by
//! zero, runaway execution (hang budget), unknown calls.
//!
//! Host functions — VULFI's runtime injection API, the detector runtime,
//! and anything else declared but not defined — are dispatched through the
//! [`HostEnv`] trait, mirroring how an instrumented native binary links
//! against the fault-injection runtime library.

use std::time::{Duration, Instant};

use vir::intrinsics::{self, Intrinsic, MathOp};
use vir::{
    BinOp, BlockId, CastOp, FCmpPred, Function, ICmpPred, InstKind, Module, Operand, ScalarTy,
    Terminator, Type, ValueId,
};

use crate::fault::EngineInjector;
use crate::mem::{Memory, Trap};
use crate::profile::{HotLoc, HotProfile, InstMix};
use crate::trace::{fold_bits, TraceEvent, TraceSink};
use crate::value::{RtVal, Scalar};

/// Host-function dispatcher.
pub trait HostEnv {
    /// Handle a call to an external function. Return `Ok(None)` for void
    /// functions. `mem` allows host functions to inspect program memory.
    fn call(&mut self, name: &str, args: &[RtVal], mem: &mut Memory)
        -> Result<Option<RtVal>, Trap>;
}

/// A host environment that rejects every call.
pub struct NoHost;

impl HostEnv for NoHost {
    fn call(&mut self, name: &str, _: &[RtVal], _: &mut Memory) -> Result<Option<RtVal>, Trap> {
        Err(Trap::UnknownFunction(name.to_string()))
    }
}

/// Result of a completed execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecResult {
    pub ret: Option<RtVal>,
    /// Dynamic instruction count (instructions + terminators executed).
    pub dyn_insts: u64,
}

/// Maximum call depth.
const MAX_DEPTH: usize = 64;

/// How many instructions run between wall-clock deadline checks. A power
/// of two so the check compiles to a mask test; large enough that
/// `Instant::now()` never shows up in profiles, small enough that a
/// runaway loop overshoots its deadline by microseconds, not seconds.
const WALL_CHECK_MASK: u64 = (1 << 13) - 1;

/// The interpreter. One instance executes programs from one module.
pub struct Interp<'m> {
    pub module: &'m Module,
    pub mem: Memory,
    budget: u64,
    executed: u64,
    deadline: Option<Instant>,
    mix: Option<InstMix>,
    hot: Option<HotProfile>,
    trace: Option<&'m mut dyn TraceSink>,
    fault: Option<&'m mut EngineInjector>,
}

impl<'m> Interp<'m> {
    pub fn new(module: &'m Module) -> Interp<'m> {
        Interp {
            module,
            mem: Memory::default(),
            budget: u64::MAX / 2,
            executed: 0,
            deadline: None,
            mix: None,
            hot: None,
            trace: None,
            fault: None,
        }
    }

    /// Install an engine-level fault injector (see [`crate::fault`]).
    ///
    /// Value-register fault models never need this; it exists for the
    /// models that corrupt interpreter state the instrumented injection
    /// API cannot reach: mask registers, address operands, and guarded
    /// memory cells. With no injector installed the hooks cost a single
    /// `Option` test, exactly like the trace sink.
    pub fn set_engine_injector(&mut self, inj: &'m mut EngineInjector) {
        self.fault = Some(inj);
    }

    /// Route a guarded-access address through the engine injector.
    fn fault_addr(&mut self, addr: u64) -> u64 {
        match self.fault.as_deref_mut() {
            Some(inj) => inj.on_mem_access(self.executed, addr),
            None => addr,
        }
    }

    /// Route a masked-intrinsic mask register through the engine
    /// injector. `None` when no injector is installed (use the original
    /// mask, avoiding a clone on the default path).
    fn fault_mask(&mut self, mask: &RtVal) -> Option<RtVal> {
        let inj = self.fault.as_deref_mut()?;
        Some(inj.on_mask(self.executed, mask))
    }

    /// Install an architectural-event observer (see [`crate::trace`]).
    ///
    /// The sink only observes; execution, results, and dynamic
    /// instruction counts are bit-identical with or without one. When no
    /// sink is installed the hooks cost a single `Option` test on paths
    /// that already touch memory or control flow.
    pub fn set_trace_sink(&mut self, sink: &'m mut dyn TraceSink) {
        self.trace = Some(sink);
    }

    fn note_event(&mut self, ev: TraceEvent) {
        if let Some(t) = self.trace.as_deref_mut() {
            t.event(self.executed, ev);
        }
    }

    /// Enable dynamic instruction-mix profiling (Table I / Fig. 10 style
    /// dynamic composition). Adds per-instruction bookkeeping cost.
    pub fn enable_profiling(&mut self) {
        self.mix = Some(InstMix::default());
    }

    /// Take the collected profile, if profiling was enabled.
    pub fn take_mix(&mut self) -> Option<InstMix> {
        self.mix.take()
    }

    /// Enable hot-path profiling: per-site dynamic counts with batched
    /// wall-time attribution (see [`HotProfile`]). Independent of
    /// [`Interp::enable_profiling`]; both may be on at once. Like the
    /// mix and the trace sink, the hooks are purely observational —
    /// execution stays bit-identical (property-tested below).
    pub fn enable_hotspots(&mut self) {
        self.hot = Some(HotProfile::default());
    }

    /// Take the collected hotspot profile (trailing partial wall-time
    /// batch flushed), if hotspot profiling was enabled.
    pub fn take_hotspots(&mut self) -> Option<HotProfile> {
        let mut h = self.hot.take()?;
        h.finish();
        Some(h)
    }

    fn note_inst(&mut self, f: &Function, frame: &[Option<RtVal>], iid: vir::InstId) {
        if self.mix.is_none() && self.hot.is_none() {
            return;
        }
        let inst = f.inst(iid);
        if let Some(hot) = &mut self.hot {
            hot.record(
                f as *const Function as usize,
                &f.name,
                HotLoc::Inst(iid.0),
                inst.opcode(),
            );
        }
        if self.mix.is_none() {
            return;
        }
        let width = inst
            .operands()
            .iter()
            .map(|op| f.operand_type(op).lanes())
            .chain(std::iter::once(inst.ty.lanes()))
            .max()
            .unwrap_or(1);
        let is_vec = inst.ty.is_vector()
            || inst
                .operands()
                .iter()
                .any(|op| f.operand_type(op).is_vector());
        if !is_vec {
            self.mix.as_mut().unwrap().record(inst.opcode(), false);
            return;
        }
        // Active-lane count: masked memory ops consult their mask operand
        // and vector selects their condition; everything else executes all
        // lanes. An unevaluable mask (never in verified IR) falls back to
        // full width rather than perturbing execution.
        let active = self
            .active_lanes(f, frame, &inst.kind)
            .unwrap_or(width)
            .min(width);
        self.mix
            .as_mut()
            .unwrap()
            .record_vector_lanes(inst.opcode(), active, width);
    }

    /// How many lanes of a vector instruction are architecturally live,
    /// or `None` when the instruction is unconditionally full-width (or
    /// its mask cannot be read). Purely observational: evaluates already
    /// computed operands, never memory or side effects.
    fn active_lanes(&self, f: &Function, frame: &[Option<RtVal>], kind: &InstKind) -> Option<u32> {
        let count_mask = |op: &Operand, lanes: u32| -> Option<u32> {
            let m = self.eval_operand(f, frame, op).ok()?;
            let n = (lanes as usize).min(m.num_lanes());
            Some((0..n).filter(|&i| m.lane(i).mask_active()).count() as u32)
        };
        match kind {
            InstKind::Call { callee, args } => match intrinsics::parse(callee)? {
                Intrinsic::MaskLoad { lanes, .. } => count_mask(args.get(1)?, lanes),
                Intrinsic::MaskStore { lanes, .. } => count_mask(args.get(1)?, lanes),
                _ => None,
            },
            InstKind::Select { cond, .. } if f.operand_type(cond).is_vector() => {
                // Select semantics test lane bit 0 (see `exec_inst`), not
                // the sign bit the AVX mask convention uses.
                let c = self.eval_operand(f, frame, cond).ok()?;
                Some(c.lanes().iter().filter(|s| s.bits & 1 == 1).count() as u32)
            }
            _ => None,
        }
    }

    fn note_term(&mut self, f: &Function, block: BlockId, opcode: &'static str) {
        if let Some(hot) = &mut self.hot {
            hot.record(
                f as *const Function as usize,
                &f.name,
                HotLoc::Term(block.0),
                opcode,
            );
        }
        if let Some(mix) = &mut self.mix {
            mix.record(opcode, false);
        }
    }

    /// Cap the number of dynamic instructions; exceeding it traps with
    /// [`Trap::HangBudget`]. Campaigns set this from the golden run to
    /// detect fault-induced infinite loops.
    pub fn set_budget(&mut self, budget: u64) {
        self.budget = budget;
    }

    /// Arm the wall-clock watchdog: execution trap with
    /// [`Trap::WallClock`] once `limit` of real time has elapsed
    /// (checked every few thousand instructions). Unlike the instruction
    /// budget this is **not deterministic** — it exists as a last-resort
    /// containment bound for faulted executions whose per-instruction
    /// cost explodes (e.g. allocation churn), and should be set
    /// generously above any plausible honest runtime.
    pub fn set_wall_limit(&mut self, limit: Duration) {
        self.deadline = Some(Instant::now() + limit);
    }

    /// Cap the simulated memory: allocations beyond `bytes` trap with
    /// [`Trap::OutOfMemory`]. Convenience forwarding to
    /// [`Memory::set_limit`].
    pub fn set_memory_limit(&mut self, bytes: u64) {
        self.mem.set_limit(bytes);
    }

    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Execute `func` with `args`.
    pub fn run(
        &mut self,
        func: &str,
        args: &[RtVal],
        host: &mut dyn HostEnv,
    ) -> Result<ExecResult, Trap> {
        let f = self
            .module
            .function(func)
            .ok_or_else(|| Trap::UnknownFunction(func.to_string()))?;
        if f.params.len() != args.len() {
            return Err(Trap::HostError(format!(
                "@{func} expects {} arguments, got {}",
                f.params.len(),
                args.len()
            )));
        }
        let ret = self.call_function(f, args.to_vec(), host, 0)?;
        if self.trace.is_some() {
            let bits = match &ret {
                None => 0,
                Some(v) => v
                    .lanes()
                    .into_iter()
                    .fold(0, |acc, s| fold_bits(acc, s.bits)),
            };
            self.note_event(TraceEvent::Ret { bits });
        }
        Ok(ExecResult {
            ret,
            dyn_insts: self.executed,
        })
    }

    fn tick(&mut self) -> Result<(), Trap> {
        self.executed += 1;
        if self.executed > self.budget {
            return Err(Trap::HangBudget);
        }
        if self.executed & WALL_CHECK_MASK == 0 {
            if let Some(deadline) = self.deadline {
                if Instant::now() >= deadline {
                    return Err(Trap::WallClock);
                }
            }
        }
        if let Some(inj) = self.fault.as_deref_mut() {
            inj.on_step(self.executed, &mut self.mem);
        }
        Ok(())
    }

    fn call_function(
        &mut self,
        f: &'m Function,
        args: Vec<RtVal>,
        host: &mut dyn HostEnv,
        depth: usize,
    ) -> Result<Option<RtVal>, Trap> {
        if depth >= MAX_DEPTH {
            return Err(Trap::StackOverflow);
        }
        if args.len() > f.values.len() {
            return Err(Trap::EngineFault(format!(
                "call to @{} with {} arguments but only {} value slots",
                f.name,
                args.len(),
                f.values.len()
            )));
        }
        let mut frame: Vec<Option<RtVal>> = vec![None; f.values.len()];
        for (i, a) in args.into_iter().enumerate() {
            frame[i] = Some(a);
        }

        let mut cur = f.entry();
        let mut prev: Option<BlockId> = None;
        loop {
            let block = f.block(cur);

            // Phase 1: evaluate all phis against the *incoming* frame.
            let mut phi_updates: Vec<(ValueId, RtVal)> = Vec::new();
            let mut body_start = 0;
            for (k, &iid) in block.insts.iter().enumerate() {
                let inst = f.inst(iid);
                if let InstKind::Phi { incomings } = &inst.kind {
                    self.tick()?;
                    self.note_inst(f, &frame, iid);
                    let pb = prev
                        .ok_or_else(|| Trap::HostError("phi in entry block at runtime".into()))?;
                    let (_, op) = incomings
                        .iter()
                        .find(|(b, _)| *b == pb)
                        .ok_or_else(|| Trap::HostError("phi missing incoming edge".into()))?;
                    let v = self.eval_operand(f, &frame, op)?;
                    let res = inst
                        .result
                        .ok_or_else(|| Trap::EngineFault("phi without a result value".into()))?;
                    phi_updates.push((res, v));
                    body_start = k + 1;
                } else {
                    break;
                }
            }
            for (v, val) in phi_updates {
                frame[v.index()] = Some(val);
            }

            // Phase 2: straight-line body.
            for &iid in &block.insts[body_start..] {
                self.tick()?;
                self.note_inst(f, &frame, iid);
                let inst = f.inst(iid);
                let result = self.exec_inst(f, &frame, &inst.kind, inst.ty, host, depth)?;
                if let Some(res_v) = inst.result {
                    frame[res_v.index()] = Some(result.ok_or_else(|| {
                        Trap::HostError("non-void instruction produced no value".into())
                    })?);
                }
            }

            // Terminator.
            self.tick()?;
            match &block.term {
                Terminator::Br(b) => {
                    self.note_term(f, cur, "br");
                    prev = Some(cur);
                    cur = *b;
                }
                Terminator::CondBr {
                    cond,
                    on_true,
                    on_false,
                } => {
                    self.note_term(f, cur, "condbr");
                    let c = self.eval_operand(f, &frame, cond)?.scalar();
                    prev = Some(cur);
                    cur = if c.is_true() { *on_true } else { *on_false };
                    self.note_event(TraceEvent::Branch { block: cur.0 });
                }
                Terminator::Ret(Some(op)) => {
                    self.note_term(f, cur, "ret");
                    return Ok(Some(self.eval_operand(f, &frame, op)?));
                }
                Terminator::Ret(None) => {
                    self.note_term(f, cur, "ret");
                    return Ok(None);
                }
                Terminator::Unreachable => return Err(Trap::Unreachable),
            }
        }
    }

    fn eval_operand(
        &self,
        _f: &Function,
        frame: &[Option<RtVal>],
        op: &Operand,
    ) -> Result<RtVal, Trap> {
        match op {
            Operand::Const(c) => Ok(RtVal::from_constant(c)),
            Operand::Value(v) => frame[v.index()]
                .clone()
                .ok_or_else(|| Trap::HostError(format!("use of undefined value v{}", v.0))),
        }
    }

    fn exec_inst(
        &mut self,
        f: &'m Function,
        frame: &[Option<RtVal>],
        kind: &InstKind,
        ty: Type,
        host: &mut dyn HostEnv,
        depth: usize,
    ) -> Result<Option<RtVal>, Trap> {
        let ev = |i: &Interp<'m>, op: &Operand| i.eval_operand(f, frame, op);
        match kind {
            InstKind::Bin { op, lhs, rhs } => {
                let a = ev(self, lhs)?;
                let b = ev(self, rhs)?;
                Ok(Some(zip_lanes(&a, &b, |x, y| eval_bin(*op, x, y))?))
            }
            InstKind::ICmp { pred, lhs, rhs } => {
                let a = ev(self, lhs)?;
                let b = ev(self, rhs)?;
                Ok(Some(zip_lanes_to(ScalarTy::I1, &a, &b, |x, y| {
                    Ok(Scalar::i1(eval_icmp(*pred, x, y)))
                })?))
            }
            InstKind::FCmp { pred, lhs, rhs } => {
                let a = ev(self, lhs)?;
                let b = ev(self, rhs)?;
                Ok(Some(zip_lanes_to(ScalarTy::I1, &a, &b, |x, y| {
                    Ok(Scalar::i1(eval_fcmp(*pred, x, y)))
                })?))
            }
            InstKind::Select {
                cond,
                on_true,
                on_false,
            } => {
                let c = ev(self, cond)?;
                let t = ev(self, on_true)?;
                let e = ev(self, on_false)?;
                match c {
                    RtVal::Scalar(s) => Ok(Some(if s.is_true() { t } else { e })),
                    RtVal::Vector(_, lanes) => {
                        if t.num_lanes() < lanes.len() || e.num_lanes() < lanes.len() {
                            return Err(Trap::EngineFault(
                                "select arms narrower than the condition vector".into(),
                            ));
                        }
                        let elem = t.lane(0).ty;
                        let out = lanes.iter().enumerate().map(|(i, &cb)| {
                            if cb & 1 == 1 {
                                t.lane(i)
                            } else {
                                e.lane(i)
                            }
                        });
                        Ok(Some(RtVal::from_lanes(elem, out)))
                    }
                }
            }
            InstKind::Cast { op, val } => {
                let v = ev(self, val)?;
                let to_elem = ty
                    .elem()
                    .ok_or_else(|| Trap::EngineFault("cast to void type".into()))?;
                let out = v
                    .lanes()
                    .into_iter()
                    .map(|s| eval_cast(*op, s, to_elem))
                    .collect::<Vec<_>>();
                Ok(Some(if ty.is_vector() {
                    RtVal::from_lanes(to_elem, out)
                } else {
                    RtVal::Scalar(out[0])
                }))
            }
            InstKind::Alloca { elem, count } => {
                let n = ev(self, count)?.scalar().as_i64();
                if n < 0 {
                    return Err(Trap::OutOfMemory);
                }
                let base = self.mem.alloc(elem.size_bytes() * n as u64)?;
                Ok(Some(RtVal::Scalar(Scalar::ptr(base))))
            }
            InstKind::Load { ptr } => {
                let addr = ev(self, ptr)?.scalar().as_u64();
                let addr = self.fault_addr(addr);
                match ty {
                    Type::Scalar(s) => Ok(Some(RtVal::Scalar(self.mem.read_scalar(s, addr)?))),
                    Type::Vector(s, n) => {
                        let mut lanes = Vec::with_capacity(n as usize);
                        for i in 0..n as u64 {
                            lanes.push(self.mem.read_scalar(s, addr + i * s.bytes())?);
                        }
                        Ok(Some(RtVal::from_lanes(s, lanes)))
                    }
                    Type::Void => Err(Trap::EngineFault("load of void type".into())),
                }
            }
            InstKind::Store { val, ptr } => {
                let v = ev(self, val)?;
                let addr = ev(self, ptr)?.scalar().as_u64();
                let addr = self.fault_addr(addr);
                match &v {
                    RtVal::Scalar(s) => self.mem.write_scalar(addr, *s)?,
                    RtVal::Vector(e, lanes) => {
                        for (i, &b) in lanes.iter().enumerate() {
                            self.mem
                                .write_scalar(addr + i as u64 * e.bytes(), Scalar::new(*e, b))?;
                        }
                    }
                }
                if self.trace.is_some() {
                    let bits = v
                        .lanes()
                        .into_iter()
                        .fold(0, |acc, s| fold_bits(acc, s.bits));
                    self.note_event(TraceEvent::Store { addr, bits });
                }
                Ok(None)
            }
            InstKind::Gep { elem, base, index } => {
                let b = ev(self, base)?.scalar().as_u64();
                let i = ev(self, index)?.scalar().as_i64();
                let addr = b.wrapping_add((elem.size_bytes() as i64).wrapping_mul(i) as u64);
                Ok(Some(RtVal::Scalar(Scalar::ptr(addr))))
            }
            InstKind::ExtractElement { vec, idx } => {
                let v = ev(self, vec)?;
                if v.num_lanes() == 0 {
                    return Err(Trap::EngineFault("extractelement from empty vector".into()));
                }
                let i = ev(self, idx)?.scalar().as_u64() as usize % v.num_lanes();
                Ok(Some(RtVal::Scalar(v.lane(i))))
            }
            InstKind::InsertElement { vec, elt, idx } => {
                let v = ev(self, vec)?;
                if v.num_lanes() == 0 {
                    return Err(Trap::EngineFault("insertelement into empty vector".into()));
                }
                let e = ev(self, elt)?.scalar();
                let i = ev(self, idx)?.scalar().as_u64() as usize % v.num_lanes();
                Ok(Some(v.with_lane(i, e)))
            }
            InstKind::ShuffleVector { a, b, mask } => {
                let va = ev(self, a)?;
                let vb = ev(self, b)?;
                let n = va.num_lanes();
                if n == 0 {
                    return Err(Trap::EngineFault("shufflevector of empty vector".into()));
                }
                let elem = va.lane(0).ty;
                let out: Result<Vec<Scalar>, Trap> = mask
                    .iter()
                    .map(|&mi| {
                        if mi < 0 {
                            Ok(Scalar::new(elem, 0)) // undef lane
                        } else if (mi as usize) < n {
                            Ok(va.lane(mi as usize))
                        } else if (mi as usize) < n + vb.num_lanes() {
                            Ok(vb.lane(mi as usize - n))
                        } else {
                            Err(Trap::EngineFault(format!(
                                "shufflevector mask index {mi} out of range for {} + {} lanes",
                                n,
                                vb.num_lanes()
                            )))
                        }
                    })
                    .collect();
                Ok(Some(RtVal::from_lanes(elem, out?)))
            }
            InstKind::Phi { .. } => Err(Trap::HostError("phi outside block header".into())),
            InstKind::Call { callee, args } => {
                let argv: Vec<RtVal> = args
                    .iter()
                    .map(|a| self.eval_operand(f, frame, a))
                    .collect::<Result<_, _>>()?;
                // Defined function?
                if let Some(callee_f) = self.module.function(callee) {
                    return self.call_function(callee_f, argv, host, depth + 1);
                }
                // Intrinsic?
                if let Some(intr) = intrinsics::parse(callee) {
                    return self.eval_intrinsic(intr, &argv);
                }
                if callee.starts_with("llvm.") {
                    return Err(Trap::UnknownFunction(callee.clone()));
                }
                // Host function. Mirror the dynamic-instruction clock into
                // memory so host environments (e.g. the fault injector)
                // can timestamp their actions without a wider interface.
                self.mem.set_host_clock(self.executed);
                let ret = host.call(callee, &argv, &mut self.mem)?;
                if ret.is_none() && !ty.is_void() {
                    return Err(Trap::HostError(format!(
                        "host @{callee} returned nothing for a non-void call"
                    )));
                }
                Ok(ret)
            }
        }
    }

    fn eval_intrinsic(&mut self, intr: Intrinsic, args: &[RtVal]) -> Result<Option<RtVal>, Trap> {
        let need = |n: usize| -> Result<(), Trap> {
            if args.len() < n {
                Err(Trap::EngineFault(format!(
                    "intrinsic expects {n} arguments, got {}",
                    args.len()
                )))
            } else {
                Ok(())
            }
        };
        match intr {
            Intrinsic::MaskLoad { lanes, elem } => {
                need(2)?;
                let addr = self.fault_addr(args[0].scalar().as_u64());
                let faulted = self.fault_mask(&args[1]);
                let mask = faulted.as_ref().unwrap_or(&args[1]);
                let mut out = Vec::with_capacity(lanes as usize);
                for i in 0..lanes as usize {
                    if mask.lane(i).mask_active() {
                        out.push(self.mem.read_scalar(elem, addr + i as u64 * elem.bytes())?);
                    } else {
                        out.push(Scalar::new(elem, 0));
                    }
                }
                Ok(Some(RtVal::from_lanes(elem, out)))
            }
            Intrinsic::MaskStore { lanes, elem } => {
                need(3)?;
                let addr = self.fault_addr(args[0].scalar().as_u64());
                let faulted = self.fault_mask(&args[1]);
                let mask = faulted.as_ref().unwrap_or(&args[1]);
                let val = &args[2];
                for i in 0..lanes as usize {
                    if mask.lane(i).mask_active() {
                        self.mem
                            .write_scalar(addr + i as u64 * elem.bytes(), val.lane(i))?;
                    }
                }
                if self.trace.is_some() {
                    // Fold which lanes were active along with their bits,
                    // so a mask flip with identical data still registers.
                    let mut bits = 0;
                    for i in 0..lanes as usize {
                        if mask.lane(i).mask_active() {
                            bits = fold_bits(fold_bits(bits, i as u64), val.lane(i).bits);
                        }
                    }
                    self.note_event(TraceEvent::Store { addr, bits });
                }
                Ok(None)
            }
            Intrinsic::Math { op, ty } => {
                match op {
                    MathOp::Pow | MathOp::MinNum | MathOp::MaxNum => need(2)?,
                    _ => need(1)?,
                }
                let elem = ty
                    .elem()
                    .ok_or_else(|| Trap::EngineFault("math intrinsic with void type".into()))?;
                let unary = |g: fn(f64) -> f64, v: &RtVal| -> RtVal {
                    let mut out = v
                        .lanes()
                        .into_iter()
                        .map(|s| Scalar::from_float(elem, g(s.as_float())));
                    if ty.is_vector() {
                        RtVal::from_lanes(elem, out)
                    } else {
                        RtVal::Scalar(out.next_back().unwrap())
                    }
                };
                let binary = |g: fn(f64, f64) -> f64, a: &RtVal, b: &RtVal| -> RtVal {
                    let out: Vec<Scalar> = a
                        .lanes()
                        .into_iter()
                        .zip(b.lanes())
                        .map(|(x, y)| Scalar::from_float(elem, g(x.as_float(), y.as_float())))
                        .collect();
                    if ty.is_vector() {
                        RtVal::from_lanes(elem, out)
                    } else {
                        RtVal::Scalar(out[0])
                    }
                };
                let r = match op {
                    MathOp::Sqrt => unary(f64::sqrt, &args[0]),
                    MathOp::Exp => unary(f64::exp, &args[0]),
                    MathOp::Log => unary(f64::ln, &args[0]),
                    MathOp::Sin => unary(f64::sin, &args[0]),
                    MathOp::Cos => unary(f64::cos, &args[0]),
                    MathOp::Fabs => unary(f64::abs, &args[0]),
                    MathOp::Floor => unary(f64::floor, &args[0]),
                    MathOp::Ceil => unary(f64::ceil, &args[0]),
                    MathOp::Pow => binary(f64::powf, &args[0], &args[1]),
                    MathOp::MinNum => binary(f64::min, &args[0], &args[1]),
                    MathOp::MaxNum => binary(f64::max, &args[0], &args[1]),
                };
                Ok(Some(r))
            }
            Intrinsic::Movmsk { lanes } => {
                need(1)?;
                let mut bits: u64 = 0;
                for i in 0..lanes as usize {
                    if args[0].lane(i).mask_active() {
                        bits |= 1 << i;
                    }
                }
                Ok(Some(RtVal::Scalar(Scalar::i32(bits as i32))))
            }
            Intrinsic::MaskAny { lanes } => {
                need(1)?;
                let any = (0..lanes as usize).any(|i| args[0].lane(i).is_true());
                Ok(Some(RtVal::Scalar(Scalar::i1(any))))
            }
            Intrinsic::MaskAll { lanes } => {
                need(1)?;
                let all = (0..lanes as usize).all(|i| args[0].lane(i).is_true());
                Ok(Some(RtVal::Scalar(Scalar::i1(all))))
            }
        }
    }
}

/// Elementwise zip of two register values, same element type as inputs.
fn zip_lanes(
    a: &RtVal,
    b: &RtVal,
    f: impl Fn(Scalar, Scalar) -> Result<Scalar, Trap>,
) -> Result<RtVal, Trap> {
    match (a, b) {
        (RtVal::Scalar(x), RtVal::Scalar(y)) => Ok(RtVal::Scalar(f(*x, *y)?)),
        _ => {
            let elem = a.lane(0).ty;
            let out: Result<Vec<Scalar>, Trap> = a
                .lanes()
                .into_iter()
                .zip(b.lanes())
                .map(|(x, y)| f(x, y))
                .collect();
            Ok(RtVal::from_lanes(elem, out?))
        }
    }
}

/// Elementwise zip with a different output element type.
fn zip_lanes_to(
    out_ty: ScalarTy,
    a: &RtVal,
    b: &RtVal,
    f: impl Fn(Scalar, Scalar) -> Result<Scalar, Trap>,
) -> Result<RtVal, Trap> {
    match (a, b) {
        (RtVal::Scalar(x), RtVal::Scalar(y)) => Ok(RtVal::Scalar(f(*x, *y)?)),
        _ => {
            let out: Result<Vec<Scalar>, Trap> = a
                .lanes()
                .into_iter()
                .zip(b.lanes())
                .map(|(x, y)| f(x, y))
                .collect();
            Ok(RtVal::from_lanes(out_ty, out?))
        }
    }
}

/// One scalar binary operation. Integer ops wrap; division by zero traps;
/// shift amounts at or beyond the width produce 0 (sign-fill for `ashr`),
/// giving bit-flipped shift amounts a *defined* faulty semantics instead of
/// UB.
pub fn eval_bin(op: BinOp, a: Scalar, b: Scalar) -> Result<Scalar, Trap> {
    let ty = a.ty;
    let bits = ty.bits();
    let out = match op {
        BinOp::Add => a.bits.wrapping_add(b.bits),
        BinOp::Sub => a.bits.wrapping_sub(b.bits),
        BinOp::Mul => a.bits.wrapping_mul(b.bits),
        BinOp::SDiv => {
            if b.as_i64() == 0 {
                return Err(Trap::DivByZero);
            }
            a.as_i64().wrapping_div(b.as_i64()) as u64
        }
        BinOp::UDiv => {
            if b.bits == 0 {
                return Err(Trap::DivByZero);
            }
            a.bits / b.bits
        }
        BinOp::SRem => {
            if b.as_i64() == 0 {
                return Err(Trap::DivByZero);
            }
            a.as_i64().wrapping_rem(b.as_i64()) as u64
        }
        BinOp::URem => {
            if b.bits == 0 {
                return Err(Trap::DivByZero);
            }
            a.bits % b.bits
        }
        BinOp::And => a.bits & b.bits,
        BinOp::Or => a.bits | b.bits,
        BinOp::Xor => a.bits ^ b.bits,
        BinOp::Shl => {
            let amt = b.bits;
            if amt >= bits as u64 {
                0
            } else {
                a.bits << amt
            }
        }
        BinOp::LShr => {
            let amt = b.bits;
            if amt >= bits as u64 {
                0
            } else {
                a.bits >> amt
            }
        }
        BinOp::AShr => {
            let amt = b.bits;
            if amt >= bits as u64 {
                if a.as_i64() < 0 {
                    u64::MAX
                } else {
                    0
                }
            } else {
                (a.as_i64() >> amt) as u64
            }
        }
        BinOp::FAdd => return Ok(Scalar::from_float(ty, a.as_float() + b.as_float())),
        BinOp::FSub => return Ok(Scalar::from_float(ty, a.as_float() - b.as_float())),
        BinOp::FMul => return Ok(Scalar::from_float(ty, a.as_float() * b.as_float())),
        BinOp::FDiv => return Ok(Scalar::from_float(ty, a.as_float() / b.as_float())),
        BinOp::FRem => return Ok(Scalar::from_float(ty, a.as_float() % b.as_float())),
    };
    Ok(Scalar::new(ty, out))
}

/// One scalar integer comparison.
pub fn eval_icmp(pred: ICmpPred, a: Scalar, b: Scalar) -> bool {
    match pred {
        ICmpPred::Eq => a.bits == b.bits,
        ICmpPred::Ne => a.bits != b.bits,
        ICmpPred::Slt => a.as_i64() < b.as_i64(),
        ICmpPred::Sle => a.as_i64() <= b.as_i64(),
        ICmpPred::Sgt => a.as_i64() > b.as_i64(),
        ICmpPred::Sge => a.as_i64() >= b.as_i64(),
        ICmpPred::Ult => a.bits < b.bits,
        ICmpPred::Ule => a.bits <= b.bits,
        ICmpPred::Ugt => a.bits > b.bits,
        ICmpPred::Uge => a.bits >= b.bits,
    }
}

/// One scalar float comparison.
pub fn eval_fcmp(pred: FCmpPred, a: Scalar, b: Scalar) -> bool {
    let (x, y) = (a.as_float(), b.as_float());
    let unordered = x.is_nan() || y.is_nan();
    match pred {
        FCmpPred::Oeq => !unordered && x == y,
        FCmpPred::One => !unordered && x != y,
        FCmpPred::Olt => !unordered && x < y,
        FCmpPred::Ole => !unordered && x <= y,
        FCmpPred::Ogt => !unordered && x > y,
        FCmpPred::Oge => !unordered && x >= y,
        FCmpPred::Ord => !unordered,
        FCmpPred::Uno => unordered,
        FCmpPred::Ueq => unordered || x == y,
        FCmpPred::Une => unordered || x != y,
    }
}

/// One scalar cast. Out-of-range `fptosi` (including NaN) produces 0 — a
/// defined semantics so that bit-flipped floats keep execution
/// deterministic.
pub fn eval_cast(op: CastOp, v: Scalar, to: ScalarTy) -> Scalar {
    match op {
        CastOp::Trunc | CastOp::Bitcast | CastOp::PtrToInt | CastOp::IntToPtr | CastOp::ZExt => {
            Scalar::new(to, v.bits)
        }
        CastOp::SExt => Scalar::new(to, v.as_i64() as u64),
        CastOp::FpToSi => {
            let f = v.as_float();
            let i = if f.is_nan() || f < i64::MIN as f64 || f > i64::MAX as f64 {
                0
            } else {
                f as i64
            };
            Scalar::new(to, i as u64)
        }
        CastOp::SiToFp => Scalar::from_float(to, v.as_i64() as f64),
        CastOp::FpExt | CastOp::FpTrunc => Scalar::from_float(to, v.as_float()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vir::parser::parse_module;

    fn run_i32(src: &str, func: &str, args: &[RtVal]) -> Result<i64, Trap> {
        let m = parse_module(src).unwrap();
        vir::verify::verify_module(&m).unwrap();
        let mut interp = Interp::new(&m);
        let r = interp.run(func, args, &mut NoHost)?;
        Ok(r.ret.unwrap().scalar().as_i64())
    }

    #[test]
    fn runs_sum_loop() {
        let src = r#"
define i32 @sum(i32 %n) {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %i2, %body ]
  %acc = phi i32 [ 0, %entry ], [ %acc2, %body ]
  %cond = icmp slt i32 %i, %n
  br i1 %cond, label %body, label %exit
body:
  %acc2 = add i32 %acc, %i
  %i2 = add i32 %i, 1
  br label %header
exit:
  ret i32 %acc
}
"#;
        assert_eq!(
            run_i32(src, "sum", &[RtVal::Scalar(Scalar::i32(10))]).unwrap(),
            45
        );
        assert_eq!(
            run_i32(src, "sum", &[RtVal::Scalar(Scalar::i32(0))]).unwrap(),
            0
        );
    }

    #[test]
    fn vector_arithmetic_elementwise() {
        let src = r#"
define <4 x i32> @vadd(<4 x i32> %a, <4 x i32> %b) {
entry:
  %s = add <4 x i32> %a, %b
  ret <4 x i32> %s
}
"#;
        let m = parse_module(src).unwrap();
        let mut interp = Interp::new(&m);
        let a = RtVal::from_lanes(ScalarTy::I32, (0..4).map(Scalar::i32));
        let b = RtVal::from_lanes(ScalarTy::I32, (10..14).map(Scalar::i32));
        let r = interp.run("vadd", &[a, b], &mut NoHost).unwrap();
        let lanes: Vec<i64> = r.ret.unwrap().lanes().iter().map(|s| s.as_i64()).collect();
        assert_eq!(lanes, vec![10, 12, 14, 16]);
    }

    #[test]
    fn div_by_zero_traps() {
        let src = r#"
define i32 @d(i32 %a, i32 %b) {
entry:
  %q = sdiv i32 %a, %b
  ret i32 %q
}
"#;
        let e = run_i32(
            src,
            "d",
            &[RtVal::Scalar(Scalar::i32(1)), RtVal::Scalar(Scalar::i32(0))],
        );
        assert_eq!(e, Err(Trap::DivByZero));
    }

    #[test]
    fn hang_budget_traps() {
        let src = r#"
define void @spin() {
entry:
  br label %entry2
entry2:
  br label %entry2
}
"#;
        let m = parse_module(src).unwrap();
        let mut interp = Interp::new(&m);
        interp.set_budget(1000);
        let e = interp.run("spin", &[], &mut NoHost);
        assert_eq!(e.unwrap_err(), Trap::HangBudget);
    }

    #[test]
    fn wall_clock_watchdog_traps_infinite_loop() {
        let src = r#"
define void @spin() {
entry:
  br label %entry2
entry2:
  br label %entry2
}
"#;
        let m = parse_module(src).unwrap();
        let mut interp = Interp::new(&m);
        // Budget effectively unbounded: only the wall clock can stop this.
        interp.set_wall_limit(std::time::Duration::from_millis(20));
        let started = std::time::Instant::now();
        let e = interp.run("spin", &[], &mut NoHost);
        assert_eq!(e.unwrap_err(), Trap::WallClock);
        assert!(
            started.elapsed() < std::time::Duration::from_secs(10),
            "watchdog must fire promptly"
        );
    }

    #[test]
    fn memory_ceiling_traps_alloca() {
        let src = r#"
define void @gulp(i32 %n) {
entry:
  %p = alloca float, i32 %n
  ret void
}
"#;
        let m = parse_module(src).unwrap();
        let mut interp = Interp::new(&m);
        interp.set_memory_limit(1024);
        let e = interp.run("gulp", &[RtVal::Scalar(Scalar::i32(4096))], &mut NoHost);
        assert_eq!(e.unwrap_err(), Trap::OutOfMemory);
        // Under the ceiling, the same program is fine.
        let mut interp = Interp::new(&m);
        interp.set_memory_limit(1024);
        interp
            .run("gulp", &[RtVal::Scalar(Scalar::i32(8))], &mut NoHost)
            .unwrap();
    }

    #[test]
    fn engine_faults_trap_instead_of_panicking() {
        // A call with mismatched arity inside the module (bypassing the
        // top-level arity check) must trap, not panic.
        let src = r#"
define i32 @callee(i32 %a) {
entry:
  ret i32 %a
}
"#;
        let m = parse_module(src).unwrap();
        let mut interp = Interp::new(&m);
        // Top-level arity mismatch is a HostError (caller bug)...
        let e = interp.run("callee", &[], &mut NoHost);
        assert!(matches!(e, Err(Trap::HostError(_))));
        // ...but an intrinsic short on arguments is an EngineFault.
        let mut interp = Interp::new(&m);
        let e = interp.eval_intrinsic(
            Intrinsic::Math {
                op: MathOp::Sqrt,
                ty: Type::Scalar(ScalarTy::F32),
            },
            &[],
        );
        assert!(matches!(e, Err(Trap::EngineFault(_))), "{e:?}");
    }

    #[test]
    fn memory_ops_and_gep() {
        let src = r#"
define i32 @second(ptr %a) {
entry:
  %p = getelementptr i32, ptr %a, i32 1
  %v = load i32, ptr %p
  ret i32 %v
}
"#;
        let m = parse_module(src).unwrap();
        let mut interp = Interp::new(&m);
        let base = interp.mem.alloc_i32_slice(&[7, 42, 9]).unwrap();
        let r = interp
            .run("second", &[RtVal::Scalar(Scalar::ptr(base))], &mut NoHost)
            .unwrap();
        assert_eq!(r.ret.unwrap().scalar().as_i64(), 42);
    }

    #[test]
    fn oob_load_traps() {
        let src = r#"
define i32 @past(ptr %a) {
entry:
  %p = getelementptr i32, ptr %a, i32 100
  %v = load i32, ptr %p
  ret i32 %v
}
"#;
        let m = parse_module(src).unwrap();
        let mut interp = Interp::new(&m);
        let base = interp.mem.alloc_i32_slice(&[1, 2, 3]).unwrap();
        let e = interp.run("past", &[RtVal::Scalar(Scalar::ptr(base))], &mut NoHost);
        assert!(matches!(e, Err(Trap::OutOfBounds { .. })));
    }

    #[test]
    fn masked_load_skips_inactive_lanes_and_oob() {
        // Mask covers only the first 2 lanes; the other 6 would be OOB but
        // must not be touched — the whole point of masked tails.
        let src = r#"
declare <8 x float> @llvm.x86.avx.maskload.ps.256(ptr, <8 x float>)

define <8 x float> @tail(ptr %a, <8 x float> %m) {
entry:
  %v = call <8 x float> @llvm.x86.avx.maskload.ps.256(ptr %a, <8 x float> %m)
  ret <8 x float> %v
}
"#;
        let m = parse_module(src).unwrap();
        let mut interp = Interp::new(&m);
        let base = interp.mem.alloc_f32_slice(&[1.5, 2.5]).unwrap();
        let on = f32::from_bits(0xffff_ffff);
        let mask = RtVal::from_lanes(
            ScalarTy::F32,
            (0..8).map(|i| {
                if i < 2 {
                    Scalar::f32(on)
                } else {
                    Scalar::f32(0.0)
                }
            }),
        );
        let r = interp
            .run(
                "tail",
                &[RtVal::Scalar(Scalar::ptr(base)), mask],
                &mut NoHost,
            )
            .unwrap();
        let lanes = r.ret.unwrap();
        assert_eq!(lanes.lane(0).as_f32(), 1.5);
        assert_eq!(lanes.lane(1).as_f32(), 2.5);
        for i in 2..8 {
            assert_eq!(lanes.lane(i).as_f32(), 0.0);
        }
    }

    #[test]
    fn masked_store_writes_only_active_lanes() {
        let src = r#"
declare void @llvm.x86.avx.maskstore.ps.256(ptr, <8 x float>, <8 x float>)

define void @st(ptr %a, <8 x float> %m, <8 x float> %v) {
entry:
  call void @llvm.x86.avx.maskstore.ps.256(ptr %a, <8 x float> %m, <8 x float> %v)
  ret void
}
"#;
        let m = parse_module(src).unwrap();
        let mut interp = Interp::new(&m);
        let base = interp.mem.alloc_f32_slice(&[0.0; 8]).unwrap();
        let on = f32::from_bits(0xffff_ffff);
        let mask = RtVal::from_lanes(
            ScalarTy::F32,
            (0..8).map(|i| {
                if i % 2 == 0 {
                    Scalar::f32(on)
                } else {
                    Scalar::f32(0.0)
                }
            }),
        );
        let val = RtVal::from_lanes(ScalarTy::F32, (0..8).map(|i| Scalar::f32(i as f32 + 1.0)));
        interp
            .run(
                "st",
                &[RtVal::Scalar(Scalar::ptr(base)), mask, val],
                &mut NoHost,
            )
            .unwrap();
        let out = interp.mem.read_f32_slice(base, 8).unwrap();
        assert_eq!(out, vec![1.0, 0.0, 3.0, 0.0, 5.0, 0.0, 7.0, 0.0]);
    }

    #[test]
    fn math_intrinsics() {
        let src = r#"
define float @hyp(float %a, float %b) {
entry:
  %aa = fmul float %a, %a
  %bb = fmul float %b, %b
  %s = fadd float %aa, %bb
  %r = call float @llvm.sqrt.f32(float %s)
  ret float %r
}
"#;
        let m = parse_module(src).unwrap();
        let mut interp = Interp::new(&m);
        let r = interp
            .run(
                "hyp",
                &[
                    RtVal::Scalar(Scalar::f32(3.0)),
                    RtVal::Scalar(Scalar::f32(4.0)),
                ],
                &mut NoHost,
            )
            .unwrap();
        assert_eq!(r.ret.unwrap().scalar().as_f32(), 5.0);
    }

    #[test]
    fn function_calls_and_recursion_limit() {
        let src = r#"
define i32 @inc(i32 %x) {
entry:
  %r = add i32 %x, 1
  ret i32 %r
}

define i32 @twice(i32 %x) {
entry:
  %a = call i32 @inc(i32 %x)
  %b = call i32 @inc(i32 %a)
  ret i32 %b
}

define i32 @forever(i32 %x) {
entry:
  %r = call i32 @forever(i32 %x)
  ret i32 %r
}
"#;
        assert_eq!(
            run_i32(src, "twice", &[RtVal::Scalar(Scalar::i32(5))]).unwrap(),
            7
        );
        let e = run_i32(src, "forever", &[RtVal::Scalar(Scalar::i32(5))]);
        assert_eq!(e, Err(Trap::StackOverflow));
    }

    #[test]
    fn host_calls_dispatch() {
        struct Doubler;
        impl HostEnv for Doubler {
            fn call(
                &mut self,
                name: &str,
                args: &[RtVal],
                _mem: &mut Memory,
            ) -> Result<Option<RtVal>, Trap> {
                assert_eq!(name, "ext.double");
                Ok(Some(RtVal::Scalar(Scalar::i32(
                    args[0].scalar().as_i64() as i32 * 2,
                ))))
            }
        }
        let src = r#"
declare i32 @ext.double(i32)

define i32 @f(i32 %x) {
entry:
  %r = call i32 @ext.double(i32 %x)
  ret i32 %r
}
"#;
        let m = parse_module(src).unwrap();
        let mut interp = Interp::new(&m);
        let r = interp
            .run("f", &[RtVal::Scalar(Scalar::i32(21))], &mut Doubler)
            .unwrap();
        assert_eq!(r.ret.unwrap().scalar().as_i64(), 42);
    }

    #[test]
    fn dyn_inst_count_is_deterministic() {
        let src = r#"
define i32 @sum(i32 %n) {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %i2, %body ]
  %acc = phi i32 [ 0, %entry ], [ %acc2, %body ]
  %cond = icmp slt i32 %i, %n
  br i1 %cond, label %body, label %exit
body:
  %acc2 = add i32 %acc, %i
  %i2 = add i32 %i, 1
  br label %header
exit:
  ret i32 %acc
}
"#;
        let m = parse_module(src).unwrap();
        let count = |n: i32| {
            let mut interp = Interp::new(&m);
            interp
                .run("sum", &[RtVal::Scalar(Scalar::i32(n))], &mut NoHost)
                .unwrap()
                .dyn_insts
        };
        assert_eq!(count(10), count(10));
        assert!(count(20) > count(10));
    }

    #[test]
    fn shuffles_and_inserts() {
        let src = r#"
define <8 x float> @bcast(float %x) {
entry:
  %i = insertelement <8 x float> undef, float %x, i32 0
  %b = shufflevector <8 x float> %i, <8 x float> undef, <8 x i32> <i32 0, i32 0, i32 0, i32 0, i32 0, i32 0, i32 0, i32 0>
  ret <8 x float> %b
}
"#;
        let m = parse_module(src).unwrap();
        let mut interp = Interp::new(&m);
        let r = interp
            .run("bcast", &[RtVal::Scalar(Scalar::f32(2.5))], &mut NoHost)
            .unwrap();
        let v = r.ret.unwrap();
        for i in 0..8 {
            assert_eq!(v.lane(i).as_f32(), 2.5);
        }
    }

    #[test]
    fn shift_overflow_defined() {
        assert_eq!(
            eval_bin(BinOp::Shl, Scalar::i32(1), Scalar::i32(40))
                .unwrap()
                .bits,
            0
        );
        assert_eq!(
            eval_bin(BinOp::AShr, Scalar::i32(-1), Scalar::i32(99))
                .unwrap()
                .as_i64(),
            -1
        );
        assert_eq!(
            eval_bin(BinOp::LShr, Scalar::i32(-1), Scalar::i32(99))
                .unwrap()
                .bits,
            0
        );
    }

    #[test]
    fn fcmp_nan_semantics() {
        let nan = Scalar::f32(f32::NAN);
        let one = Scalar::f32(1.0);
        assert!(!eval_fcmp(FCmpPred::Oeq, nan, one));
        assert!(eval_fcmp(FCmpPred::Une, nan, one));
        assert!(eval_fcmp(FCmpPred::Uno, nan, nan));
        assert!(eval_fcmp(FCmpPred::Ord, one, one));
    }

    #[test]
    fn casts() {
        assert_eq!(
            eval_cast(CastOp::SExt, Scalar::i8(-1), ScalarTy::I32).as_i64(),
            -1
        );
        assert_eq!(
            eval_cast(CastOp::ZExt, Scalar::i8(-1), ScalarTy::I32).as_i64(),
            255
        );
        assert_eq!(
            eval_cast(CastOp::Trunc, Scalar::i32(0x1ff), ScalarTy::I8).as_u64(),
            0xff
        );
        assert_eq!(
            eval_cast(CastOp::SiToFp, Scalar::i32(-3), ScalarTy::F32).as_f32(),
            -3.0
        );
        assert_eq!(
            eval_cast(CastOp::FpToSi, Scalar::f32(2.9), ScalarTy::I32).as_i64(),
            2
        );
        assert_eq!(
            eval_cast(CastOp::FpToSi, Scalar::f32(f32::NAN), ScalarTy::I32).as_i64(),
            0
        );
        assert_eq!(
            eval_cast(CastOp::Bitcast, Scalar::f32(1.0), ScalarTy::I32).as_u64(),
            0x3f80_0000
        );
    }
}

#[cfg(test)]
mod profiling_tests {
    use super::*;
    use vir::parser::parse_module;

    /// Masked store with 3 of 8 lanes active, plus a full-width fmul.
    const MASKED: &str = r#"
declare void @llvm.x86.avx.maskstore.ps.256(ptr, <8 x float>, <8 x float>)

define void @k(ptr %a, <8 x float> %m, <8 x float> %v) {
entry:
  %d = fmul <8 x float> %v, %v
  call void @llvm.x86.avx.maskstore.ps.256(ptr %a, <8 x float> %m, <8 x float> %d)
  ret void
}
"#;

    fn masked_args(interp: &mut Interp) -> Vec<RtVal> {
        let base = interp.mem.alloc_f32_slice(&[0.0; 8]).unwrap();
        let on = f32::from_bits(0xffff_ffff);
        let mask = RtVal::from_lanes(
            ScalarTy::F32,
            (0..8).map(|i| {
                if i < 3 {
                    Scalar::f32(on)
                } else {
                    Scalar::f32(0.0)
                }
            }),
        );
        let val = RtVal::from_lanes(ScalarTy::F32, (0..8).map(|i| Scalar::f32(i as f32)));
        vec![RtVal::Scalar(Scalar::ptr(base)), mask, val]
    }

    #[test]
    fn occupancy_tracks_masked_lanes() {
        let m = parse_module(MASKED).unwrap();
        let mut interp = Interp::new(&m);
        interp.enable_profiling();
        let args = masked_args(&mut interp);
        interp.run("k", &args, &mut NoHost).unwrap();
        let mix = interp.take_mix().unwrap();
        // fmul runs all 8 lanes; the maskstore only 3.
        assert_eq!(mix.lanes_total, 16);
        assert_eq!(mix.lanes_active, 11);
        assert_eq!(mix.occupancy_histogram(), vec![(3, 1), (8, 1)]);
        assert!((mix.avg_active_lanes() - 5.5).abs() < 1e-12);
    }

    #[test]
    fn occupancy_tracks_vector_select_condition() {
        let src = r#"
define <4 x i32> @sel(<4 x i1> %c, <4 x i32> %a, <4 x i32> %b) {
entry:
  %r = select <4 x i1> %c, <4 x i32> %a, <4 x i32> %b
  ret <4 x i32> %r
}
"#;
        let m = parse_module(src).unwrap();
        let mut interp = Interp::new(&m);
        interp.enable_profiling();
        let c = RtVal::from_lanes(ScalarTy::I1, [true, false, true, false].map(Scalar::i1));
        let a = RtVal::from_lanes(ScalarTy::I32, (0..4).map(Scalar::i32));
        let b = RtVal::from_lanes(ScalarTy::I32, (4..8).map(Scalar::i32));
        interp.run("sel", &[c, a, b], &mut NoHost).unwrap();
        let mix = interp.take_mix().unwrap();
        assert_eq!(mix.occupancy_histogram(), vec![(2, 1)]);
    }

    /// Profiling must be purely observational: identical results, memory,
    /// and dynamic instruction counts with it on or off — the same
    /// bit-identity contract tracing holds to.
    #[test]
    fn profiling_is_observational_bit_for_bit() {
        let m = parse_module(MASKED).unwrap();
        let run = |profile: bool| {
            let mut interp = Interp::new(&m);
            if profile {
                interp.enable_profiling();
            }
            let args = masked_args(&mut interp);
            let base = args[0].scalar().as_u64();
            let r = interp.run("k", &args, &mut NoHost).unwrap();
            (r, interp.mem.read_f32_slice(base, 8).unwrap())
        };
        let (plain, mem_plain) = run(false);
        let (profiled, mem_profiled) = run(true);
        assert_eq!(plain, profiled, "profiling must not perturb execution");
        assert_eq!(mem_plain, mem_profiled);
    }

    /// The hotspot profile attributes every executed instruction to a
    /// static site: counts must reconcile exactly with the dynamic
    /// instruction count, and opcodes rank by dynamic frequency.
    #[test]
    fn hotspots_attribute_counts_to_sites() {
        let src = r#"
define i32 @loop(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %i2, %head ]
  %acc = phi i32 [ 0, %entry ], [ %acc2, %head ]
  %acc2 = add i32 %acc, %i
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, %n
  br i1 %c, label %head, label %exit
exit:
  ret i32 %acc2
}
"#;
        let m = parse_module(src).unwrap();
        vir::verify::verify_module(&m).unwrap();
        let mut interp = Interp::new(&m);
        interp.enable_hotspots();
        let r = interp
            .run("loop", &[RtVal::Scalar(Scalar::i32(10))], &mut NoHost)
            .unwrap();
        let hot = interp.take_hotspots().unwrap();
        assert_eq!(
            hot.total(),
            r.dyn_insts,
            "every dynamic instruction must land at exactly one site"
        );
        let table = hot.hotspots();
        // 10 iterations × (2 phis + 2 adds + 1 icmp) dominate the mix:
        // add leads with 20 dynamic executions over 2 static sites.
        assert_eq!(
            (table[0].opcode, table[0].count, table[0].sites),
            ("add", 20, 2)
        );
        let folded = hot.folded();
        assert!(folded.contains("loop;add 20"), "{folded}");
        assert!(folded.contains("loop;condbr"), "{folded}");
        // Terminators and body instructions are distinct sites.
        assert!(hot
            .sites()
            .iter()
            .any(|s| matches!(s.loc, crate::profile::HotLoc::Term(_))));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]

        /// Hotspot profiling must be purely observational over arbitrary
        /// inputs: results, memory, and dynamic instruction counts stay
        /// bit-identical with it on or off — the same contract the mix
        /// profiler and the trace sink hold to.
        #[test]
        fn hotspot_profiling_is_observational_bit_for_bit(
            lanes in proptest::prop::collection::vec(proptest::prelude::any::<u32>(), 8),
            mask_bits in proptest::prelude::any::<u8>(),
        ) {
            let m = parse_module(MASKED).unwrap();
            let run = |hotspots: bool| {
                let mut interp = Interp::new(&m);
                if hotspots {
                    interp.enable_hotspots();
                }
                let base = interp.mem.alloc_f32_slice(&[0.0; 8]).unwrap();
                let on = f32::from_bits(0xffff_ffff);
                let mask = RtVal::from_lanes(
                    ScalarTy::F32,
                    (0..8).map(|i| {
                        if mask_bits & (1 << i) != 0 {
                            Scalar::f32(on)
                        } else {
                            Scalar::f32(0.0)
                        }
                    }),
                );
                let val = RtVal::from_lanes(
                    ScalarTy::F32,
                    lanes.iter().map(|&b| Scalar::f32(f32::from_bits(b))),
                );
                let args = vec![RtVal::Scalar(Scalar::ptr(base)), mask, val];
                let r = interp.run("k", &args, &mut NoHost).unwrap();
                let snapshot: Vec<u32> = interp
                    .mem
                    .read_f32_slice(base, 8)
                    .unwrap()
                    .into_iter()
                    .map(f32::to_bits)
                    .collect();
                (r, snapshot, interp.take_hotspots())
            };
            let (plain, mem_plain, _) = run(false);
            let (hot, mem_hot, profile) = run(true);
            proptest::prop_assert_eq!(plain.dyn_insts, hot.dyn_insts);
            proptest::prop_assert_eq!(plain, hot);
            proptest::prop_assert_eq!(mem_plain, mem_hot);
            let profile = profile.expect("hotspots enabled");
            proptest::prop_assert_eq!(profile.total(), 3, "fmul + maskstore call + ret");
        }
    }
}

#[cfg(test)]
mod intrinsic_tests {
    use super::*;
    use vir::parser::parse_module;

    fn run_ret(src: &str, func: &str, args: &[RtVal]) -> RtVal {
        let m = parse_module(src).unwrap();
        vir::verify::verify_module(&m).unwrap();
        let mut interp = Interp::new(&m);
        interp.run(func, args, &mut NoHost).unwrap().ret.unwrap()
    }

    #[test]
    fn movmsk_collects_sign_bits() {
        let src = r#"
define i32 @m(<8 x float> %v) {
entry:
  %r = call i32 @llvm.x86.avx.movmsk.ps.256(<8 x float> %v)
  ret i32 %r
}
"#;
        let v = RtVal::from_lanes(
            ScalarTy::F32,
            [1.0f32, -1.0, 2.0, -0.5, 0.0, -0.0, 3.0, -9.0]
                .iter()
                .map(|&x| Scalar::f32(x)),
        );
        let r = run_ret(src, "m", &[v]);
        // Negative lanes: 1, 3, 5 (-0.0 has the sign bit set!), 7.
        assert_eq!(r.scalar().as_i64(), 0b1010_1010);
    }

    #[test]
    fn mask_any_and_all() {
        let src = r#"
define i1 @any(<4 x i1> %m) {
entry:
  %r = call i1 @llvm.vulfi.mask.any.v4i1(<4 x i1> %m)
  ret i1 %r
}

define i1 @all(<4 x i1> %m) {
entry:
  %r = call i1 @llvm.vulfi.mask.all.v4i1(<4 x i1> %m)
  ret i1 %r
}
"#;
        let mk =
            |bits: [bool; 4]| RtVal::from_lanes(ScalarTy::I1, bits.iter().map(|&b| Scalar::i1(b)));
        let m = parse_module(src).unwrap();
        let run = |f: &str, v: RtVal| {
            Interp::new(&m)
                .run(f, &[v], &mut NoHost)
                .unwrap()
                .ret
                .unwrap()
                .scalar()
                .is_true()
        };
        assert!(run("any", mk([false, true, false, false])));
        assert!(!run("any", mk([false, false, false, false])));
        assert!(run("all", mk([true, true, true, true])));
        assert!(!run("all", mk([true, true, false, true])));
    }

    #[test]
    fn minnum_maxnum_and_pow() {
        let src = r#"
define float @f(float %a, float %b) {
entry:
  %mn = call float @llvm.minnum.f32(float %a, float %b)
  %mx = call float @llvm.maxnum.f32(float %a, float %b)
  %p = call float @llvm.pow.f32(float %mx, float 2.0)
  %r = fadd float %mn, %p
  ret float %r
}
"#;
        let r = run_ret(
            src,
            "f",
            &[
                RtVal::Scalar(Scalar::f32(-3.0)),
                RtVal::Scalar(Scalar::f32(4.0)),
            ],
        );
        assert_eq!(r.scalar().as_f32(), -3.0 + 16.0);
    }

    #[test]
    fn vector_math_is_elementwise() {
        let src = r#"
define <4 x float> @s(<4 x float> %v) {
entry:
  %r = call <4 x float> @llvm.sqrt.v4f32(<4 x float> %v)
  ret <4 x float> %r
}
"#;
        let v = RtVal::from_lanes(
            ScalarTy::F32,
            [1.0f32, 4.0, 9.0, 16.0].iter().map(|&x| Scalar::f32(x)),
        );
        let r = run_ret(src, "s", &[v]);
        let lanes: Vec<f32> = r.lanes().iter().map(|s| s.as_f32()).collect();
        assert_eq!(lanes, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn unknown_intrinsic_traps_cleanly() {
        let src = r#"
define void @f() {
entry:
  call void @llvm.x86.avx.maskstore.ps.256(ptr null, <8 x float> zeroinitializer, <8 x float> zeroinitializer)
  ret void
}
"#;
        // All lanes masked off: the null pointer is never dereferenced.
        let m = parse_module(src).unwrap();
        let mut interp = Interp::new(&m);
        interp.run("f", &[], &mut NoHost).unwrap();
    }
}
