//! # vexec — the VIR interpreter / virtual vector machine
//!
//! Executes [`vir`] modules with:
//!
//! - a **guarded flat memory model** ([`mem::Memory`]) where every access
//!   must fall inside a live allocation — invalid pointers trap, giving the
//!   fault-injection study its "Crash" outcome class;
//! - full scalar + vector instruction semantics, including the masked
//!   AVX/SSE intrinsics of the paper's Fig. 5 (inactive lanes never touch
//!   memory);
//! - **dynamic instruction accounting** (the paper's Table I metric) and a
//!   hang budget that converts fault-induced infinite loops into traps;
//! - a [`interp::HostEnv`] callback interface through which VULFI's runtime
//!   injection API and the detector runtime are linked in.
//!
//! ## Example
//!
//! ```
//! use vexec::{Interp, NoHost, RtVal, Scalar};
//!
//! let src = r#"
//! define float @axpy1(float %a, float %x, float %y) {
//! entry:
//!   %ax = fmul float %a, %x
//!   %r = fadd float %ax, %y
//!   ret float %r
//! }
//! "#;
//! let m = vir::parser::parse_module(src).unwrap();
//! let mut interp = Interp::new(&m);
//! let args = [
//!     RtVal::Scalar(Scalar::f32(2.0)),
//!     RtVal::Scalar(Scalar::f32(3.0)),
//!     RtVal::Scalar(Scalar::f32(1.0)),
//! ];
//! let out = interp.run("axpy1", &args, &mut NoHost).unwrap();
//! assert_eq!(out.ret.unwrap().scalar().as_f32(), 7.0);
//! ```

pub mod fault;
pub mod interp;
pub mod mem;
pub mod opt;
pub mod profile;
pub mod trace;
pub mod value;

pub use fault::{EngineInjection, EngineInjector, EngineModel};
pub use interp::{ExecResult, HostEnv, Interp, NoHost};
pub use mem::{Memory, Trap};
pub use profile::{HotLoc, HotProfile, HotSite, Hotspot, InstMix};
pub use trace::{Divergence, DivergenceTracer, TraceEvent, TraceSink};
pub use value::{RtVal, Scalar};
