//! Runtime values: raw bit patterns tagged with their scalar type.
//!
//! Keeping every scalar as a `u64` bit pattern makes the injector's
//! single-bit-flip primitive (paper §II-B) uniform across integer, float,
//! and pointer registers.

use vir::{ConstData, Constant, ScalarTy, Type};

/// One scalar register value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scalar {
    pub ty: ScalarTy,
    /// Raw bits; only the low `ty.bits()` bits are significant.
    pub bits: u64,
}

impl Scalar {
    pub fn new(ty: ScalarTy, bits: u64) -> Scalar {
        Scalar {
            ty,
            bits: bits & ty.bit_mask(),
        }
    }

    pub fn i1(v: bool) -> Scalar {
        Scalar::new(ScalarTy::I1, v as u64)
    }

    pub fn i8(v: i8) -> Scalar {
        Scalar::new(ScalarTy::I8, v as u8 as u64)
    }

    pub fn i16(v: i16) -> Scalar {
        Scalar::new(ScalarTy::I16, v as u16 as u64)
    }

    pub fn i32(v: i32) -> Scalar {
        Scalar::new(ScalarTy::I32, v as u32 as u64)
    }

    pub fn i64(v: i64) -> Scalar {
        Scalar::new(ScalarTy::I64, v as u64)
    }

    pub fn f32(v: f32) -> Scalar {
        Scalar::new(ScalarTy::F32, v.to_bits() as u64)
    }

    pub fn f64(v: f64) -> Scalar {
        Scalar::new(ScalarTy::F64, v.to_bits())
    }

    pub fn ptr(addr: u64) -> Scalar {
        Scalar::new(ScalarTy::Ptr, addr)
    }

    /// Interpret as a signed integer (sign-extended).
    pub fn as_i64(self) -> i64 {
        vir::constant::sext(self.bits, self.ty.bits())
    }

    /// Interpret as an unsigned integer.
    pub fn as_u64(self) -> u64 {
        self.bits
    }

    pub fn as_f32(self) -> f32 {
        f32::from_bits(self.bits as u32)
    }

    pub fn as_f64(self) -> f64 {
        f64::from_bits(self.bits)
    }

    /// Generic float view: `f32` widened, `f64` direct.
    pub fn as_float(self) -> f64 {
        match self.ty {
            ScalarTy::F32 => self.as_f32() as f64,
            ScalarTy::F64 => self.as_f64(),
            _ => panic!("as_float on {:?}", self.ty),
        }
    }

    /// Build from a generic float, narrowing for `f32`.
    pub fn from_float(ty: ScalarTy, v: f64) -> Scalar {
        match ty {
            ScalarTy::F32 => Scalar::f32(v as f32),
            ScalarTy::F64 => Scalar::f64(v),
            _ => panic!("from_float for {ty:?}"),
        }
    }

    pub fn is_true(self) -> bool {
        self.bits & 1 == 1
    }

    /// Lane-active test per the AVX masked-op convention: the element's
    /// most-significant bit selects the lane (sign bit for f32/i32 masks;
    /// the single bit for i1).
    pub fn mask_active(self) -> bool {
        (self.bits >> (self.ty.bits() - 1)) & 1 == 1
    }

    /// Flip one bit (0-based, must be < `ty.bits()`): the fault-injection
    /// primitive.
    pub fn flip_bit(self, bit: u32) -> Scalar {
        debug_assert!(bit < self.ty.bits());
        Scalar::new(self.ty, self.bits ^ (1u64 << bit))
    }
}

/// A register value: one scalar or a packed vector of scalars.
#[derive(Debug, Clone, PartialEq)]
pub enum RtVal {
    Scalar(Scalar),
    /// Element type plus per-lane bit patterns.
    Vector(ScalarTy, Vec<u64>),
}

impl RtVal {
    pub fn ty(&self) -> Type {
        match self {
            RtVal::Scalar(s) => Type::Scalar(s.ty),
            RtVal::Vector(e, v) => Type::vec(*e, v.len() as u32),
        }
    }

    pub fn scalar(&self) -> Scalar {
        match self {
            RtVal::Scalar(s) => *s,
            RtVal::Vector(..) => panic!("scalar() on vector value"),
        }
    }

    /// Per-lane scalars (a scalar yields one lane).
    pub fn lanes(&self) -> Vec<Scalar> {
        match self {
            RtVal::Scalar(s) => vec![*s],
            RtVal::Vector(e, v) => v.iter().map(|&b| Scalar::new(*e, b)).collect(),
        }
    }

    pub fn lane(&self, i: usize) -> Scalar {
        match self {
            RtVal::Scalar(s) => {
                debug_assert_eq!(i, 0);
                *s
            }
            RtVal::Vector(e, v) => Scalar::new(*e, v[i]),
        }
    }

    pub fn num_lanes(&self) -> usize {
        match self {
            RtVal::Scalar(_) => 1,
            RtVal::Vector(_, v) => v.len(),
        }
    }

    /// Replace lane `i` (panics for scalars unless `i == 0`).
    pub fn with_lane(&self, i: usize, s: Scalar) -> RtVal {
        match self {
            RtVal::Scalar(_) => {
                debug_assert_eq!(i, 0);
                RtVal::Scalar(s)
            }
            RtVal::Vector(e, v) => {
                debug_assert_eq!(*e, s.ty);
                let mut v = v.clone();
                v[i] = s.bits;
                RtVal::Vector(*e, v)
            }
        }
    }

    /// Build a vector from lane scalars.
    pub fn from_lanes(ty: ScalarTy, lanes: impl IntoIterator<Item = Scalar>) -> RtVal {
        RtVal::Vector(ty, lanes.into_iter().map(|s| s.bits).collect())
    }

    /// Materialize a constant.
    pub fn from_constant(c: &Constant) -> RtVal {
        match c.ty {
            Type::Scalar(s) => {
                let bits = match &c.data {
                    ConstData::Scalar(b) => *b,
                    ConstData::Zero | ConstData::Undef => 0,
                    ConstData::Vector(_) => panic!("vector payload on scalar constant"),
                };
                RtVal::Scalar(Scalar::new(s, bits))
            }
            Type::Vector(s, n) => {
                let lanes = match &c.data {
                    ConstData::Vector(v) => v.clone(),
                    ConstData::Zero | ConstData::Undef => vec![0; n as usize],
                    ConstData::Scalar(b) => vec![*b; n as usize],
                };
                debug_assert_eq!(lanes.len(), n as usize);
                RtVal::Vector(s, lanes.iter().map(|&b| b & s.bit_mask()).collect())
            }
            Type::Void => panic!("void constant"),
        }
    }

    /// Zero value of a type.
    pub fn zero(ty: Type) -> RtVal {
        match ty {
            Type::Scalar(s) => RtVal::Scalar(Scalar::new(s, 0)),
            Type::Vector(s, n) => RtVal::Vector(s, vec![0; n as usize]),
            Type::Void => panic!("zero of void"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_views() {
        assert_eq!(Scalar::i32(-3).as_i64(), -3);
        assert_eq!(Scalar::i32(-3).as_u64(), 0xffff_fffd);
        assert_eq!(Scalar::f32(1.5).as_f32(), 1.5);
        assert_eq!(Scalar::f64(-0.25).as_f64(), -0.25);
        assert!(Scalar::i1(true).is_true());
        assert!(!Scalar::i1(false).is_true());
    }

    #[test]
    fn mask_active_uses_sign_bit() {
        assert!(Scalar::f32(-1.0).mask_active()); // sign bit set
        assert!(!Scalar::f32(1.0).mask_active());
        assert!(Scalar::i32(-1).mask_active());
        assert!(!Scalar::i32(0x7fff_ffff).mask_active());
        assert!(Scalar::i1(true).mask_active());
        assert!(!Scalar::i1(false).mask_active());
        // All-ones bit pattern (ISPC's "on" mask) is active.
        assert!(Scalar::new(ScalarTy::F32, 0xffff_ffff).mask_active());
    }

    #[test]
    fn flip_bit_is_involutive_and_masked() {
        let s = Scalar::f32(1.0);
        for bit in 0..32 {
            let flipped = s.flip_bit(bit);
            assert_ne!(flipped, s);
            assert_eq!(flipped.flip_bit(bit), s);
        }
        let b = Scalar::i1(false).flip_bit(0);
        assert!(b.is_true());
    }

    #[test]
    fn vector_lane_ops() {
        let v = RtVal::from_lanes(ScalarTy::I32, (0..4).map(Scalar::i32));
        assert_eq!(v.num_lanes(), 4);
        assert_eq!(v.lane(2).as_i64(), 2);
        let v2 = v.with_lane(2, Scalar::i32(9));
        assert_eq!(v2.lane(2).as_i64(), 9);
        assert_eq!(v.lane(2).as_i64(), 2, "with_lane does not mutate");
        assert_eq!(v.ty(), Type::vec(ScalarTy::I32, 4));
    }

    #[test]
    fn constants_materialize() {
        let c = Constant::splat_f32(8, 2.0);
        let v = RtVal::from_constant(&c);
        assert_eq!(v.num_lanes(), 8);
        assert_eq!(v.lane(7).as_f32(), 2.0);
        let z = RtVal::from_constant(&Constant::zero(Type::vec(ScalarTy::I32, 4)));
        assert_eq!(z, RtVal::zero(Type::vec(ScalarTy::I32, 4)));
        let u = RtVal::from_constant(&Constant::undef(Type::F32));
        assert_eq!(u.scalar().bits, 0);
    }
}
