//! Guarded flat memory model.
//!
//! The interpreter simulates a process address space as a set of disjoint
//! allocations inside one flat byte array. Every access must fall entirely
//! within a single live allocation; anything else raises
//! [`Trap::OutOfBounds`], which the fault-injection campaign classifies as
//! a **Crash** — "an invalid memory reference" in the paper's terminology
//! (§II-C, §IV-B).
//!
//! Allocations are separated by unmapped guard gaps and the address space
//! starts well above zero, so single-bit flips in pointer registers
//! frequently (but not always) produce invalid addresses — low-order bit
//! flips can land inside the same allocation and surface as silent data
//! corruption instead, which is exactly the behaviour the paper's address
//! category experiments measure.

use vir::{ScalarTy, Type};

use crate::value::Scalar;

/// An execution trap: the "Crash" outcomes of the fault model.
#[derive(Debug, Clone, PartialEq)]
pub enum Trap {
    /// Memory access outside any live allocation.
    OutOfBounds { addr: u64, size: u64 },
    /// Integer division or remainder by zero.
    DivByZero,
    /// Reached an `unreachable` terminator.
    Unreachable,
    /// Call to a function that is neither defined, an intrinsic, nor
    /// provided by the host environment.
    UnknownFunction(String),
    /// The dynamic-instruction budget was exhausted (fault-induced hang).
    HangBudget,
    /// Call stack exceeded the depth limit (fault-induced runaway
    /// recursion).
    StackOverflow,
    /// `alloca` or host allocation exhausted simulated memory.
    OutOfMemory,
    /// The wall-clock watchdog fired (fault-induced hang that the
    /// instruction budget alone did not bound in acceptable real time).
    WallClock,
    /// The engine reached an internal state that only malformed (faulted)
    /// input can produce — a would-be panic converted into a trap so one
    /// pathological experiment cannot take down a whole campaign.
    EngineFault(String),
    /// A host function reported a fatal error.
    HostError(String),
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Trap::OutOfBounds { addr, size } => {
                write!(f, "out-of-bounds access of {size} bytes at 0x{addr:x}")
            }
            Trap::DivByZero => write!(f, "integer division by zero"),
            Trap::Unreachable => write!(f, "executed unreachable"),
            Trap::UnknownFunction(n) => write!(f, "call to unknown function @{n}"),
            Trap::HangBudget => write!(f, "dynamic instruction budget exhausted"),
            Trap::StackOverflow => write!(f, "call stack overflow"),
            Trap::OutOfMemory => write!(f, "simulated memory exhausted"),
            Trap::WallClock => write!(f, "wall-clock watchdog fired"),
            Trap::EngineFault(m) => write!(f, "engine fault: {m}"),
            Trap::HostError(m) => write!(f, "host error: {m}"),
        }
    }
}

impl std::error::Error for Trap {}

#[derive(Debug, Clone, Copy)]
struct Region {
    base: u64,
    size: u64,
}

/// Base of the simulated address space; addresses below are never valid,
/// so null (and near-null) dereferences trap.
const BASE_ADDR: u64 = 0x1_0000;
/// Guard gap between consecutive allocations.
const GUARD: u64 = 64;
/// Allocation alignment.
const ALIGN: u64 = 64;

/// The simulated memory.
#[derive(Debug, Clone)]
pub struct Memory {
    data: Vec<u8>,
    regions: Vec<Region>,
    next: u64,
    limit: u64,
    /// Dynamic-instruction clock, mirrored in by the interpreter before
    /// every host call (see [`Memory::host_clock`]).
    host_clock: u64,
}

impl Default for Memory {
    fn default() -> Memory {
        Memory::new(64 << 20)
    }
}

impl Memory {
    /// Create a memory with a byte capacity limit.
    pub fn new(limit: u64) -> Memory {
        Memory {
            data: Vec::new(),
            regions: Vec::new(),
            next: BASE_ADDR,
            limit: BASE_ADDR + limit,
            host_clock: 0,
        }
    }

    /// Dynamic instruction count of the interpreter at the moment of the
    /// current host call. Host environments use it to timestamp their
    /// actions (e.g. when a fault was injected) without widening the
    /// [`crate::HostEnv`] interface.
    pub fn host_clock(&self) -> u64 {
        self.host_clock
    }

    pub(crate) fn set_host_clock(&mut self, clock: u64) {
        self.host_clock = clock;
    }

    /// Allocate `size` bytes; returns the base address.
    pub fn alloc(&mut self, size: u64) -> Result<u64, Trap> {
        let size = size.max(1);
        let base = (self.next + ALIGN - 1) & !(ALIGN - 1);
        let end = base.checked_add(size).ok_or(Trap::OutOfMemory)?;
        if end > self.limit {
            return Err(Trap::OutOfMemory);
        }
        let need = (end - BASE_ADDR) as usize;
        if self.data.len() < need {
            self.data.resize(need, 0);
        }
        self.regions.push(Region { base, size });
        self.next = end + GUARD;
        Ok(base)
    }

    /// Total bytes currently allocated.
    pub fn allocated_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.size).sum()
    }

    /// Flip bit `bit` (mod 8) of the `k`-th live allocated byte (counted
    /// in allocation order, `k` taken mod the allocated total), returning
    /// `(addr, before, after)`. The memory-cell fault-model primitive:
    /// deterministic given the allocation history, `None` when nothing is
    /// allocated.
    pub fn corrupt_byte(&mut self, k: u64, bit: u32) -> Option<(u64, u8, u8)> {
        let total = self.allocated_bytes();
        if total == 0 {
            return None;
        }
        let mut k = k % total;
        let mut addr = None;
        for r in &self.regions {
            if k < r.size {
                addr = Some(r.base + k);
                break;
            }
            k -= r.size;
        }
        let addr = addr?;
        let off = (addr - BASE_ADDR) as usize;
        let before = self.data[off];
        let after = before ^ (1u8 << (bit % 8));
        self.data[off] = after;
        Some((addr, before, after))
    }

    /// Cap the address space at `bytes` beyond the base address. Future
    /// allocations past the ceiling raise [`Trap::OutOfMemory`]; existing
    /// allocations are unaffected. Campaigns use this so a fault-induced
    /// allocation runaway is contained as a **Crash** outcome instead of
    /// exhausting host memory.
    pub fn set_limit(&mut self, bytes: u64) {
        self.limit = BASE_ADDR.saturating_add(bytes);
    }

    /// Validate that `[addr, addr+size)` lies entirely inside one live
    /// allocation; returns the byte offset into the backing store.
    fn check(&self, addr: u64, size: u64) -> Result<usize, Trap> {
        // Linear scan is fine: programs allocate a handful of buffers.
        for r in &self.regions {
            if addr >= r.base && addr.saturating_add(size) <= r.base + r.size {
                return Ok((addr - BASE_ADDR) as usize);
            }
        }
        Err(Trap::OutOfBounds { addr, size })
    }

    /// Is the whole range valid? (Query without side effects.)
    pub fn is_valid(&self, addr: u64, size: u64) -> bool {
        self.check(addr, size).is_ok()
    }

    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) -> Result<(), Trap> {
        let off = self.check(addr, buf.len() as u64)?;
        buf.copy_from_slice(&self.data[off..off + buf.len()]);
        Ok(())
    }

    pub fn write_bytes(&mut self, addr: u64, buf: &[u8]) -> Result<(), Trap> {
        let off = self.check(addr, buf.len() as u64)?;
        self.data[off..off + buf.len()].copy_from_slice(buf);
        Ok(())
    }

    /// Read one scalar of type `ty` (little-endian).
    pub fn read_scalar(&self, ty: ScalarTy, addr: u64) -> Result<Scalar, Trap> {
        let n = ty.bytes() as usize;
        let mut buf = [0u8; 8];
        self.read_bytes(addr, &mut buf[..n])?;
        Ok(Scalar::new(ty, u64::from_le_bytes(buf)))
    }

    /// Write one scalar (little-endian).
    pub fn write_scalar(&mut self, addr: u64, s: Scalar) -> Result<(), Trap> {
        let n = s.ty.bytes() as usize;
        let bytes = s.bits.to_le_bytes();
        self.write_bytes(addr, &bytes[..n])
    }

    // Typed bulk helpers for setting up program inputs and reading outputs.

    pub fn alloc_f32_slice(&mut self, vals: &[f32]) -> Result<u64, Trap> {
        let base = self.alloc(vals.len() as u64 * 4)?;
        for (i, &v) in vals.iter().enumerate() {
            self.write_scalar(base + i as u64 * 4, Scalar::f32(v))?;
        }
        Ok(base)
    }

    pub fn alloc_f64_slice(&mut self, vals: &[f64]) -> Result<u64, Trap> {
        let base = self.alloc(vals.len() as u64 * 8)?;
        for (i, &v) in vals.iter().enumerate() {
            self.write_scalar(base + i as u64 * 8, Scalar::f64(v))?;
        }
        Ok(base)
    }

    pub fn alloc_i32_slice(&mut self, vals: &[i32]) -> Result<u64, Trap> {
        let base = self.alloc(vals.len() as u64 * 4)?;
        for (i, &v) in vals.iter().enumerate() {
            self.write_scalar(base + i as u64 * 4, Scalar::i32(v))?;
        }
        Ok(base)
    }

    pub fn read_f32_slice(&self, addr: u64, len: usize) -> Result<Vec<f32>, Trap> {
        (0..len)
            .map(|i| {
                Ok(self
                    .read_scalar(ScalarTy::F32, addr + i as u64 * 4)?
                    .as_f32())
            })
            .collect()
    }

    pub fn read_i32_slice(&self, addr: u64, len: usize) -> Result<Vec<i32>, Trap> {
        (0..len)
            .map(|i| {
                Ok(self
                    .read_scalar(ScalarTy::I32, addr + i as u64 * 4)?
                    .as_i64() as i32)
            })
            .collect()
    }

    /// Raw bytes of a buffer — the bit-exact output comparison the SDC
    /// classifier performs.
    pub fn snapshot(&self, addr: u64, size: u64) -> Result<Vec<u8>, Trap> {
        let mut buf = vec![0u8; size as usize];
        self.read_bytes(addr, &mut buf)?;
        Ok(buf)
    }

    /// Size in bytes of a type when stored (used by `alloca` and `gep`).
    pub fn store_size(ty: Type) -> u64 {
        ty.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_rw_roundtrip() {
        let mut m = Memory::default();
        let a = m.alloc(64).unwrap();
        m.write_scalar(a, Scalar::f32(3.25)).unwrap();
        m.write_scalar(a + 4, Scalar::i32(-7)).unwrap();
        assert_eq!(m.read_scalar(ScalarTy::F32, a).unwrap().as_f32(), 3.25);
        assert_eq!(m.read_scalar(ScalarTy::I32, a + 4).unwrap().as_i64(), -7);
    }

    #[test]
    fn null_and_low_addresses_trap() {
        let m = Memory::default();
        assert!(matches!(
            m.read_scalar(ScalarTy::I32, 0),
            Err(Trap::OutOfBounds { .. })
        ));
        assert!(matches!(
            m.read_scalar(ScalarTy::I32, 8),
            Err(Trap::OutOfBounds { .. })
        ));
    }

    #[test]
    fn oob_past_end_traps() {
        let mut m = Memory::default();
        let a = m.alloc(16).unwrap();
        assert!(m.is_valid(a, 16));
        assert!(!m.is_valid(a, 17));
        assert!(matches!(
            m.read_scalar(ScalarTy::I64, a + 12),
            Err(Trap::OutOfBounds { .. })
        ));
        // The guard gap between allocations is unmapped.
        let b = m.alloc(16).unwrap();
        assert!(b >= a + 16 + 64);
        assert!(!m.is_valid(a + 16, 1));
    }

    #[test]
    fn access_cannot_straddle_allocations() {
        let mut m = Memory::default();
        let a = m.alloc(8).unwrap();
        let _b = m.alloc(8).unwrap();
        assert!(!m.is_valid(a + 4, 8), "straddling the guard must fail");
    }

    #[test]
    fn slices_roundtrip() {
        let mut m = Memory::default();
        let vals = vec![1.0f32, -2.5, 3.75, 0.0];
        let a = m.alloc_f32_slice(&vals).unwrap();
        assert_eq!(m.read_f32_slice(a, 4).unwrap(), vals);
        let ints = vec![5, -6, 7];
        let b = m.alloc_i32_slice(&ints).unwrap();
        assert_eq!(m.read_i32_slice(b, 3).unwrap(), ints);
    }

    #[test]
    fn limit_enforced() {
        let mut m = Memory::new(1024);
        assert!(m.alloc(512).is_ok());
        assert!(matches!(m.alloc(4096), Err(Trap::OutOfMemory)));
    }

    #[test]
    fn snapshot_is_bit_exact() {
        let mut m = Memory::default();
        let a = m.alloc_f32_slice(&[1.0, 2.0]).unwrap();
        let snap = m.snapshot(a, 8).unwrap();
        assert_eq!(&snap[..4], &1.0f32.to_le_bytes());
        assert_eq!(&snap[4..], &2.0f32.to_le_bytes());
    }
}
