//! Engine-level fault injection: corruptions the interpreter applies to
//! its own state, below the instrumented `vulfi.inject` hook.
//!
//! The instrumented injection API can only corrupt the lane values the
//! instrumentation pass chose to expose. Three fault models target state
//! that never flows through those calls:
//!
//! - **mask corruption** — overwrite the whole mask register of a masked
//!   load/store intrinsic;
//! - **address lines** — flip one bit of the pointer operand of a
//!   guarded memory access, before the bounds check;
//! - **memory cells** — flip one bit of one live guarded byte between
//!   two dynamic instructions.
//!
//! An [`EngineInjector`] is installed on the interpreter via
//! [`Interp::set_engine_injector`](crate::Interp::set_engine_injector)
//! and driven by hooks on the memory-access, masked-intrinsic, and
//! instruction-step paths. With no injector installed the hooks cost a
//! single `Option` test, preserving the default model's bit-identical
//! behaviour. In **counting mode** (`target == 0`) the injector only
//! tallies its model's event census — golden runs use this to size the
//! target distribution — and never perturbs execution.

use crate::mem::Memory;
use crate::value::{RtVal, Scalar};

/// Which engine state the injector corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineModel {
    /// Overwrite the mask register of the target-th masked intrinsic
    /// with an entropy-derived lane pattern.
    MaskCorrupt,
    /// Flip `bit` of the address operand of the target-th guarded
    /// memory access (plain or masked, load or store).
    AddressLine { bit: u32 },
    /// Flip one bit of one live guarded byte once the dynamic
    /// instruction clock reaches the target.
    MemoryCell,
}

/// What an active injector actually did, for provenance records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineInjection {
    /// 1-based index of the corrupted event in the model's census (the
    /// dynamic instruction index for [`EngineModel::MemoryCell`]).
    pub event: u64,
    /// Dynamic instruction count at the moment of corruption.
    pub at_dyn_inst: u64,
    /// Primary bit coordinate: flipped address bit, first corrupted
    /// mask lane, or bit-in-byte for a memory cell.
    pub bit: u32,
    /// State before corruption: the address, the packed active-lane
    /// mask, or the byte value.
    pub bits_before: u64,
    /// Same encoding, after corruption.
    pub bits_after: u64,
    /// Corrupted memory address (the faulted access address, or the
    /// flipped cell); 0 for mask corruption.
    pub addr: u64,
}

/// One experiment's engine-fault state: counts the model's events and,
/// in inject mode, corrupts exactly the target-th one.
#[derive(Debug)]
pub struct EngineInjector {
    model: EngineModel,
    /// 1-based target event; 0 = count-only.
    target: u64,
    entropy: u64,
    events: u64,
    injection: Option<EngineInjection>,
}

impl EngineInjector {
    /// Counting mode: tally the event census without perturbing
    /// anything (golden runs).
    pub fn count(model: EngineModel) -> EngineInjector {
        EngineInjector {
            model,
            target: 0,
            entropy: 0,
            events: 0,
            injection: None,
        }
    }

    /// Inject mode: corrupt the `target`-th event (1-based) using
    /// `entropy` for every random choice.
    pub fn inject(model: EngineModel, target: u64, entropy: u64) -> EngineInjector {
        EngineInjector {
            model,
            target: target.max(1),
            entropy,
            events: 0,
            injection: None,
        }
    }

    /// Events of this model's census seen so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// The corruption applied, once it has happened.
    pub fn injection(&self) -> Option<EngineInjection> {
        self.injection
    }

    /// Hook: a guarded memory access is about to use `addr`. Returns
    /// the (possibly corrupted) address.
    pub fn on_mem_access(&mut self, at_dyn_inst: u64, addr: u64) -> u64 {
        let EngineModel::AddressLine { bit } = self.model else {
            return addr;
        };
        self.events += 1;
        if self.target == 0 || self.events != self.target || self.injection.is_some() {
            return addr;
        }
        let bit = bit % 64;
        let flipped = addr ^ (1u64 << bit);
        self.injection = Some(EngineInjection {
            event: self.events,
            at_dyn_inst,
            bit,
            bits_before: addr,
            bits_after: flipped,
            addr: flipped,
        });
        flipped
    }

    /// Hook: a masked intrinsic is about to use `mask`. Returns the
    /// (possibly corrupted) mask register.
    pub fn on_mask(&mut self, at_dyn_inst: u64, mask: &RtVal) -> RtVal {
        if self.model != EngineModel::MaskCorrupt {
            return mask.clone();
        }
        self.events += 1;
        if self.target == 0 || self.events != self.target || self.injection.is_some() {
            return mask.clone();
        }
        let lanes = mask.lanes();
        if lanes.is_empty() {
            return mask.clone();
        }
        let elem = lanes[0].ty;
        let packed = |ls: &[Scalar]| -> u64 {
            ls.iter()
                .enumerate()
                .filter(|(_, s)| s.mask_active())
                .fold(0u64, |acc, (i, _)| acc | (1u64 << (i as u64 & 63)))
        };
        let before = packed(&lanes);
        // Lane i is active iff entropy bit i is set; active lanes get the
        // all-ones pattern (ISPC's "on" mask), inactive lanes zero.
        let corrupted: Vec<Scalar> = (0..lanes.len())
            .map(|i| {
                if (self.entropy >> (i as u64 & 63)) & 1 == 1 {
                    Scalar::new(elem, elem.bit_mask())
                } else {
                    Scalar::new(elem, 0)
                }
            })
            .collect();
        let after = packed(&corrupted);
        self.injection = Some(EngineInjection {
            event: self.events,
            at_dyn_inst,
            bit: (before ^ after).trailing_zeros() % 64,
            bits_before: before,
            bits_after: after,
            addr: 0,
        });
        RtVal::from_lanes(elem, corrupted)
    }

    /// Hook: the dynamic instruction clock advanced to `at_dyn_inst`.
    /// Memory-cell corruption fires here.
    pub fn on_step(&mut self, at_dyn_inst: u64, mem: &mut Memory) {
        if self.model != EngineModel::MemoryCell {
            return;
        }
        if self.target == 0 || at_dyn_inst != self.target || self.injection.is_some() {
            return;
        }
        let bit = ((self.entropy >> 32) % 8) as u32;
        if let Some((addr, before, after)) = mem.corrupt_byte(self.entropy, bit) {
            self.injection = Some(EngineInjection {
                event: at_dyn_inst,
                at_dyn_inst,
                bit,
                bits_before: before as u64,
                bits_after: after as u64,
                addr,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vir::ScalarTy;

    #[test]
    fn counting_mode_never_perturbs() {
        let mut inj = EngineInjector::count(EngineModel::AddressLine { bit: 3 });
        assert_eq!(inj.on_mem_access(1, 0x1_0040), 0x1_0040);
        assert_eq!(inj.on_mem_access(2, 0x1_0044), 0x1_0044);
        assert_eq!(inj.events(), 2);
        assert!(inj.injection().is_none());

        let mut inj = EngineInjector::count(EngineModel::MaskCorrupt);
        let mask = RtVal::from_lanes(ScalarTy::I32, [Scalar::i32(-1), Scalar::i32(0)]);
        assert_eq!(inj.on_mask(1, &mask), mask);
        assert_eq!(inj.events(), 1);
        // Off-model hooks don't count toward the census.
        assert_eq!(inj.on_mem_access(2, 7), 7);
        assert_eq!(inj.events(), 1);
    }

    #[test]
    fn address_line_flips_exactly_the_target_access() {
        let mut inj = EngineInjector::inject(EngineModel::AddressLine { bit: 2 }, 2, 0);
        assert_eq!(inj.on_mem_access(1, 0x100), 0x100, "first access untouched");
        assert_eq!(inj.on_mem_access(2, 0x100), 0x104, "second access flipped");
        assert_eq!(inj.on_mem_access(3, 0x100), 0x100, "one-shot");
        let rec = inj.injection().unwrap();
        assert_eq!((rec.event, rec.bit), (2, 2));
        assert_eq!((rec.bits_before, rec.bits_after), (0x100, 0x104));
        assert_eq!(rec.at_dyn_inst, 2);
    }

    #[test]
    fn mask_corrupt_rewrites_lanes_from_entropy() {
        // Entropy 0b0101: lanes 0 and 2 active after corruption.
        let mut inj = EngineInjector::inject(EngineModel::MaskCorrupt, 1, 0b0101);
        let mask = RtVal::from_lanes(
            ScalarTy::I32,
            [
                Scalar::i32(-1),
                Scalar::i32(-1),
                Scalar::i32(0),
                Scalar::i32(0),
            ],
        );
        let out = inj.on_mask(5, &mask);
        let active: Vec<bool> = out.lanes().iter().map(|s| s.mask_active()).collect();
        assert_eq!(active, [true, false, true, false]);
        let rec = inj.injection().unwrap();
        assert_eq!(rec.bits_before, 0b0011);
        assert_eq!(rec.bits_after, 0b0101);
        assert_eq!(rec.bit, 1, "lowest differing lane");
        // Subsequent masks pass through.
        assert_eq!(inj.on_mask(6, &mask), mask);
    }

    #[test]
    fn memory_cell_flips_one_bit_of_one_live_byte() {
        let mut mem = Memory::default();
        let a = mem.alloc(16).unwrap();
        mem.write_scalar(a, Scalar::i32(0)).unwrap();
        // entropy: byte index 1, bit (entropy>>32)%8 = 3.
        let entropy = 1u64 | (3u64 << 32);
        let mut inj = EngineInjector::inject(EngineModel::MemoryCell, 4, entropy);
        inj.on_step(3, &mut mem);
        assert!(inj.injection().is_none(), "before the target instruction");
        inj.on_step(4, &mut mem);
        let rec = inj.injection().unwrap();
        assert_eq!(rec.addr, a + 1);
        assert_eq!(rec.bits_after, rec.bits_before ^ (1 << 3));
        let back = mem.read_scalar(ScalarTy::I32, a).unwrap();
        assert_eq!(back.bits, rec.bits_after << 8);
        // One-shot: a later step never fires again.
        inj.on_step(5, &mut mem);
        assert_eq!(inj.injection().unwrap(), rec);
    }

    #[test]
    fn corrupt_byte_walks_regions_deterministically() {
        let mut mem = Memory::default();
        let a = mem.alloc(4).unwrap();
        let b = mem.alloc(4).unwrap();
        // k=5 → second region, byte 1.
        let (addr, before, after) = mem.corrupt_byte(5, 0).unwrap();
        assert_eq!(addr, b + 1);
        assert_eq!(after, before ^ 1);
        // k wraps mod the allocated total.
        let (addr2, _, _) = mem.corrupt_byte(8, 0).unwrap();
        assert_eq!(addr2, a);
        assert!(Memory::default().corrupt_byte(0, 0).is_none());
    }
}
