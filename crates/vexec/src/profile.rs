//! Dynamic execution profiles.
//!
//! The paper's Table I reports dynamic instruction counts and Fig. 10 the
//! vector/scalar composition. [`InstMix`] captures both *dynamically*: how
//! many executed instructions were vector instructions (per the paper's
//! §II-A definition — at least one vector operand or result), broken down
//! by opcode.

use std::collections::BTreeMap;

/// Aggregated dynamic instruction mix of one execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InstMix {
    /// All executed instructions, terminators included.
    pub total: u64,
    /// Executed *vector* instructions (paper §II-A definition).
    pub vector: u64,
    /// Executed scalar instructions (incl. terminators).
    pub scalar: u64,
    /// Per-opcode dynamic counts.
    pub by_opcode: BTreeMap<&'static str, u64>,
}

impl InstMix {
    pub fn record(&mut self, opcode: &'static str, is_vector: bool) {
        self.total += 1;
        if is_vector {
            self.vector += 1;
        } else {
            self.scalar += 1;
        }
        *self.by_opcode.entry(opcode).or_insert(0) += 1;
    }

    /// Percentage of executed instructions that were vector instructions.
    pub fn vector_pct(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.vector as f64 / self.total as f64
        }
    }

    /// Merge another mix into this one.
    pub fn merge(&mut self, other: &InstMix) {
        self.total += other.total;
        self.vector += other.vector;
        self.scalar += other.scalar;
        for (k, v) in &other.by_opcode {
            *self.by_opcode.entry(k).or_insert(0) += v;
        }
    }

    /// Opcodes sorted by descending dynamic count.
    pub fn hottest(&self) -> Vec<(&'static str, u64)> {
        let mut v: Vec<(&'static str, u64)> =
            self.by_opcode.iter().map(|(k, c)| (*k, *c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_percentages() {
        let mut m = InstMix::default();
        m.record("fadd", true);
        m.record("fadd", true);
        m.record("add", false);
        m.record("br", false);
        assert_eq!(m.total, 4);
        assert_eq!(m.vector, 2);
        assert_eq!(m.scalar, 2);
        assert_eq!(m.vector_pct(), 50.0);
        assert_eq!(m.by_opcode["fadd"], 2);
    }

    #[test]
    fn merge_and_hottest() {
        let mut a = InstMix::default();
        a.record("add", false);
        let mut b = InstMix::default();
        b.record("add", false);
        b.record("fmul", true);
        b.record("fmul", true);
        a.merge(&b);
        assert_eq!(a.total, 4);
        assert_eq!(a.hottest()[0], ("add", 2));
        assert_eq!(a.hottest()[0].1, 2);
        let hot = a.hottest();
        assert!(hot.contains(&("fmul", 2)));
    }

    #[test]
    fn empty_mix() {
        let m = InstMix::default();
        assert_eq!(m.vector_pct(), 0.0);
        assert!(m.hottest().is_empty());
    }
}
