//! Dynamic execution profiles.
//!
//! The paper's Table I reports dynamic instruction counts and Fig. 10 the
//! vector/scalar composition. [`InstMix`] captures both *dynamically*: how
//! many executed instructions were vector instructions (per the paper's
//! §II-A definition — at least one vector operand or result), broken down
//! by opcode.
//!
//! On top of the opcode mix, the profile records **lane occupancy**: for
//! every executed vector instruction whose active-lane set is knowable
//! (masked loads/stores consult their mask operand, vector selects their
//! condition vector, everything else runs all lanes), how many of its
//! lanes were architecturally live. The paper's §IV discussion leans on
//! exactly this — faults into masked-off lanes are absorbed — so reports
//! use the occupancy histogram to *explain* vector SDC rates, not just
//! state them.

use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

/// Aggregated dynamic instruction mix of one execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InstMix {
    /// All executed instructions, terminators included.
    pub total: u64,
    /// Executed *vector* instructions (paper §II-A definition).
    pub vector: u64,
    /// Executed scalar instructions (incl. terminators).
    pub scalar: u64,
    /// Per-opcode dynamic counts.
    pub by_opcode: BTreeMap<&'static str, u64>,
    /// Sum of *active* lanes over executed vector instructions.
    pub lanes_active: u64,
    /// Sum of lane slots (vector widths) over the same instructions.
    pub lanes_total: u64,
    /// `occupancy[k]` = vector instructions that executed with exactly
    /// `k` active lanes. Grown on demand to the widest vector seen.
    pub occupancy: Vec<u64>,
}

impl InstMix {
    pub fn record(&mut self, opcode: &'static str, is_vector: bool) {
        self.total += 1;
        if is_vector {
            self.vector += 1;
        } else {
            self.scalar += 1;
        }
        *self.by_opcode.entry(opcode).or_insert(0) += 1;
    }

    /// Record one executed vector instruction along with its lane
    /// occupancy: `active` of `width` lanes were architecturally live.
    pub fn record_vector_lanes(&mut self, opcode: &'static str, active: u32, width: u32) {
        self.record(opcode, true);
        self.lanes_active += active as u64;
        self.lanes_total += width as u64;
        let k = active as usize;
        if self.occupancy.len() <= k {
            self.occupancy.resize(k + 1, 0);
        }
        self.occupancy[k] += 1;
    }

    /// Mean active lanes per vector instruction with lane information.
    pub fn avg_active_lanes(&self) -> f64 {
        let insts: u64 = self.occupancy.iter().sum();
        if insts == 0 {
            0.0
        } else {
            self.lanes_active as f64 / insts as f64
        }
    }

    /// Fraction of lane slots that were active (`0.0` with no lane info).
    pub fn lane_utilization(&self) -> f64 {
        if self.lanes_total == 0 {
            0.0
        } else {
            self.lanes_active as f64 / self.lanes_total as f64
        }
    }

    /// The mask-occupancy histogram as `(active_lanes, instructions)`
    /// pairs, zero-count buckets omitted.
    pub fn occupancy_histogram(&self) -> Vec<(u32, u64)> {
        self.occupancy
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(k, &n)| (k as u32, n))
            .collect()
    }

    /// Percentage of executed instructions that were vector instructions.
    pub fn vector_pct(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.vector as f64 / self.total as f64
        }
    }

    /// Merge another mix into this one.
    pub fn merge(&mut self, other: &InstMix) {
        self.total += other.total;
        self.vector += other.vector;
        self.scalar += other.scalar;
        for (k, v) in &other.by_opcode {
            *self.by_opcode.entry(k).or_insert(0) += v;
        }
        self.lanes_active += other.lanes_active;
        self.lanes_total += other.lanes_total;
        if self.occupancy.len() < other.occupancy.len() {
            self.occupancy.resize(other.occupancy.len(), 0);
        }
        for (k, n) in other.occupancy.iter().enumerate() {
            self.occupancy[k] += n;
        }
    }

    /// Opcodes sorted by descending dynamic count.
    pub fn hottest(&self) -> Vec<(&'static str, u64)> {
        let mut v: Vec<(&'static str, u64)> =
            self.by_opcode.iter().map(|(k, c)| (*k, *c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v
    }
}

/// Recorded instructions per wall-clock sample. One `Instant::now()`
/// amortized over this many dispatches keeps the per-instruction cost of
/// hotspot profiling at a map increment; the batch's elapsed time is
/// attributed to sites proportionally to how many of the batch's
/// instructions each one executed.
const HOT_BATCH: u64 = 4096;

/// Where a hotspot site lives inside its function: a numbered
/// instruction, or a block terminator (`br`/`condbr`/`ret`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HotLoc {
    /// `InstId.0` of a body or phi instruction.
    Inst(u32),
    /// `BlockId.0` of the block whose terminator executed.
    Term(u32),
}

impl std::fmt::Display for HotLoc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HotLoc::Inst(i) => write!(f, "inst{i}"),
            HotLoc::Term(b) => write!(f, "term.bb{b}"),
        }
    }
}

/// One static site's accumulated hotspot stats.
#[derive(Debug, Clone)]
pub struct HotSite {
    pub func: String,
    pub loc: HotLoc,
    pub opcode: &'static str,
    /// Dynamic executions of this site.
    pub count: u64,
    /// Wall time attributed to this site by batch sampling.
    pub wall_ns: u64,
}

/// Per-opcode rollup of the hotspot table.
#[derive(Debug, Clone)]
pub struct Hotspot {
    pub opcode: &'static str,
    pub count: u64,
    pub wall_ns: u64,
    /// Static sites contributing to this opcode.
    pub sites: u64,
}

#[derive(Debug, Clone)]
struct SiteStat {
    func: String,
    loc: HotLoc,
    opcode: &'static str,
    count: u64,
    wall_ns: u64,
    /// `count` at the last wall-time flush: the delta is this site's
    /// share of the current batch.
    flushed: u64,
}

/// Hot-path profile: dynamic counts and batched wall-time attribution
/// per static site. Purely observational — recording never touches
/// execution state, so profiled runs stay bit-identical to bare runs
/// (property-tested in the interpreter).
#[derive(Debug)]
pub struct HotProfile {
    /// `(function identity, site slot)` → index into `sites`. The
    /// pointer half is only ever a map key; exported views sort by
    /// `(func, loc)` so output is deterministic across runs.
    index: HashMap<(usize, u64), usize>,
    sites: Vec<SiteStat>,
    /// Instructions recorded since the last wall flush.
    batch: u64,
    batch_start: Instant,
}

impl Default for HotProfile {
    fn default() -> HotProfile {
        HotProfile {
            index: HashMap::new(),
            sites: Vec::new(),
            batch: 0,
            batch_start: Instant::now(),
        }
    }
}

impl HotProfile {
    /// Record one dynamic execution of `(func_id, loc)`. `func_id` is
    /// any value stable for the function's lifetime (the interpreter
    /// passes the `&Function` address); `func` is cloned once, on the
    /// site's first execution.
    pub fn record(&mut self, func_id: usize, func: &str, loc: HotLoc, opcode: &'static str) {
        let slot = match loc {
            HotLoc::Inst(i) => i as u64,
            HotLoc::Term(b) => (1u64 << 32) | b as u64,
        };
        let idx = match self.index.get(&(func_id, slot)) {
            Some(&i) => i,
            None => {
                let i = self.sites.len();
                self.index.insert((func_id, slot), i);
                self.sites.push(SiteStat {
                    func: func.to_string(),
                    loc,
                    opcode,
                    count: 0,
                    wall_ns: 0,
                    flushed: 0,
                });
                i
            }
        };
        self.sites[idx].count += 1;
        self.batch += 1;
        if self.batch >= HOT_BATCH {
            self.flush();
        }
    }

    /// Distribute the elapsed batch wall time across the sites that
    /// executed during it, proportional to their count deltas.
    fn flush(&mut self) {
        let elapsed = self.batch_start.elapsed().as_nanos() as u64;
        for s in &mut self.sites {
            let delta = s.count - s.flushed;
            if delta > 0 {
                if let Some(share) = (elapsed * delta).checked_div(self.batch) {
                    s.wall_ns += share;
                }
                s.flushed = s.count;
            }
        }
        self.batch = 0;
        self.batch_start = Instant::now();
    }

    /// Finish sampling: attribute the trailing partial batch.
    pub fn finish(&mut self) {
        self.flush();
    }

    /// Total recorded dynamic instructions.
    pub fn total(&self) -> u64 {
        self.sites.iter().map(|s| s.count).sum()
    }

    /// Total attributed wall time.
    pub fn wall_ns(&self) -> u64 {
        self.sites.iter().map(|s| s.wall_ns).sum()
    }

    /// Every site, sorted by descending dynamic count (ties broken by
    /// `(func, loc)` so the order is deterministic).
    pub fn sites(&self) -> Vec<HotSite> {
        let mut v: Vec<HotSite> = self
            .sites
            .iter()
            .map(|s| HotSite {
                func: s.func.clone(),
                loc: s.loc,
                opcode: s.opcode,
                count: s.count,
                wall_ns: s.wall_ns,
            })
            .collect();
        v.sort_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then_with(|| a.func.cmp(&b.func))
                .then(a.loc.cmp(&b.loc))
        });
        v
    }

    /// Per-opcode hotspot table, descending by dynamic count.
    pub fn hotspots(&self) -> Vec<Hotspot> {
        let mut by_op: BTreeMap<&'static str, Hotspot> = BTreeMap::new();
        for s in &self.sites {
            let h = by_op.entry(s.opcode).or_insert(Hotspot {
                opcode: s.opcode,
                count: 0,
                wall_ns: 0,
                sites: 0,
            });
            h.count += s.count;
            h.wall_ns += s.wall_ns;
            h.sites += 1;
        }
        let mut v: Vec<Hotspot> = by_op.into_values().collect();
        v.sort_by(|a, b| b.count.cmp(&a.count).then(a.opcode.cmp(b.opcode)));
        v
    }

    /// Folded-stack text (`func;opcode count` per line, sorted), the
    /// format flamegraph tooling consumes directly.
    pub fn folded(&self) -> String {
        let mut rolled: BTreeMap<(String, &'static str), u64> = BTreeMap::new();
        for s in &self.sites {
            *rolled.entry((s.func.clone(), s.opcode)).or_insert(0) += s.count;
        }
        let mut out = String::new();
        for ((func, opcode), count) in rolled {
            out.push_str(&format!("{func};{opcode} {count}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_percentages() {
        let mut m = InstMix::default();
        m.record("fadd", true);
        m.record("fadd", true);
        m.record("add", false);
        m.record("br", false);
        assert_eq!(m.total, 4);
        assert_eq!(m.vector, 2);
        assert_eq!(m.scalar, 2);
        assert_eq!(m.vector_pct(), 50.0);
        assert_eq!(m.by_opcode["fadd"], 2);
    }

    #[test]
    fn merge_and_hottest() {
        let mut a = InstMix::default();
        a.record("add", false);
        let mut b = InstMix::default();
        b.record("add", false);
        b.record("fmul", true);
        b.record("fmul", true);
        a.merge(&b);
        assert_eq!(a.total, 4);
        assert_eq!(a.hottest()[0], ("add", 2));
        assert_eq!(a.hottest()[0].1, 2);
        let hot = a.hottest();
        assert!(hot.contains(&("fmul", 2)));
    }

    #[test]
    fn empty_mix() {
        let m = InstMix::default();
        assert_eq!(m.vector_pct(), 0.0);
        assert!(m.hottest().is_empty());
        assert_eq!(m.avg_active_lanes(), 0.0);
        assert_eq!(m.lane_utilization(), 0.0);
        assert!(m.occupancy_histogram().is_empty());
    }

    #[test]
    fn lane_occupancy_counts() {
        let mut m = InstMix::default();
        m.record_vector_lanes("fmul", 8, 8); // full-width body iteration
        m.record_vector_lanes("fmul", 8, 8);
        m.record_vector_lanes("maskstore", 3, 8); // masked tail
        m.record("add", false);
        assert_eq!(m.vector, 3);
        assert_eq!(m.lanes_active, 19);
        assert_eq!(m.lanes_total, 24);
        assert!((m.avg_active_lanes() - 19.0 / 3.0).abs() < 1e-12);
        assert!((m.lane_utilization() - 19.0 / 24.0).abs() < 1e-12);
        assert_eq!(m.occupancy_histogram(), vec![(3, 1), (8, 2)]);
    }

    #[test]
    fn merge_folds_occupancy() {
        let mut a = InstMix::default();
        a.record_vector_lanes("fadd", 4, 4);
        let mut b = InstMix::default();
        b.record_vector_lanes("fadd", 2, 8);
        b.record_vector_lanes("fadd", 8, 8);
        a.merge(&b);
        assert_eq!(a.lanes_active, 14);
        assert_eq!(a.lanes_total, 20);
        assert_eq!(a.occupancy_histogram(), vec![(2, 1), (4, 1), (8, 1)]);
    }

    #[test]
    fn hot_profile_counts_sites_and_rolls_up_opcodes() {
        let mut h = HotProfile::default();
        for _ in 0..3 {
            h.record(0x1000, "kernel", HotLoc::Inst(4), "fmul");
        }
        h.record(0x1000, "kernel", HotLoc::Inst(7), "fmul");
        h.record(0x1000, "kernel", HotLoc::Term(0), "br");
        h.record(0x2000, "helper", HotLoc::Inst(4), "add");
        h.finish();
        assert_eq!(h.total(), 6);

        let sites = h.sites();
        assert_eq!(sites.len(), 4);
        assert_eq!((sites[0].func.as_str(), sites[0].count), ("kernel", 3));
        assert_eq!(sites[0].loc, HotLoc::Inst(4));

        let hot = h.hotspots();
        assert_eq!(hot[0].opcode, "fmul");
        assert_eq!(hot[0].count, 4);
        assert_eq!(hot[0].sites, 2);
        assert!(hot.iter().any(|x| x.opcode == "br" && x.count == 1));
    }

    #[test]
    fn hot_profile_attributes_wall_time_to_executed_sites() {
        let mut h = HotProfile::default();
        // More than one batch, heavily skewed to one site: attributed
        // time must land there and sum to (close to) the total.
        for i in 0..(2 * HOT_BATCH + 17) {
            if i % 8 == 0 {
                h.record(0x1, "f", HotLoc::Inst(1), "add");
            } else {
                h.record(0x1, "f", HotLoc::Inst(0), "fmul");
            }
        }
        h.finish();
        let sites = h.sites();
        assert_eq!(sites[0].opcode, "fmul");
        assert!(
            sites[0].wall_ns >= sites[1].wall_ns,
            "the hot site must carry at least as much attributed time: {sites:?}"
        );
        assert_eq!(h.wall_ns(), sites.iter().map(|s| s.wall_ns).sum::<u64>());
    }

    #[test]
    fn hot_profile_folded_output_is_deterministic() {
        let mut h = HotProfile::default();
        h.record(7, "kernel", HotLoc::Inst(0), "fmul");
        h.record(7, "kernel", HotLoc::Inst(3), "fmul");
        h.record(7, "kernel", HotLoc::Term(1), "condbr");
        h.record(9, "aux", HotLoc::Inst(0), "load");
        h.finish();
        assert_eq!(h.folded(), "aux;load 1\nkernel;condbr 1\nkernel;fmul 2\n");
    }
}
