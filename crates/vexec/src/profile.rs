//! Dynamic execution profiles.
//!
//! The paper's Table I reports dynamic instruction counts and Fig. 10 the
//! vector/scalar composition. [`InstMix`] captures both *dynamically*: how
//! many executed instructions were vector instructions (per the paper's
//! §II-A definition — at least one vector operand or result), broken down
//! by opcode.
//!
//! On top of the opcode mix, the profile records **lane occupancy**: for
//! every executed vector instruction whose active-lane set is knowable
//! (masked loads/stores consult their mask operand, vector selects their
//! condition vector, everything else runs all lanes), how many of its
//! lanes were architecturally live. The paper's §IV discussion leans on
//! exactly this — faults into masked-off lanes are absorbed — so reports
//! use the occupancy histogram to *explain* vector SDC rates, not just
//! state them.

use std::collections::BTreeMap;

/// Aggregated dynamic instruction mix of one execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InstMix {
    /// All executed instructions, terminators included.
    pub total: u64,
    /// Executed *vector* instructions (paper §II-A definition).
    pub vector: u64,
    /// Executed scalar instructions (incl. terminators).
    pub scalar: u64,
    /// Per-opcode dynamic counts.
    pub by_opcode: BTreeMap<&'static str, u64>,
    /// Sum of *active* lanes over executed vector instructions.
    pub lanes_active: u64,
    /// Sum of lane slots (vector widths) over the same instructions.
    pub lanes_total: u64,
    /// `occupancy[k]` = vector instructions that executed with exactly
    /// `k` active lanes. Grown on demand to the widest vector seen.
    pub occupancy: Vec<u64>,
}

impl InstMix {
    pub fn record(&mut self, opcode: &'static str, is_vector: bool) {
        self.total += 1;
        if is_vector {
            self.vector += 1;
        } else {
            self.scalar += 1;
        }
        *self.by_opcode.entry(opcode).or_insert(0) += 1;
    }

    /// Record one executed vector instruction along with its lane
    /// occupancy: `active` of `width` lanes were architecturally live.
    pub fn record_vector_lanes(&mut self, opcode: &'static str, active: u32, width: u32) {
        self.record(opcode, true);
        self.lanes_active += active as u64;
        self.lanes_total += width as u64;
        let k = active as usize;
        if self.occupancy.len() <= k {
            self.occupancy.resize(k + 1, 0);
        }
        self.occupancy[k] += 1;
    }

    /// Mean active lanes per vector instruction with lane information.
    pub fn avg_active_lanes(&self) -> f64 {
        let insts: u64 = self.occupancy.iter().sum();
        if insts == 0 {
            0.0
        } else {
            self.lanes_active as f64 / insts as f64
        }
    }

    /// Fraction of lane slots that were active (`0.0` with no lane info).
    pub fn lane_utilization(&self) -> f64 {
        if self.lanes_total == 0 {
            0.0
        } else {
            self.lanes_active as f64 / self.lanes_total as f64
        }
    }

    /// The mask-occupancy histogram as `(active_lanes, instructions)`
    /// pairs, zero-count buckets omitted.
    pub fn occupancy_histogram(&self) -> Vec<(u32, u64)> {
        self.occupancy
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(k, &n)| (k as u32, n))
            .collect()
    }

    /// Percentage of executed instructions that were vector instructions.
    pub fn vector_pct(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.vector as f64 / self.total as f64
        }
    }

    /// Merge another mix into this one.
    pub fn merge(&mut self, other: &InstMix) {
        self.total += other.total;
        self.vector += other.vector;
        self.scalar += other.scalar;
        for (k, v) in &other.by_opcode {
            *self.by_opcode.entry(k).or_insert(0) += v;
        }
        self.lanes_active += other.lanes_active;
        self.lanes_total += other.lanes_total;
        if self.occupancy.len() < other.occupancy.len() {
            self.occupancy.resize(other.occupancy.len(), 0);
        }
        for (k, n) in other.occupancy.iter().enumerate() {
            self.occupancy[k] += n;
        }
    }

    /// Opcodes sorted by descending dynamic count.
    pub fn hottest(&self) -> Vec<(&'static str, u64)> {
        let mut v: Vec<(&'static str, u64)> =
            self.by_opcode.iter().map(|(k, c)| (*k, *c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_percentages() {
        let mut m = InstMix::default();
        m.record("fadd", true);
        m.record("fadd", true);
        m.record("add", false);
        m.record("br", false);
        assert_eq!(m.total, 4);
        assert_eq!(m.vector, 2);
        assert_eq!(m.scalar, 2);
        assert_eq!(m.vector_pct(), 50.0);
        assert_eq!(m.by_opcode["fadd"], 2);
    }

    #[test]
    fn merge_and_hottest() {
        let mut a = InstMix::default();
        a.record("add", false);
        let mut b = InstMix::default();
        b.record("add", false);
        b.record("fmul", true);
        b.record("fmul", true);
        a.merge(&b);
        assert_eq!(a.total, 4);
        assert_eq!(a.hottest()[0], ("add", 2));
        assert_eq!(a.hottest()[0].1, 2);
        let hot = a.hottest();
        assert!(hot.contains(&("fmul", 2)));
    }

    #[test]
    fn empty_mix() {
        let m = InstMix::default();
        assert_eq!(m.vector_pct(), 0.0);
        assert!(m.hottest().is_empty());
        assert_eq!(m.avg_active_lanes(), 0.0);
        assert_eq!(m.lane_utilization(), 0.0);
        assert!(m.occupancy_histogram().is_empty());
    }

    #[test]
    fn lane_occupancy_counts() {
        let mut m = InstMix::default();
        m.record_vector_lanes("fmul", 8, 8); // full-width body iteration
        m.record_vector_lanes("fmul", 8, 8);
        m.record_vector_lanes("maskstore", 3, 8); // masked tail
        m.record("add", false);
        assert_eq!(m.vector, 3);
        assert_eq!(m.lanes_active, 19);
        assert_eq!(m.lanes_total, 24);
        assert!((m.avg_active_lanes() - 19.0 / 3.0).abs() < 1e-12);
        assert!((m.lane_utilization() - 19.0 / 24.0).abs() < 1e-12);
        assert_eq!(m.occupancy_histogram(), vec![(3, 1), (8, 2)]);
    }

    #[test]
    fn merge_folds_occupancy() {
        let mut a = InstMix::default();
        a.record_vector_lanes("fadd", 4, 4);
        let mut b = InstMix::default();
        b.record_vector_lanes("fadd", 2, 8);
        b.record_vector_lanes("fadd", 8, 8);
        a.merge(&b);
        assert_eq!(a.lanes_active, 14);
        assert_eq!(a.lanes_total, 20);
        assert_eq!(a.occupancy_histogram(), vec![(2, 1), (4, 1), (8, 1)]);
    }
}
