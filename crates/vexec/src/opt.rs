//! Constant folding over VIR, using this crate's evaluator as the
//! semantics oracle (no duplicated arithmetic rules to drift apart).
//!
//! Together with `vir::transform::dce`, this is the second half of the
//! "-O3 cleanup" stand-in the SPMD-C pipeline runs: compile-time-known
//! registers must not appear as fault sites, because a real compiler
//! would never materialize them.
//!
//! Folds, conservatively:
//! - `bin`/`icmp`/`fcmp` with two constant operands (element-wise for
//!   vectors); division folds only when no lane divides by zero — a
//!   constant trap must stay a runtime trap;
//! - casts of constants;
//! - `select` with a constant scalar condition;
//! - `extractelement`/`insertelement`/`shufflevector` over constants;
//! - integer identities: `x+0`, `x-0`, `x*1`, `x*0`, `x&-1`, `x|0`,
//!   `x^0`, shifts by 0.

use vir::{BinOp, ConstData, Constant, Function, InstKind, Operand, Type};

use crate::interp::{eval_bin, eval_cast, eval_fcmp, eval_icmp};
use crate::value::Scalar;

fn const_lanes(c: &Constant) -> Vec<Scalar> {
    let elem = c.ty.elem().expect("void constant");
    c.lane_bits()
        .into_iter()
        .map(|b| Scalar::new(elem, b))
        .collect()
}

fn make_const(ty: Type, lanes: Vec<Scalar>) -> Constant {
    match ty {
        Type::Scalar(_) => Constant::new(ty, ConstData::Scalar(lanes[0].bits)),
        Type::Vector(..) => Constant::new(
            ty,
            ConstData::Vector(lanes.into_iter().map(|s| s.bits).collect()),
        ),
        Type::Void => unreachable!(),
    }
}

/// Try to fold one instruction to a constant.
fn fold_inst(f: &Function, kind: &InstKind, ty: Type) -> Option<Constant> {
    fn c(op: &Operand) -> Option<&Constant> {
        op.constant()
    }
    match kind {
        InstKind::Bin { op, lhs, rhs } => {
            let (a, b) = (c(lhs)?, c(rhs)?);
            let out: Option<Vec<Scalar>> = const_lanes(a)
                .into_iter()
                .zip(const_lanes(b))
                .map(|(x, y)| eval_bin(*op, x, y).ok())
                .collect();
            Some(make_const(ty, out?))
        }
        InstKind::ICmp { pred, lhs, rhs } => {
            let (a, b) = (c(lhs)?, c(rhs)?);
            let out: Vec<Scalar> = const_lanes(a)
                .into_iter()
                .zip(const_lanes(b))
                .map(|(x, y)| Scalar::i1(eval_icmp(*pred, x, y)))
                .collect();
            Some(make_const(ty, out))
        }
        InstKind::FCmp { pred, lhs, rhs } => {
            let (a, b) = (c(lhs)?, c(rhs)?);
            let out: Vec<Scalar> = const_lanes(a)
                .into_iter()
                .zip(const_lanes(b))
                .map(|(x, y)| Scalar::i1(eval_fcmp(*pred, x, y)))
                .collect();
            Some(make_const(ty, out))
        }
        InstKind::Cast { op, val } => {
            let a = c(val)?;
            let to = ty.elem()?;
            let out: Vec<Scalar> = const_lanes(a)
                .into_iter()
                .map(|s| eval_cast(*op, s, to))
                .collect();
            Some(make_const(ty, out))
        }
        InstKind::Select {
            cond,
            on_true,
            on_false,
        } => {
            let cc = c(cond)?;
            if cc.ty.is_vector() {
                let (t, e) = (c(on_true)?, c(on_false)?);
                let out: Vec<Scalar> = const_lanes(cc)
                    .into_iter()
                    .zip(const_lanes(t).into_iter().zip(const_lanes(e)))
                    .map(|(m, (x, y))| if m.is_true() { x } else { y })
                    .collect();
                Some(make_const(ty, out))
            } else if cc.scalar_bits()? & 1 == 1 {
                c(on_true).cloned()
            } else {
                c(on_false).cloned()
            }
        }
        InstKind::ExtractElement { vec, idx } => {
            let v = c(vec)?;
            let i = c(idx)?.as_i64()? as usize;
            let lanes = const_lanes(v);
            let s = lanes.get(i % lanes.len())?;
            Some(make_const(ty, vec![*s]))
        }
        InstKind::InsertElement { vec, elt, idx } => {
            let v = c(vec)?;
            let e = c(elt)?;
            let i = c(idx)?.as_i64()? as usize;
            let mut lanes = const_lanes(v);
            let n = lanes.len();
            lanes[i % n] = const_lanes(e)[0];
            Some(make_const(ty, lanes))
        }
        InstKind::ShuffleVector { a, b, mask } => {
            let (va, vb) = (c(a)?, c(b)?);
            let (la, lb) = (const_lanes(va), const_lanes(vb));
            let elem = ty.elem()?;
            let out: Vec<Scalar> = mask
                .iter()
                .map(|&m| {
                    if m < 0 {
                        Scalar::new(elem, 0)
                    } else if (m as usize) < la.len() {
                        la[m as usize]
                    } else {
                        lb[m as usize - la.len()]
                    }
                })
                .collect();
            Some(make_const(ty, out))
        }
        _ => {
            let _ = f;
            None
        }
    }
}

/// Integer identity simplification: returns the surviving operand.
fn identity(kind: &InstKind, ty: Type) -> Option<Operand> {
    let InstKind::Bin { op, lhs, rhs } = kind else {
        return None;
    };
    if !ty.is_int() {
        return None;
    }
    let is_splat = |o: &Operand, v: i64| -> bool {
        o.constant().is_some_and(|cst| {
            let elem = match cst.ty.elem() {
                Some(e) if e.is_int() => e,
                _ => return false,
            };
            cst.lane_bits()
                .iter()
                .all(|&b| vir::constant::sext(b, elem.bits()) == v)
        })
    };
    match op {
        BinOp::Add | BinOp::Or | BinOp::Xor => {
            if is_splat(rhs, 0) {
                return Some(lhs.clone());
            }
            if is_splat(lhs, 0) && *op == BinOp::Add {
                return Some(rhs.clone());
            }
        }
        BinOp::Sub | BinOp::Shl | BinOp::LShr | BinOp::AShr if is_splat(rhs, 0) => {
            return Some(lhs.clone());
        }
        BinOp::Mul => {
            if is_splat(rhs, 1) {
                return Some(lhs.clone());
            }
            if is_splat(lhs, 1) {
                return Some(rhs.clone());
            }
            if is_splat(rhs, 0) || is_splat(lhs, 0) {
                let elem = ty.elem()?;
                return Some(Operand::Const(match ty {
                    Type::Vector(_, n) => Constant::splat(elem, n, 0),
                    _ => Constant::new(ty, ConstData::Scalar(0)),
                }));
            }
        }
        BinOp::And if is_splat(rhs, -1) => {
            return Some(lhs.clone());
        }
        _ => {}
    }
    None
}

/// Fold constants in `f` until fixpoint. Returns how many instructions
/// were folded away. Run `vir::transform::dce::run` afterwards to drop the
/// dead definitions.
pub fn fold(f: &mut Function) -> usize {
    let mut folded = 0;
    loop {
        let mut change: Option<(vir::ValueId, Operand)> = None;
        'scan: for (_, iid) in f.placed_insts() {
            let inst = f.inst(iid);
            let Some(result) = inst.result else { continue };
            if let Some(cst) = fold_inst(f, &inst.kind, inst.ty) {
                change = Some((result, Operand::Const(cst)));
                break 'scan;
            }
            if let Some(op) = identity(&inst.kind, inst.ty) {
                change = Some((result, op));
                break 'scan;
            }
        }
        match change {
            Some((old, new)) => {
                f.replace_uses(old, new, &[]);
                folded += 1;
                // The defining instruction is now dead; DCE removes it.
                vir::transform::dce::run(f);
            }
            None => break,
        }
    }
    folded
}

#[cfg(test)]
mod tests {
    use super::*;
    use vir::builder::FuncBuilder;
    use vir::inst::{CastOp, ICmpPred, Terminator};
    use vir::Module;

    fn check_ret_const(f: &Function, expect: i64) {
        match &f.block(f.entry()).term {
            Terminator::Ret(Some(Operand::Const(cst))) => {
                assert_eq!(cst.as_i64(), Some(expect))
            }
            t => panic!("not folded to a constant return: {t:?}"),
        }
    }

    #[test]
    fn folds_constant_chains() {
        let mut b = FuncBuilder::new("f", vec![], Type::I32);
        let e = b.add_block("entry");
        b.position_at(e);
        let x = b.bin(
            BinOp::Add,
            Constant::i32(2).into(),
            Constant::i32(3).into(),
            "x",
        );
        let y = b.bin(BinOp::Mul, x, Constant::i32(4).into(), "y");
        b.ret(Some(y));
        let mut f = b.finish();
        let n = fold(&mut f);
        assert_eq!(n, 2);
        assert_eq!(f.num_placed_insts(), 0);
        check_ret_const(&f, 20);
    }

    #[test]
    fn folding_preserves_trap_semantics() {
        // `sdiv 1, 0` must NOT fold away — it traps at runtime.
        let mut b = FuncBuilder::new("f", vec![], Type::I32);
        let e = b.add_block("entry");
        b.position_at(e);
        let x = b.bin(
            BinOp::SDiv,
            Constant::i32(1).into(),
            Constant::i32(0).into(),
            "x",
        );
        b.ret(Some(x));
        let mut f = b.finish();
        assert_eq!(fold(&mut f), 0);
        assert_eq!(f.num_placed_insts(), 1);
    }

    #[test]
    fn folds_vector_ops_elementwise() {
        let mut b = FuncBuilder::new("f", vec![], Type::I32);
        let e = b.add_block("entry");
        b.position_at(e);
        let v = b.bin(
            BinOp::Add,
            Constant::vec_i32(&[1, 2, 3, 4]).into(),
            Constant::vec_i32(&[10, 20, 30, 40]).into(),
            "v",
        );
        let x = b.extract(v, Constant::i32(2).into(), "x");
        b.ret(Some(x));
        let mut f = b.finish();
        fold(&mut f);
        check_ret_const(&f, 33);
    }

    #[test]
    fn integer_identities() {
        let mut b = FuncBuilder::new("f", vec![("x".into(), Type::I32)], Type::I32);
        let e = b.add_block("entry");
        b.position_at(e);
        let a = b.bin(BinOp::Add, b.param(0), Constant::i32(0).into(), "a");
        let m = b.bin(BinOp::Mul, a, Constant::i32(1).into(), "m");
        let s = b.bin(BinOp::Shl, m, Constant::i32(0).into(), "s");
        b.ret(Some(s));
        let mut f = b.finish();
        let n = fold(&mut f);
        assert_eq!(n, 3);
        assert_eq!(f.num_placed_insts(), 0);
        // Return is now the parameter itself.
        match &f.block(f.entry()).term {
            Terminator::Ret(Some(Operand::Value(v))) => assert_eq!(v.index(), 0),
            t => panic!("{t:?}"),
        }
    }

    #[test]
    fn mul_by_zero_becomes_zero_not_operand() {
        let mut b = FuncBuilder::new("f", vec![("x".into(), Type::I32)], Type::I32);
        let e = b.add_block("entry");
        b.position_at(e);
        let m = b.bin(BinOp::Mul, b.param(0), Constant::i32(0).into(), "m");
        b.ret(Some(m));
        let mut f = b.finish();
        fold(&mut f);
        check_ret_const(&f, 0);
    }

    #[test]
    fn no_float_identities() {
        // x + 0.0 must NOT fold: x could be -0.0 and -0.0 + 0.0 == +0.0.
        let mut b = FuncBuilder::new("f", vec![("x".into(), Type::F32)], Type::F32);
        let e = b.add_block("entry");
        b.position_at(e);
        let a = b.bin(BinOp::FAdd, b.param(0), Constant::f32(0.0).into(), "a");
        b.ret(Some(a));
        let mut f = b.finish();
        assert_eq!(fold(&mut f), 0);
    }

    #[test]
    fn folds_casts_selects_and_shuffles() {
        let mut b = FuncBuilder::new("f", vec![], Type::I32);
        let e = b.add_block("entry");
        b.position_at(e);
        let cast = b.cast(CastOp::FpToSi, Constant::f32(7.9).into(), Type::I32, "c");
        let cond = b.icmp(ICmpPred::Sgt, cast.clone(), Constant::i32(5).into(), "p");
        let sel = b.select(cond, cast, Constant::i32(-1).into(), "s");
        b.ret(Some(sel));
        let mut f = b.finish();
        fold(&mut f);
        check_ret_const(&f, 7);
    }

    #[test]
    fn folded_module_still_verifies_and_runs() {
        use crate::{Interp, NoHost, RtVal};
        let mut b = FuncBuilder::new("f", vec![("x".into(), Type::I32)], Type::I32);
        let e = b.add_block("entry");
        b.position_at(e);
        let k = b.bin(
            BinOp::Add,
            Constant::i32(10).into(),
            Constant::i32(5).into(),
            "k",
        );
        let r = b.bin(BinOp::Mul, b.param(0), k, "r");
        b.ret(Some(r));
        let mut f = b.finish();
        fold(&mut f);
        let mut m = Module::new("t");
        m.add_function(f);
        vir::verify::verify_module(&m).unwrap();
        let mut interp = Interp::new(&m);
        let out = interp
            .run("f", &[RtVal::Scalar(Scalar::i32(3))], &mut NoHost)
            .unwrap();
        assert_eq!(out.ret.unwrap().scalar().as_i64(), 45);
    }
}
