//! End-to-end service tests: a real daemon on an ephemeral port, driven
//! through the JSON API, checked for bit-identity against the in-process
//! orchestrator.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use serde::Value;
use vulfi::StudySpec;
use vulfi_serve::{Client, Daemon, ServeConfig};

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vulfi_serve_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_daemon(store: &Path, workers: usize) -> (Client, std::thread::JoinHandle<()>) {
    let daemon = Daemon::bind(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        store: store.to_path_buf(),
        workers,
        lease_ttl: Duration::from_secs(60),
        ..ServeConfig::default()
    })
    .expect("bind daemon");
    let addr = daemon.local_addr().unwrap().to_string();
    let t = std::thread::spawn(move || daemon.run().expect("daemon run"));
    (Client::new(addr), t)
}

fn spec_doc(experiments: u64, campaigns: u64) -> Value {
    serde_json::json!({
        "bench": "vector sum",
        "experiments": experiments,
        "campaigns": campaigns,
        "shard_size": 5u64,
    })
}

/// Poll `GET /studies/:key` until the merged result appears.
fn wait_complete(client: &Client, key: &str, timeout: Duration) -> Value {
    let deadline = Instant::now() + timeout;
    loop {
        let (status, doc) = client.get(&format!("/studies/{key}")).expect("status poll");
        assert_eq!(status, 200, "status poll failed: {doc:?}");
        if let Some(state) = doc.get("state").and_then(|v| v.as_str()) {
            assert_ne!(state, "failed", "job failed: {doc:?}");
        }
        if doc.get("result").is_some() {
            return doc;
        }
        assert!(Instant::now() < deadline, "study never completed: {doc:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Poll `GET /jobs` until every job reaches the expected terminal state
/// (the merged result lands in the store a beat before the queue append).
fn wait_jobs_completed(client: &Client, n: usize, timeout: Duration) -> Vec<Value> {
    let deadline = Instant::now() + timeout;
    loop {
        let (_, doc) = client.get("/jobs").expect("jobs poll");
        let jobs = doc.get("jobs").and_then(|v| v.as_array()).unwrap().to_vec();
        if jobs.len() == n
            && jobs
                .iter()
                .all(|j| j.get("state").and_then(|v| v.as_str()) == Some("completed"))
        {
            return jobs;
        }
        assert!(
            Instant::now() < deadline,
            "jobs never all completed: {jobs:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The reference result: the same spec through the in-process
/// orchestrator into a separate store.
fn reference_result(spec: &StudySpec) -> vulfi::StudyResult {
    let store = vulfi_orch::Store::open(temp_store("reference")).unwrap();
    let category = spec.site_category().unwrap();
    let cfg = spec.study_config();
    vulfi_serve::with_workload(spec, |w| {
        let mut prog = vulfi::prepare(w, category).map_err(|e| e.to_string())?;
        prog.model = cfg.model;
        let out = vulfi_orch::run_study_persistent(
            &prog,
            w,
            w.name(),
            &spec.isa,
            &cfg,
            &store,
            vulfi_orch::RunOptions {
                shard_size: spec.shard_size,
                ..Default::default()
            },
        )
        .map_err(|e| e.to_string())?;
        out.result.ok_or_else(|| "reference incomplete".to_string())
    })
    .expect("reference study")
}

/// Render a result the way the status endpoint does, for byte-for-byte
/// comparison.
fn result_doc(r: &vulfi::StudyResult) -> Value {
    serde_json::json!({
        "mean_sdc": r.summary.mean,
        "margin_95": r.summary.margin_95,
        "campaigns": r.summary.campaigns as u64,
        "converged": r.converged,
        "samples": r.samples.clone(),
        "counts": serde_json::to_value(&r.counts).unwrap(),
    })
}

#[test]
fn submitted_study_completes_and_matches_in_process_run() {
    let store = temp_store("e2e");
    let (client, daemon) = start_daemon(&store, 2);

    // Health and an empty job table come up before any submission.
    let (status, doc) = client.get("/healthz").unwrap();
    assert_eq!(
        (status, doc.get("ok").and_then(|v| v.as_bool())),
        (200, Some(true))
    );
    let (_, jobs) = client.get("/jobs").unwrap();
    assert_eq!(
        jobs.get("jobs").and_then(|v| v.as_array()).unwrap().len(),
        0
    );

    let (status, doc) = client
        .post("/studies", &spec_doc(10, 2), &[("X-Vulfi-Tenant", "alice")])
        .unwrap();
    assert_eq!(status, 202, "{doc:?}");
    let key = doc.get("key").and_then(|v| v.as_str()).unwrap().to_string();
    assert!(doc.get("job").and_then(|v| v.as_u64()).is_some());

    let final_doc = wait_complete(&client, &key, Duration::from_secs(60));

    // Bit-identity with the in-process orchestrator on the same spec.
    let spec = StudySpec {
        bench: "vector sum".to_string(),
        experiments: 10,
        campaigns: 2,
        shard_size: 5,
        ..StudySpec::default()
    };
    let reference = reference_result(&spec);
    assert_eq!(
        serde_json::to_string(final_doc.get("result").unwrap()).unwrap(),
        serde_json::to_string(&result_doc(&reference)).unwrap(),
        "service result must be byte-identical to vulfi study"
    );

    // The tenant and terminal state are visible in the job table.
    let jobs = wait_jobs_completed(&client, 1, Duration::from_secs(30));
    assert_eq!(
        jobs[0].get("tenant").and_then(|v| v.as_str()),
        Some("alice")
    );

    // The report endpoint serves the analytics cell for the same key.
    let (status, report) = client.get(&format!("/studies/{key}/report")).unwrap();
    assert_eq!(status, 200, "{report:?}");
    let cell = report.get("cell").unwrap();
    assert_eq!(cell.get("key").and_then(|v| v.as_str()), Some(key.as_str()));
    assert_eq!(
        cell.get("experiments").and_then(|v| v.as_u64()),
        Some(20),
        "{cell:?}"
    );

    // Metrics speak Prometheus, including the new operational
    // histograms fed by the worker loop.
    let (status, text) = client.get_text("/metrics").unwrap();
    assert_eq!(status, 200);
    assert!(text.contains("vulfi_experiments_total"), "{text}");
    assert!(text.contains("vulfi_shard_duration_seconds"), "{text}");
    assert!(text.contains("vulfi_queue_wait_seconds"), "{text}");

    // The ops event slice for this study covers its whole lifecycle.
    let (status, events) = client.get(&format!("/studies/{key}/events")).unwrap();
    assert_eq!(status, 200, "{events:?}");
    let text = serde_json::to_string(&events).unwrap();
    for kind in [
        "Submitted",
        "Started",
        "LeaseGranted",
        "ShardDone",
        "Merged",
        "Completed",
    ] {
        assert!(text.contains(kind), "missing {kind} in {text}");
    }

    // The dashboard renders the finished job without any scripts.
    let (status, html) = client.get_text("/dashboard").unwrap();
    assert_eq!(status, 200);
    assert!(html.contains("id=\"jobs\""), "{html}");
    assert!(html.contains("vector sum"), "{html}");
    assert!(html.contains("alice"), "{html}");
    assert!(!html.contains("<script"), "{html}");

    // Graceful shutdown drains the daemon and removes the address file.
    let (status, _) = client
        .post("/shutdown", &serde_json::json!({}), &[])
        .unwrap();
    assert_eq!(status, 200);
    daemon.join().unwrap();
    assert!(!store.join("serve.addr").exists());
}

#[test]
fn submitted_fault_model_executes_and_matches_in_process_run() {
    let store = temp_store("model");
    let (client, daemon) = start_daemon(&store, 2);

    let doc = serde_json::json!({
        "bench": "vector sum",
        "experiments": 8u64,
        "campaigns": 2u64,
        "shard_size": 4u64,
        "model": "memory-cell",
    });
    let (status, resp) = client.post("/studies", &doc, &[]).unwrap();
    assert_eq!(status, 202, "{resp:?}");
    let key = resp
        .get("key")
        .and_then(|v| v.as_str())
        .unwrap()
        .to_string();

    // Non-default models live under their own key — no collision with
    // the default-model study of the same spec.
    let (_, default_resp) = client.post("/studies", &spec_doc(8, 2), &[]).unwrap();
    assert_ne!(
        default_resp.get("key").and_then(|v| v.as_str()),
        Some(key.as_str()),
        "memory-cell must not share the default model's key"
    );

    // `wait_complete` asserts the job never fails: the worker's shard
    // runner rejects a prepared program whose model contradicts the
    // config, so a worker that forgot to carry the model over dies here.
    let final_doc = wait_complete(&client, &key, Duration::from_secs(60));

    let spec = StudySpec {
        bench: "vector sum".to_string(),
        experiments: 8,
        campaigns: 2,
        shard_size: 4,
        model: "memory-cell".to_string(),
        ..StudySpec::default()
    };
    let reference = reference_result(&spec);
    assert_eq!(
        serde_json::to_string(final_doc.get("result").unwrap()).unwrap(),
        serde_json::to_string(&result_doc(&reference)).unwrap(),
        "service must execute the submitted fault model, bit-identical to in-process"
    );

    client
        .post("/shutdown", &serde_json::json!({}), &[])
        .unwrap();
    daemon.join().unwrap();
}

#[test]
fn resubmitting_a_completed_study_is_a_cache_hit() {
    let store = temp_store("cachehit");
    let (client, daemon) = start_daemon(&store, 1);
    let (_, first) = client.post("/studies", &spec_doc(10, 2), &[]).unwrap();
    let key = first
        .get("key")
        .and_then(|v| v.as_str())
        .unwrap()
        .to_string();
    wait_complete(&client, &key, Duration::from_secs(60));

    // Same spec → same key, and the queue completes it without re-running
    // anything (all shards already stored).
    let (status, second) = client.post("/studies", &spec_doc(10, 2), &[]).unwrap();
    assert_eq!(status, 202);
    assert_eq!(
        second.get("key").and_then(|v| v.as_str()),
        Some(key.as_str())
    );
    wait_complete(&client, &key, Duration::from_secs(30));
    wait_jobs_completed(&client, 2, Duration::from_secs(30));

    client
        .post("/shutdown", &serde_json::json!({}), &[])
        .unwrap();
    daemon.join().unwrap();
}

#[test]
fn interrupted_daemon_resumes_to_an_identical_result() {
    let store = temp_store("resume");
    // A single slow-ish worker and many shards give the stop a window to
    // land mid-study; the assertions below hold either way.
    let (client, daemon) = start_daemon(&store, 1);
    let (status, doc) = client.post("/studies", &spec_doc(25, 4), &[]).unwrap();
    assert_eq!(status, 202, "{doc:?}");
    let key = doc.get("key").and_then(|v| v.as_str()).unwrap().to_string();

    // Let the worker get going, then pull the plug gracefully: the
    // in-flight shard lands, the job stays Running in the queue.
    std::thread::sleep(Duration::from_millis(30));
    client
        .post("/shutdown", &serde_json::json!({}), &[])
        .unwrap();
    daemon.join().unwrap();

    // A fresh daemon over the same store re-queues the orphan and runs
    // only what is missing.
    let (client, daemon) = start_daemon(&store, 2);
    let final_doc = wait_complete(&client, &key, Duration::from_secs(60));

    let spec = StudySpec {
        bench: "vector sum".to_string(),
        experiments: 25,
        campaigns: 4,
        shard_size: 5,
        ..StudySpec::default()
    };
    let reference = reference_result(&spec);
    assert_eq!(
        serde_json::to_string(final_doc.get("result").unwrap()).unwrap(),
        serde_json::to_string(&result_doc(&reference)).unwrap(),
        "restart must not change the merged result"
    );

    client
        .post("/shutdown", &serde_json::json!({}), &[])
        .unwrap();
    daemon.join().unwrap();
}

#[test]
fn pruned_submission_discharges_without_execution() {
    let store = temp_store("pruned");
    let (client, daemon) = start_daemon(&store, 2);

    let (status, doc) = client
        .post(
            "/studies",
            &serde_json::json!({
                "bench": "vector sum",
                "experiments": 20u64,
                "campaigns": 5u64,
                "shard_size": 10u64,
                "prune": true,
            }),
            &[],
        )
        .unwrap();
    assert_eq!(status, 202, "{doc:?}");
    let key = doc.get("key").and_then(|v| v.as_str()).unwrap().to_string();
    wait_complete(&client, &key, Duration::from_secs(60));
    client
        .post("/shutdown", &serde_json::json!({}), &[])
        .unwrap();
    daemon.join().unwrap();

    // The workers built per-worker prune contexts and left synthetic
    // Benign records (injection None, dynamic sites seen) in the store.
    let st = vulfi_orch::Store::open(&store).unwrap();
    let done = st
        .study(&vulfi_orch::StudyKey(key))
        .shards()
        .expect("stored shards");
    let discharged = done
        .iter()
        .flat_map(|s| &s.experiments)
        .filter(|e| e.injection.is_none() && e.dynamic_sites > 0)
        .count();
    assert!(
        discharged > 0,
        "a pruned serve study must discharge some injections"
    );
}

#[test]
fn bad_submissions_are_rejected_with_reasons() {
    let store = temp_store("badsubmit");
    let (client, daemon) = start_daemon(&store, 1);

    let cases: Vec<(Value, &str)> = vec![
        (serde_json::json!({}), "bench"),
        (
            serde_json::json!({"bench": "no such bench"}),
            "unknown benchmark",
        ),
        (
            serde_json::json!({"bench": "vector sum", "isa": "mips"}),
            "mips",
        ),
        (
            serde_json::json!({"bench": "vector sum", "expermients": 10u64}),
            "unknown spec field",
        ),
        (
            serde_json::json!({"bench": "vector sum", "experiments": 0u64}),
            "positive",
        ),
        (
            serde_json::json!({"bench": "vector sum", "prune": "yes"}),
            "boolean",
        ),
        (
            serde_json::json!({"bench": "vector sum", "prune": true, "model": "memory-cell"}),
            "single-bit-flip",
        ),
    ];
    for (body, needle) in cases {
        let (status, doc) = client.post("/studies", &body, &[]).unwrap();
        assert_eq!(status, 400, "{body:?} → {doc:?}");
        let err = Client::error_of(&doc);
        assert!(err.contains(needle), "{body:?} → {err}");
    }

    let (status, _) = client.get("/studies/deadbeef").unwrap();
    assert_eq!(status, 404);
    let (status, _) = client.get("/no/such/route").unwrap();
    assert_eq!(status, 404);

    client
        .post("/shutdown", &serde_json::json!({}), &[])
        .unwrap();
    daemon.join().unwrap();
}
