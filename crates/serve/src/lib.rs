//! # vulfi-serve — campaign orchestration as a long-running service
//!
//! `vulfi study` is one blocking process owning one study. This crate
//! turns the same orchestration layer into a **multi-tenant injection
//! service**: a daemon that accepts study specifications over a small
//! HTTP/1.1 + JSON API, queues them durably, and executes them with a
//! pool of worker threads leasing shard ranges through the deterministic
//! scheduler — so a study submitted over HTTP merges to a result
//! bit-identical to `vulfi study` on the same spec, even across daemon
//! crashes and restarts mid-campaign.
//!
//! The API surface:
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /studies` | submit a [`vulfi::StudySpec`] → `{job, key}` |
//! | `GET /studies/:key` | queue state, live counts + ETA, result |
//! | `GET /studies/:key/report` | analytics cell (Wilson CI etc.) |
//! | `GET /studies/:key/events` | the study's slice of the ops event log |
//! | `GET /jobs` | the folded job table |
//! | `GET /dashboard` | live self-contained zero-JS HTML dashboard |
//! | `GET /metrics` | Prometheus exposition of the global registry |
//! | `GET /healthz` | liveness |
//! | `POST /shutdown` | graceful drain |
//!
//! Everything is built on `std::net` — the workspace is offline-vendored
//! and ships no HTTP stack, so the daemon speaks exactly as much HTTP as
//! the API needs (see [`http`]).
//!
//! Operationally the daemon narrates itself: every lifecycle edge
//! (submit, queue→active, lease grant, shard completion, requeue,
//! merge, failure, absorbed engine faults) is appended to a
//! crash-tolerant ops log at `<store>/events/ops.jsonl` with the
//! correlation IDs needed to reconstruct any job's history offline —
//! `vulfi events summarize` replays it without the daemon running.

pub mod client;
pub mod daemon;
pub mod http;

pub use client::Client;
pub use daemon::{
    install_shutdown_signals, realize_key, spec_from_value, with_workload, Daemon, DaemonHandle,
    ServeConfig,
};
