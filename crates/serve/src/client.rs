//! Blocking JSON client for the daemon — the guts of `vulfi submit`,
//! `vulfi status`, and `vulfi shutdown`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use serde::Value;

use crate::http::parse_response;

/// One daemon endpoint. Every call is one short-lived connection
/// (`Connection: close`), so the client needs no pooling or framing
/// state and survives daemon restarts between calls.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
}

impl Client {
    pub fn new(addr: impl Into<String>) -> Client {
        Client { addr: addr.into() }
    }

    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// One request/response exchange, returning (status, raw body).
    fn exchange(
        &self,
        method: &str,
        path: &str,
        body: Option<&Value>,
        headers: &[(&str, &str)],
    ) -> Result<(u16, String), String> {
        let mut stream =
            TcpStream::connect(&self.addr).map_err(|e| format!("connect {}: {e}", self.addr))?;
        let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
        let payload = match body {
            Some(v) => serde_json::to_string(v).map_err(|e| e.to_string())?,
            None => String::new(),
        };
        let mut req = format!("{method} {path} HTTP/1.1\r\nHost: {}\r\n", self.addr);
        for (k, v) in headers {
            req.push_str(&format!("{k}: {v}\r\n"));
        }
        req.push_str(&format!(
            "Content-Length: {}\r\nConnection: close\r\n\r\n{payload}",
            payload.len()
        ));
        stream
            .write_all(req.as_bytes())
            .map_err(|e| format!("send to {}: {e}", self.addr))?;
        let mut raw = Vec::new();
        stream
            .read_to_end(&mut raw)
            .map_err(|e| format!("read from {}: {e}", self.addr))?;
        parse_response(&raw)
    }

    /// GET returning parsed JSON.
    pub fn get(&self, path: &str) -> Result<(u16, Value), String> {
        let (status, body) = self.exchange("GET", path, None, &[])?;
        let doc = serde_json::from_str(&body)
            .map_err(|e| format!("GET {path}: body is not JSON ({e}): {body}"))?;
        Ok((status, doc))
    }

    /// GET returning the raw body (`/metrics` is Prometheus text).
    pub fn get_text(&self, path: &str) -> Result<(u16, String), String> {
        self.exchange("GET", path, None, &[])
    }

    /// POST a JSON document, returning parsed JSON.
    pub fn post(
        &self,
        path: &str,
        body: &Value,
        headers: &[(&str, &str)],
    ) -> Result<(u16, Value), String> {
        let (status, text) = self.exchange("POST", path, Some(body), headers)?;
        let doc = serde_json::from_str(&text)
            .map_err(|e| format!("POST {path}: body is not JSON ({e}): {text}"))?;
        Ok((status, doc))
    }

    /// Pull `{"error": "..."}` out of a non-2xx response for display.
    pub fn error_of(doc: &Value) -> String {
        doc.get("error")
            .and_then(|v| v.as_str())
            .unwrap_or("unknown error")
            .to_string()
    }
}
